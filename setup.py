"""Legacy setuptools entry point.

The project is fully described by ``pyproject.toml``; this file exists so the
package can be installed editable (``pip install -e . --no-use-pep517``) on
machines without the ``wheel`` package (e.g. offline evaluation containers).
"""

from setuptools import setup

setup()
