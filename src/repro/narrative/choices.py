"""Choice points and the choices a viewer can make at them."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import NarrativeError


@dataclass(frozen=True)
class Choice:
    """One selectable option at a choice point.

    Parameters
    ----------
    label:
        On-screen text of the option (e.g. ``"Frosties"``).
    target_segment_id:
        The segment that plays if this option is selected.
    is_default:
        ``True`` for the branch Netflix prefetches while the viewer decides.
        Exactly one choice per choice point is the default.
    """

    label: str
    target_segment_id: str
    is_default: bool = False

    def __post_init__(self) -> None:
        if not self.label:
            raise NarrativeError("choice label must be a non-empty string")
        if not self.target_segment_id:
            raise NarrativeError(
                f"choice {self.label!r} must reference a target segment"
            )


@dataclass(frozen=True)
class ChoicePoint:
    """A binary question shown when a segment finishes playing.

    The paper's notation: question ``Qi`` offers the default branch ``Si`` and
    the non-default branch ``Si'``.

    Parameters
    ----------
    question_id:
        Identifier such as ``"Q1"``.
    prompt:
        The on-screen question text.
    source_segment_id:
        The segment whose end triggers this question.
    options:
        Exactly two :class:`Choice` objects, exactly one of them default.
    timeout_seconds:
        How long the viewer has before the default is auto-selected
        (ten seconds in Bandersnatch).
    """

    question_id: str
    prompt: str
    source_segment_id: str
    options: tuple[Choice, Choice]
    timeout_seconds: float = 10.0

    def __post_init__(self) -> None:
        if not self.question_id:
            raise NarrativeError("question_id must be a non-empty string")
        if len(self.options) != 2:
            raise NarrativeError(
                f"choice point {self.question_id!r} must offer exactly two "
                f"options, got {len(self.options)}"
            )
        defaults = [option for option in self.options if option.is_default]
        if len(defaults) != 1:
            raise NarrativeError(
                f"choice point {self.question_id!r} must mark exactly one "
                f"default option, got {len(defaults)}"
            )
        if self.options[0].target_segment_id == self.options[1].target_segment_id:
            raise NarrativeError(
                f"choice point {self.question_id!r} options must target "
                "distinct segments"
            )
        if self.timeout_seconds <= 0:
            raise NarrativeError(
                f"choice point {self.question_id!r} timeout must be positive"
            )

    @property
    def default_choice(self) -> Choice:
        """The prefetched branch (``Si``)."""
        return next(option for option in self.options if option.is_default)

    @property
    def non_default_choice(self) -> Choice:
        """The alternative branch (``Si'``)."""
        return next(option for option in self.options if not option.is_default)

    def choice_for(self, take_default: bool) -> Choice:
        """Return the default or non-default choice."""
        return self.default_choice if take_default else self.non_default_choice

    def choice_by_label(self, label: str) -> Choice:
        """Look up an option by its on-screen label."""
        for option in self.options:
            if option.label == label:
                return option
        raise NarrativeError(
            f"choice point {self.question_id!r} has no option labelled {label!r}"
        )


@dataclass(frozen=True)
class ChoiceRecord:
    """Ground truth for one decision made during a viewing session."""

    question_id: str
    selected_label: str
    took_default: bool
    decision_time_seconds: float

    def __post_init__(self) -> None:
        if self.decision_time_seconds < 0:
            raise NarrativeError("decision time must be non-negative")
