"""Viewing paths: walks through the story graph."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.exceptions import NarrativeError
from repro.narrative.choices import ChoiceRecord
from repro.narrative.graph import StoryGraph


@dataclass(frozen=True)
class ViewingPath:
    """The ordered segments a viewer watched and the choices that led there.

    ``segments`` always starts with the root segment.  ``choices`` has one
    entry per choice point encountered, in order; ``len(segments) ==
    len(choices) + 1`` for completed sessions.
    """

    segment_ids: tuple[str, ...]
    choices: tuple[ChoiceRecord, ...]

    def __post_init__(self) -> None:
        if not self.segment_ids:
            raise NarrativeError("a viewing path must contain at least one segment")

    @property
    def choice_count(self) -> int:
        """Number of decisions made along the path."""
        return len(self.choices)

    @property
    def default_pattern(self) -> tuple[bool, ...]:
        """``True`` where the viewer took the default branch, in order."""
        return tuple(record.took_default for record in self.choices)

    @property
    def non_default_count(self) -> int:
        """How many times the viewer rejected the prefetched branch."""
        return sum(1 for record in self.choices if not record.took_default)

    def selected_labels(self) -> tuple[str, ...]:
        """The on-screen labels the viewer picked, in order."""
        return tuple(record.selected_label for record in self.choices)

    def question_ids(self) -> tuple[str, ...]:
        """The questions encountered, in order."""
        return tuple(record.question_id for record in self.choices)

    def matches_choices(self, took_default: Sequence[bool]) -> bool:
        """Return ``True`` if the default/non-default pattern equals ``took_default``."""
        return tuple(bool(value) for value in took_default) == self.default_pattern


def path_from_choices(
    graph: StoryGraph,
    take_default: Sequence[bool],
    decision_time_seconds: float = 5.0,
    max_choice_points: int | None = None,
) -> ViewingPath:
    """Walk the story graph applying a fixed default/non-default pattern.

    Parameters
    ----------
    graph:
        The interactive script.
    take_default:
        ``take_default[i]`` is applied at the ``i``-th question encountered.
        If the walk reaches more questions than the pattern covers, the walk
        stops there (a partially watched session); if the movie ends earlier,
        the surplus pattern entries are ignored.
    decision_time_seconds:
        Ground-truth decision latency recorded for every choice.
    max_choice_points:
        Safety valve for graphs with loops; defaults to twice the number of
        choice points.
    """
    graph.validate()
    limit = max_choice_points or 2 * max(1, graph.choice_point_count)
    segments = [graph.root_segment.segment_id]
    records: list[ChoiceRecord] = []
    current = graph.root_segment.segment_id
    while len(records) < limit:
        choice_point = graph.choice_point_after(current)
        if choice_point is None:
            break
        if len(records) >= len(take_default):
            break
        takes_default = bool(take_default[len(records)])
        choice = choice_point.choice_for(takes_default)
        records.append(
            ChoiceRecord(
                question_id=choice_point.question_id,
                selected_label=choice.label,
                took_default=takes_default,
                decision_time_seconds=decision_time_seconds,
            )
        )
        current = choice.target_segment_id
        segments.append(current)
    return ViewingPath(segment_ids=tuple(segments), choices=tuple(records))


def enumerate_paths(
    graph: StoryGraph, max_choice_points: int | None = None
) -> Iterator[ViewingPath]:
    """Yield every complete viewing path (up to a revisit limit).

    The enumeration walks the binary decision tree induced by the script; on
    graphs with loops the ``max_choice_points`` cap (default: twice the number
    of choice points) bounds the depth, mirroring how a real viewing
    eventually reaches an ending.
    """
    graph.validate()
    limit = max_choice_points or 2 * max(1, graph.choice_point_count)

    def _walk(
        segment_id: str,
        segments: tuple[str, ...],
        records: tuple[ChoiceRecord, ...],
    ) -> Iterator[ViewingPath]:
        choice_point = graph.choice_point_after(segment_id)
        if choice_point is None or len(records) >= limit:
            yield ViewingPath(segment_ids=segments, choices=records)
            return
        for takes_default in (True, False):
            choice = choice_point.choice_for(takes_default)
            record = ChoiceRecord(
                question_id=choice_point.question_id,
                selected_label=choice.label,
                took_default=takes_default,
                decision_time_seconds=choice_point.timeout_seconds / 2.0,
            )
            yield from _walk(
                choice.target_segment_id,
                segments + (choice.target_segment_id,),
                records + (record,),
            )

    root = graph.root_segment.segment_id
    yield from _walk(root, (root,), ())
