"""Story segments: the unit of content between two choice points."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import NarrativeError


@dataclass(frozen=True)
class Segment:
    """One contiguous stretch of the movie.

    Parameters
    ----------
    segment_id:
        Unique identifier, e.g. ``"S0"`` for the common opening segment or
        ``"S2b"`` for the non-default branch after the second question.
    title:
        Human-readable description of the scene.
    duration_seconds:
        Playback duration of the segment.  Segments are later cut into
        fixed-duration chunks by :mod:`repro.media`.
    is_ending:
        ``True`` when the segment terminates the movie (no outgoing choice).
    """

    segment_id: str
    title: str
    duration_seconds: float
    is_ending: bool = False

    def __post_init__(self) -> None:
        if not self.segment_id:
            raise NarrativeError("segment_id must be a non-empty string")
        if self.duration_seconds <= 0:
            raise NarrativeError(
                f"segment {self.segment_id!r} must have positive duration, "
                f"got {self.duration_seconds}"
            )

    def chunk_count(self, chunk_duration_seconds: float) -> int:
        """Number of media chunks needed to cover the segment.

        The final chunk may be shorter than ``chunk_duration_seconds``; the
        count therefore rounds up.
        """
        if chunk_duration_seconds <= 0:
            raise NarrativeError(
                f"chunk duration must be positive, got {chunk_duration_seconds}"
            )
        full, remainder = divmod(self.duration_seconds, chunk_duration_seconds)
        return int(full) + (1 if remainder > 1e-9 else 0)
