"""Branching-narrative (interactive script) model.

An interactive movie is a directed graph of *segments*.  Playback follows a
path through the graph; at the end of some segments the viewer is presented
with a *choice point* offering (in Bandersnatch, and here) exactly two options,
one of which the platform treats as the *default* branch and prefetches.

The module is deliberately independent of any networking concern: it only
describes the script structure that the streaming simulator
(:mod:`repro.streaming`) walks and that the attack (:mod:`repro.core`)
ultimately tries to reconstruct.
"""

from repro.narrative.segment import Segment
from repro.narrative.choices import Choice, ChoicePoint, ChoiceRecord
from repro.narrative.graph import StoryGraph
from repro.narrative.path import ViewingPath, enumerate_paths, path_from_choices
from repro.narrative.bandersnatch import (
    BANDERSNATCH_CHOICE_LABELS,
    build_bandersnatch_script,
    build_linear_script,
    build_minimal_interactive_script,
)

__all__ = [
    "Segment",
    "Choice",
    "ChoicePoint",
    "ChoiceRecord",
    "StoryGraph",
    "ViewingPath",
    "enumerate_paths",
    "path_from_choices",
    "BANDERSNATCH_CHOICE_LABELS",
    "build_bandersnatch_script",
    "build_linear_script",
    "build_minimal_interactive_script",
]
