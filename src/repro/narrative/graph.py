"""The story graph: segments wired together by choice points."""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Iterator

import networkx as nx

from repro.exceptions import NarrativeError
from repro.narrative.choices import Choice, ChoicePoint
from repro.narrative.segment import Segment


class StoryGraph:
    """Directed graph of :class:`Segment` nodes and choice-point edges.

    The graph models an interactive script the way the streaming simulator
    needs it:

    * every segment is a node;
    * a segment either ends the movie (``is_ending``) or has exactly one
      outgoing :class:`ChoicePoint` with two target segments;
    * exactly one segment is the *root* (Segment 0 of the paper), where every
      viewing starts.
    """

    def __init__(self, title: str, root_segment_id: str) -> None:
        if not title:
            raise NarrativeError("story title must be non-empty")
        if not root_segment_id:
            raise NarrativeError("root segment id must be non-empty")
        self._title = title
        self._root_segment_id = root_segment_id
        self._graph = nx.DiGraph()
        self._segments: dict[str, Segment] = {}
        self._choice_points: dict[str, ChoicePoint] = {}
        self._choice_point_by_source: dict[str, str] = {}

    # -- construction ------------------------------------------------------

    def add_segment(self, segment: Segment) -> None:
        """Register a segment node."""
        if segment.segment_id in self._segments:
            raise NarrativeError(f"duplicate segment id {segment.segment_id!r}")
        self._segments[segment.segment_id] = segment
        self._graph.add_node(segment.segment_id)

    def add_segments(self, segments: Iterable[Segment]) -> None:
        """Register several segments."""
        for segment in segments:
            self.add_segment(segment)

    def add_choice_point(self, choice_point: ChoicePoint) -> None:
        """Attach a choice point to the end of its source segment."""
        if choice_point.question_id in self._choice_points:
            raise NarrativeError(
                f"duplicate choice point id {choice_point.question_id!r}"
            )
        source = choice_point.source_segment_id
        if source not in self._segments:
            raise NarrativeError(
                f"choice point {choice_point.question_id!r} references unknown "
                f"source segment {source!r}"
            )
        if self._segments[source].is_ending:
            raise NarrativeError(
                f"ending segment {source!r} cannot have a choice point"
            )
        if source in self._choice_point_by_source:
            raise NarrativeError(
                f"segment {source!r} already has a choice point attached"
            )
        for option in choice_point.options:
            if option.target_segment_id not in self._segments:
                raise NarrativeError(
                    f"choice point {choice_point.question_id!r} targets unknown "
                    f"segment {option.target_segment_id!r}"
                )
        self._choice_points[choice_point.question_id] = choice_point
        self._choice_point_by_source[source] = choice_point.question_id
        for option in choice_point.options:
            self._graph.add_edge(
                source,
                option.target_segment_id,
                question_id=choice_point.question_id,
                label=option.label,
                is_default=option.is_default,
            )

    # -- lookups -----------------------------------------------------------

    @property
    def title(self) -> str:
        """Title of the interactive movie."""
        return self._title

    @property
    def root_segment(self) -> Segment:
        """Segment 0: where every viewing session starts."""
        return self.segment(self._root_segment_id)

    @property
    def segment_ids(self) -> tuple[str, ...]:
        """All segment identifiers, in insertion order."""
        return tuple(self._segments.keys())

    @property
    def question_ids(self) -> tuple[str, ...]:
        """All choice-point identifiers, in insertion order."""
        return tuple(self._choice_points.keys())

    def segment(self, segment_id: str) -> Segment:
        """Look up a segment by id."""
        try:
            return self._segments[segment_id]
        except KeyError:
            raise NarrativeError(f"unknown segment {segment_id!r}") from None

    def choice_point(self, question_id: str) -> ChoicePoint:
        """Look up a choice point by id."""
        try:
            return self._choice_points[question_id]
        except KeyError:
            raise NarrativeError(f"unknown choice point {question_id!r}") from None

    def choice_point_after(self, segment_id: str) -> ChoicePoint | None:
        """The question shown when ``segment_id`` ends, or ``None`` for endings."""
        self.segment(segment_id)
        question_id = self._choice_point_by_source.get(segment_id)
        if question_id is None:
            return None
        return self._choice_points[question_id]

    def successors(self, segment_id: str) -> tuple[str, ...]:
        """Segments reachable in one step from ``segment_id``."""
        self.segment(segment_id)
        return tuple(self._graph.successors(segment_id))

    def ending_segments(self) -> tuple[Segment, ...]:
        """All segments flagged as endings."""
        return tuple(
            segment for segment in self._segments.values() if segment.is_ending
        )

    def iter_segments(self) -> Iterator[Segment]:
        """Iterate over all segments in insertion order."""
        return iter(self._segments.values())

    def iter_choice_points(self) -> Iterator[ChoicePoint]:
        """Iterate over all choice points in insertion order."""
        return iter(self._choice_points.values())

    def default_successor(self, segment_id: str) -> Segment | None:
        """The prefetched next segment after ``segment_id``, if any."""
        choice_point = self.choice_point_after(segment_id)
        if choice_point is None:
            return None
        return self.segment(choice_point.default_choice.target_segment_id)

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`NarrativeError` if broken.

        Invariants:

        * the root segment exists;
        * every non-ending segment has a choice point;
        * every ending segment has no outgoing edges;
        * every segment is reachable from the root;
        * at least one ending is reachable (the movie can finish).
        """
        if self._root_segment_id not in self._segments:
            raise NarrativeError(
                f"root segment {self._root_segment_id!r} is not part of the graph"
            )
        for segment in self._segments.values():
            has_choice = segment.segment_id in self._choice_point_by_source
            if segment.is_ending and has_choice:
                raise NarrativeError(
                    f"ending segment {segment.segment_id!r} has a choice point"
                )
            if not segment.is_ending and not has_choice:
                raise NarrativeError(
                    f"non-ending segment {segment.segment_id!r} has no choice point"
                )
        reachable = set(nx.descendants(self._graph, self._root_segment_id))
        reachable.add(self._root_segment_id)
        unreachable = set(self._segments) - reachable
        if unreachable:
            raise NarrativeError(
                f"segments unreachable from the root: {sorted(unreachable)}"
            )
        if not any(self._segments[s].is_ending for s in reachable):
            raise NarrativeError("no ending segment is reachable from the root")

    # -- metrics -----------------------------------------------------------

    @property
    def segment_count(self) -> int:
        """Number of segments in the script."""
        return len(self._segments)

    @property
    def choice_point_count(self) -> int:
        """Number of choice points in the script."""
        return len(self._choice_points)

    def total_content_seconds(self) -> float:
        """Sum of all segment durations (the full shot footage, not one path)."""
        return sum(segment.duration_seconds for segment in self._segments.values())

    def max_choices_on_any_path(self) -> int:
        """Upper bound on how many questions a single viewing can encounter.

        Computed as the longest path (in edges) of the condensation of the
        graph; loops therefore count once, which matches how the simulator
        caps re-visits.
        """
        condensation = nx.condensation(self._graph)
        return int(nx.dag_longest_path_length(condensation))

    def fingerprint(self) -> str:
        """A stable digest of the script's structure and timings.

        Two graphs share a fingerprint iff they describe the same title,
        segments (ids, titles, durations, endings) and choice points (ids,
        prompts, sources, timeouts and options) — everything a simulated
        session's bytes can depend on.  Datasets record it so that
        re-simulation and resumable generation can detect being handed a
        different script than the one that produced the stored traces.
        """
        canonical = {
            "title": self._title,
            "root": self._root_segment_id,
            "segments": [
                [
                    segment.segment_id,
                    segment.title,
                    segment.duration_seconds,
                    segment.is_ending,
                ]
                for segment in sorted(
                    self._segments.values(), key=lambda s: s.segment_id
                )
            ],
            "choice_points": [
                [
                    point.question_id,
                    point.prompt,
                    point.source_segment_id,
                    point.timeout_seconds,
                    [
                        [option.label, option.target_segment_id, option.is_default]
                        for option in point.options
                    ],
                ]
                for point in sorted(
                    self._choice_points.values(), key=lambda p: p.question_id
                )
            ],
        }
        digest = hashlib.sha256(
            json.dumps(canonical, sort_keys=True).encode("utf-8")
        )
        return digest.hexdigest()

    def to_networkx(self) -> nx.DiGraph:
        """Return a copy of the underlying ``networkx`` graph."""
        return self._graph.copy()

    def __contains__(self, segment_id: object) -> bool:
        return segment_id in self._segments

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"StoryGraph(title={self._title!r}, segments={self.segment_count}, "
            f"choice_points={self.choice_point_count})"
        )


def choice_edge_attributes(graph: StoryGraph) -> list[dict[str, object]]:
    """Flatten every (question, option) pair into a row for reporting."""
    rows: list[dict[str, object]] = []
    for choice_point in graph.iter_choice_points():
        for option in choice_point.options:
            rows.append(
                {
                    "question_id": choice_point.question_id,
                    "source_segment": choice_point.source_segment_id,
                    "label": option.label,
                    "target_segment": option.target_segment_id,
                    "is_default": option.is_default,
                }
            )
    return rows
