"""Script builders, including a Bandersnatch-like interactive script.

Netflix's actual Bandersnatch script is proprietary; what matters for the
side-channel is only its *structure*: a common opening segment, a trunk of
roughly ten binary choice points reached by every viewer, branch segments of a
few minutes each, and several endings.  :func:`build_bandersnatch_script`
constructs a script with those structural properties and with choice prompts
paraphrasing the kinds of decisions the paper cites as sensitive (food
preference, media taste, aggression, compliance with authority, ...), which
the behavioural profiling code in :mod:`repro.core.profiling` keys off.
"""

from __future__ import annotations

from repro.narrative.choices import Choice, ChoicePoint
from repro.narrative.graph import StoryGraph
from repro.narrative.segment import Segment

#: question id -> (trait probed, default label, non-default label)
BANDERSNATCH_CHOICE_LABELS: dict[str, tuple[str, str, str]] = {
    "Q1": ("food_preference", "cereal_a", "cereal_b"),
    "Q2": ("music_taste", "mainstream_tape", "alt_tape"),
    "Q3": ("compliance", "accept_job_offer", "decline_job_offer"),
    "Q4": ("openness", "visit_therapist", "follow_colleague"),
    "Q5": ("risk_taking", "refuse_substance", "accept_substance"),
    "Q6": ("aggression", "pour_tea_on_computer", "shout_at_father"),
    "Q7": ("conformity", "bite_nails", "pull_earlobe"),
    "Q8": ("violence", "back_off", "attack_father"),
    "Q9": ("trust", "bury_evidence", "chop_up_evidence"),
    "Q10": ("fatalism", "accept_ending", "try_again"),
}


def build_bandersnatch_script(
    trunk_segment_minutes: float = 6.0,
    branch_segment_minutes: float = 4.0,
    ending_minutes: float = 8.0,
) -> StoryGraph:
    """Build the Bandersnatch-like script used throughout the reproduction.

    Structure (mirroring Figure 1 of the paper and public descriptions of the
    film's trunk): an opening Segment 0 shared by every viewer, then ten
    binary choice points ``Q1..Q10``.  Each question offers a *default*
    branch segment ``S{i}a`` (prefetched by the platform) and a non-default
    branch ``S{i}b``; both branches re-join at the next question, except the
    last pair which lead to two distinct endings.

    Parameters are the segment durations in minutes; the defaults give a
    script whose single-path runtime (~55 minutes) is in the right ballpark
    for one Bandersnatch playthrough.
    """
    graph = StoryGraph(title="Black Mirror: Bandersnatch (reproduction)", root_segment_id="S0")
    graph.add_segment(
        Segment(
            segment_id="S0",
            title="Opening: introduction of the protagonist",
            duration_seconds=trunk_segment_minutes * 60.0,
        )
    )

    question_ids = list(BANDERSNATCH_CHOICE_LABELS.keys())
    for index, question_id in enumerate(question_ids, start=1):
        is_last = index == len(question_ids)
        default_id = f"S{index}a"
        alternate_id = f"S{index}b"
        duration = (ending_minutes if is_last else branch_segment_minutes) * 60.0
        trait, default_label, alternate_label = BANDERSNATCH_CHOICE_LABELS[question_id]
        graph.add_segment(
            Segment(
                segment_id=default_id,
                title=f"Default branch after {question_id} ({trait})",
                duration_seconds=duration,
                is_ending=is_last,
            )
        )
        graph.add_segment(
            Segment(
                segment_id=alternate_id,
                title=f"Alternative branch after {question_id} ({trait})",
                duration_seconds=duration,
                is_ending=is_last,
            )
        )

    # Wire choice points.  The source of Q1 is S0; the source of Q(i) for
    # i > 1 alternates depending on the branch taken at Q(i-1): in the real
    # film most branches re-join the trunk, so both S(i-1)a and S(i-1)b lead
    # to the same question.  A StoryGraph attaches one choice point per
    # source segment, so each branch segment gets its own ChoicePoint object
    # sharing the same question id semantics; we give them distinct ids of
    # the form "Qi@segment" but a shared "canonical" prefix.
    previous_sources = ["S0"]
    for index, question_id in enumerate(question_ids, start=1):
        trait, default_label, alternate_label = BANDERSNATCH_CHOICE_LABELS[question_id]
        default_target = f"S{index}a"
        alternate_target = f"S{index}b"
        for source in previous_sources:
            suffix = "" if len(previous_sources) == 1 else f"@{source}"
            graph.add_choice_point(
                ChoicePoint(
                    question_id=f"{question_id}{suffix}",
                    prompt=f"Decision on {trait.replace('_', ' ')}",
                    source_segment_id=source,
                    options=(
                        Choice(
                            label=default_label,
                            target_segment_id=default_target,
                            is_default=True,
                        ),
                        Choice(
                            label=alternate_label,
                            target_segment_id=alternate_target,
                            is_default=False,
                        ),
                    ),
                )
            )
        previous_sources = [default_target, alternate_target]

    graph.validate()
    return graph


def canonical_question_id(question_id: str) -> str:
    """Strip the ``@segment`` disambiguation suffix from a question id.

    Both branch copies of question ``Q3`` (attached to ``S2a`` and ``S2b``)
    canonicalise to ``"Q3"``; the attack reconstructs choices at this
    granularity because an eavesdropper cannot tell which copy fired.
    """
    return question_id.split("@", 1)[0]


def build_minimal_interactive_script() -> StoryGraph:
    """Tiny two-question script matching the worked example of Figure 1.

    Segment 0 leads to Q1 (default S1, alternative S1'); both branches lead
    to Q2 (default S2, alternative S2'), whose targets are endings.  Used by
    unit tests and by the Figure 1 reproduction.
    """
    graph = StoryGraph(title="Figure 1 example", root_segment_id="S0")
    graph.add_segments(
        [
            Segment("S0", "Common opening", duration_seconds=300.0),
            Segment("S1", "Default branch after Q1", duration_seconds=240.0),
            Segment("S1p", "Alternative branch after Q1", duration_seconds=240.0),
            Segment("S2", "Default branch after Q2", duration_seconds=300.0, is_ending=True),
            Segment("S2p", "Alternative branch after Q2", duration_seconds=300.0, is_ending=True),
        ]
    )
    graph.add_choice_point(
        ChoicePoint(
            question_id="Q1",
            prompt="First on-screen question",
            source_segment_id="S0",
            options=(
                Choice("option_default_1", "S1", is_default=True),
                Choice("option_alternate_1", "S1p", is_default=False),
            ),
        )
    )
    for source, suffix in (("S1", ""), ("S1p", "@S1p")):
        graph.add_choice_point(
            ChoicePoint(
                question_id=f"Q2{suffix}",
                prompt="Second on-screen question",
                source_segment_id=source,
                options=(
                    Choice("option_default_2", "S2", is_default=True),
                    Choice("option_alternate_2", "S2p", is_default=False),
                ),
            )
        )
    graph.validate()
    return graph


def build_linear_script(segment_count: int = 5, segment_minutes: float = 10.0) -> StoryGraph:
    """A conventional (non-interactive) title used by the baseline experiments.

    A linear script still needs the StoryGraph invariants to hold, so each
    intermediate segment gets a degenerate choice point whose two options
    both continue the movie (one to the next segment, one to a recap segment
    that also rejoins).  The streaming simulator never shows these to the
    viewer because the ``interactive`` flag on the session is off; they only
    exist to keep the graph well-formed.
    """
    if segment_count < 2:
        raise ValueError("a linear script needs at least two segments")
    graph = StoryGraph(title="Conventional linear title", root_segment_id="L0")
    for index in range(segment_count):
        graph.add_segment(
            Segment(
                segment_id=f"L{index}",
                title=f"Linear segment {index}",
                duration_seconds=segment_minutes * 60.0,
                is_ending=index == segment_count - 1,
            )
        )
    # recap segments provide the second edge required by the binary choice model
    for index in range(segment_count - 1):
        graph.add_segment(
            Segment(
                segment_id=f"L{index}r",
                title=f"Recap of segment {index}",
                duration_seconds=60.0,
                is_ending=index + 1 == segment_count - 1,
            )
        )
    for index in range(segment_count - 1):
        graph.add_choice_point(
            ChoicePoint(
                question_id=f"LQ{index + 1}",
                prompt="continue",
                source_segment_id=f"L{index}",
                options=(
                    Choice("continue", f"L{index + 1}", is_default=True),
                    Choice("recap", f"L{index}r", is_default=False),
                ),
            )
        )
        if index + 1 < segment_count - 1:
            graph.add_choice_point(
                ChoicePoint(
                    question_id=f"LQ{index + 1}r",
                    prompt="continue",
                    source_segment_id=f"L{index}r",
                    options=(
                        Choice("continue", f"L{index + 1}", is_default=True),
                        Choice("skip_ahead", f"L{index + 1}r", is_default=False),
                    ),
                )
            )
    graph.validate()
    return graph
