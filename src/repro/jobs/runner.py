"""The job runner: executes a typed spec against a workspace, emitting events.

This is the application layer the CLI used to fuse into its command
handlers: one ``_run_*`` method per :mod:`repro.jobs.specs` class, each
orchestrating the same domain calls the old ``cmd_*`` made — but reporting
through the :class:`~repro.jobs.events.EventBus` instead of printing, and
returning a typed :class:`JobResult` naming every durable output as a
content-fingerprinted :class:`~repro.jobs.artifacts.Artifact`.

The progress callbacks threaded into the dataset, ingest and engine layers
(:data:`repro.engine.executor.ProgressCallback` — ``(done, total)`` with
``total=None`` when unsized) are adapted onto the bus here, so those
subsystems stay renderer-agnostic: the same run narrates to a terminal, a
JSONL pipeline, or a future coordinator's event feed depending only on
which sinks are attached.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.features import extract_client_records
from repro.core.fingerprint import FingerprintAccumulator, FingerprintLibrary
from repro.core.pipeline import AttackResult, WhiteMirrorAttack
from repro.dataset.collection import collect_dataset, default_study_script
from repro.dataset.format import (
    METADATA_FILENAME,
    load_dataset_metadata,
    session_config_from_metadata,
)
from repro.dataset.iitm import DatasetSummary, IITMBandersnatchDataset
from repro.dataset.population import viewers_from_metadata_entries
from repro.dataset.shards import (
    SHARD_GENERATED,
    SHARDS_MANIFEST_FILENAME,
    ShardedDataset,
    discover_shard_directories,
    generate_shard_subset,
    generate_sharded_dataset,
    iter_shard_training_sessions,
    load_consistent_shard_metadata,
    merge_shard_summaries,
    parse_shard_selection,
    stitch_sharded_dataset,
)
from repro.dataset.sidecar import fold_shard_sidecar
from repro.engine.executor import ProgressCallback
from repro.exceptions import DatasetError, JobError, ReproError
from repro.ingest.fleet import (
    FleetWatchService,
    LibraryReloadWatcher,
    validate_sources,
)
from repro.ingest.metrics import METRICS_PATH, IngestMetrics, MetricsServer
from repro.ingest.service import (
    SKIP_ALREADY_ATTACKED,
    SKIP_UNREADABLE,
    StreamingAttackService,
)
from repro.ingest.tasks import build_pcap_task, metadata_entries_near
from repro.jobs import events as ev
from repro.jobs.artifacts import Artifact, Workspace
from repro.jobs.events import EventBus
from repro.jobs.specs import (
    ArenaCellJob,
    ArenaJob,
    AttackJob,
    GenerateJob,
    InspectJob,
    JobSpec,
    MergeFingerprintsJob,
    ReproduceJob,
    ServeJob,
    StitchJob,
    TrainJob,
    WatchJob,
    WorkJob,
)
from repro.net.capture import CapturedTrace
from repro.net.packet import Direction
from repro.streaming.session import SessionConfig
from repro.utils.stats import summarize


@dataclass(frozen=True)
class JobResult:
    """What a completed job produced: artifacts plus summary numbers."""

    job: str
    artifacts: tuple[Artifact, ...] = ()
    summary: dict = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "job": self.job,
            "artifacts": [artifact.to_dict() for artifact in self.artifacts],
            "summary": dict(self.summary),
        }


class JobRunner:
    """Executes job specs against a workspace, narrating through a bus."""

    def __init__(self, bus: EventBus, workspace: Workspace | None = None) -> None:
        self._bus = bus
        self._workspace = workspace if workspace is not None else Workspace()
        self._runners: dict[type[JobSpec], Callable[[JobSpec], JobResult]] = {
            GenerateJob: self._run_generate,
            TrainJob: self._run_train,
            StitchJob: self._run_stitch,
            MergeFingerprintsJob: self._run_merge_fingerprints,
            AttackJob: self._run_attack,
            WatchJob: self._run_watch,
            ReproduceJob: self._run_reproduce,
            InspectJob: self._run_inspect,
            ArenaJob: self._run_arena,
            ArenaCellJob: self._run_arena_cell,
            ServeJob: self._run_serve,
            WorkJob: self._run_work,
        }

    @property
    def workspace(self) -> Workspace:
        return self._workspace

    def run(self, spec: JobSpec) -> JobResult:
        """Validate and execute ``spec``; emits a final ``result`` event."""
        runner = self._runners.get(type(spec))
        if runner is None:
            raise JobError(
                f"no runner for job spec {type(spec).__name__}; known kinds: "
                f"{sorted(cls.KIND for cls in self._runners)}"
            )
        spec.validate()
        result = runner(spec)
        self._bus.emit(ev.RESULT, **result.to_dict())
        return result

    def _resolve(self, path: str) -> str:
        """A spec path, anchored to this runner's workspace.

        Domain calls receive resolved paths (so the same spec runs in any
        workspace — the CLI's cwd, a worker's scratch directory); event
        payloads keep the spec's own strings, so narration matches what
        the caller wrote.
        """
        return str(self._workspace.resolve(path))

    # -- shared emit helpers -----------------------------------------------

    def _emit_summary(self, summary: DatasetSummary) -> None:
        self._bus.emit(
            ev.DATASET_SUMMARY,
            viewers=summary.viewer_count,
            conditions=summary.distinct_conditions,
            choices=summary.total_choices,
            packets=summary.total_packets,
        )

    def _emit_fingerprints(self, library: FingerprintLibrary, output: str) -> None:
        self._bus.emit(
            ev.FINGERPRINTS, rows=fingerprint_rows(library), output=output
        )

    def _session_progress(self) -> ProgressCallback:
        return lambda done, total: self._bus.emit(
            ev.PROGRESS, completed=done, total=total, unit="sessions"
        )

    # -- generate ----------------------------------------------------------

    def _run_generate(self, spec: GenerateJob) -> JobResult:
        """Build and persist a synthetic dataset (streaming generation).

        Generation always streams: each viewer's session is persisted as
        the engine completes it, so peak memory is bounded by the in-flight
        window (and, with shards, per-shard state) rather than the
        population.
        """
        config = SessionConfig(cross_traffic_enabled=spec.cross_traffic)
        progress = self._session_progress()
        dataset_artifact = lambda: self._workspace.artifact("dataset", spec.output)  # noqa: E731
        if spec.shards is not None:
            verb = "resuming" if spec.resume else "generating"
            # A shard reports e.g. "quarantined+generated" when a partial
            # copy was moved aside before regeneration.
            shard_states: dict[str, list[str]] = {}
            record_state = lambda shard, state: shard_states.setdefault(  # noqa: E731
                shard.dirname, []
            ).append(state)
            if spec.only_shards is not None:
                selection = parse_shard_selection(spec.only_shards, spec.shards)
                self._bus.emit(
                    ev.GENERATION_STARTED,
                    verb=verb,
                    viewers=spec.viewers,
                    seed=spec.seed,
                    shards=spec.shards,
                    selection=list(selection),
                )
                summaries = generate_shard_subset(
                    self._resolve(spec.output),
                    viewer_count=spec.viewers,
                    shard_count=spec.shards,
                    only_shards=selection,
                    seed=spec.seed,
                    config=config,
                    workers=spec.workers,
                    shard_workers=spec.shard_workers,
                    write_pcaps=spec.write_pcaps,
                    progress=progress,
                    resume=spec.resume,
                    status=record_state,
                )
                self._bus.emit(ev.PROGRESS_FINISHED)
                for shard in summaries:
                    state = "+".join(
                        shard_states.get(shard.directory, [SHARD_GENERATED])
                    )
                    self._bus.emit(
                        ev.SHARD_COMPLETE,
                        shard=shard.directory,
                        viewers=shard.viewer_count,
                        state=state,
                    )
                self._bus.emit(
                    ev.SUBSET_WRITTEN,
                    written=len(summaries),
                    planned=spec.shards,
                    root=spec.output,
                )
                merged = merge_shard_summaries(summaries)
                self._emit_summary(merged)
                return JobResult(
                    job=spec.KIND,
                    artifacts=(dataset_artifact(),),
                    summary={
                        "viewers": merged.viewer_count,
                        "shards_written": len(summaries),
                        "shards_planned": spec.shards,
                    },
                )
            self._bus.emit(
                ev.GENERATION_STARTED,
                verb=verb,
                viewers=spec.viewers,
                seed=spec.seed,
                shards=spec.shards,
                selection=None,
            )
            dataset = generate_sharded_dataset(
                self._resolve(spec.output),
                viewer_count=spec.viewers,
                shard_count=spec.shards,
                seed=spec.seed,
                config=config,
                workers=spec.workers,
                shard_workers=spec.shard_workers,
                write_pcaps=spec.write_pcaps,
                progress=progress,
                resume=spec.resume,
                status=record_state,
            )
            self._bus.emit(ev.PROGRESS_FINISHED)
            for shard in dataset.shard_summaries:
                state = "+".join(shard_states.get(shard.directory, [SHARD_GENERATED]))
                self._bus.emit(
                    ev.SHARD_COMPLETE,
                    shard=shard.directory,
                    viewers=shard.viewer_count,
                    state=state,
                )
            self._bus.emit(
                ev.ARTIFACT_WRITTEN,
                path=str(Path(spec.output) / SHARDS_MANIFEST_FILENAME),
            )
            summary = dataset.summary()
            self._emit_summary(summary)
            return JobResult(
                job=spec.KIND,
                artifacts=(dataset_artifact(),),
                summary={
                    "viewers": summary.viewer_count,
                    "shards": spec.shards,
                },
            )
        self._bus.emit(
            ev.GENERATION_STARTED,
            verb="generating",
            viewers=spec.viewers,
            seed=spec.seed,
            shards=None,
            selection=None,
        )
        metadata_path, summary = IITMBandersnatchDataset.generate_streaming(
            self._resolve(spec.output),
            viewer_count=spec.viewers,
            seed=spec.seed,
            config=config,
            progress=progress,
            workers=spec.workers,
            write_pcaps=spec.write_pcaps,
        )
        self._bus.emit(ev.PROGRESS_FINISHED)
        self._bus.emit(
            ev.ARTIFACT_WRITTEN,
            path=str(Path(spec.output) / METADATA_FILENAME),
        )
        self._emit_summary(summary)
        return JobResult(
            job=spec.KIND,
            artifacts=(dataset_artifact(),),
            summary={"viewers": summary.viewer_count},
        )

    # -- train -------------------------------------------------------------

    def _run_train(self, spec: TrainJob) -> JobResult:
        """Learn fingerprints from a saved dataset's pcaps.

        The ground-truth labels needed for training do not live in the
        pcaps (by design), so training re-simulates the calibration
        viewers' sessions from the dataset metadata; ``sharded`` walks a
        whole sharded dataset root shard by shard with bounded memory.
        """
        directory = self._workspace.resolve(spec.dataset)
        if spec.sharded:
            return self._train_sharded(spec, directory)
        train_fraction = (
            0.5 if spec.train_fraction is None else spec.train_fraction
        )
        try:
            metadata = load_dataset_metadata(directory)
        except DatasetError as error:
            if (directory / SHARDS_MANIFEST_FILENAME).exists():
                raise DatasetError(
                    f"{directory} is a sharded dataset root (it has a "
                    f"{SHARDS_MANIFEST_FILENAME}); train on it with --sharded, "
                    "or point at one of its shard directories"
                ) from error
            raise
        seed = _dataset_seed_from_metadata(metadata)
        graph = default_study_script()
        viewers = viewers_from_metadata_entries(metadata["entries"], directory)
        # Replay under the configuration that produced the dataset's pcaps;
        # datasets from before configs were recorded fall back to defaults.
        config = session_config_from_metadata(metadata) or SessionConfig()
        points = collect_dataset(
            viewers,
            dataset_seed=seed,
            graph=graph,
            config=config,
            workers=spec.workers,
        )
        dataset = IITMBandersnatchDataset(
            points=points, graph=graph, seed=seed, config=config
        )
        train_points, _ = dataset.train_test_split(
            test_fraction=1.0 - train_fraction
        )
        attack = WhiteMirrorAttack(graph=dataset.graph, band_margin=spec.margin)
        attack.train([point.session for point in train_points])
        attack.library.save(self._resolve(spec.output))
        self._emit_fingerprints(attack.library, spec.output)
        return JobResult(
            job=spec.KIND,
            artifacts=(self._workspace.artifact("fingerprint-library", spec.output),),
            summary={"environments": len(attack.library.condition_keys)},
        )

    def _train_sharded(self, spec: TrainJob, directory: Path) -> JobResult:
        """Fold a sharded dataset into the fingerprints shard by shard.

        The whole sharded dataset is the attacker's calibration corpus
        (held-out evaluation splits are the experiment drivers' job), so
        every shard's sessions are re-simulated lazily and folded into the
        fingerprint accumulator — peak memory holds one engine window of
        sessions regardless of the population size, and the resulting
        library is identical to batch training over every session at once.

        A *subset root* — shard directories written by ``--only-shards``
        with no ``shards.json`` manifest yet — also trains: the machine
        folds in whatever shards it holds locally, and ``save_state``
        serialises the running accumulator so the per-machine states can
        later be combined with ``repro merge-fingerprints`` into exactly
        the library one machine training over the stitched root would
        learn.

        Shards carrying a fresh columnar sidecar (``traces/records.npz``,
        see :mod:`repro.dataset.sidecar`) skip re-simulation entirely:
        their recorded wire lengths and ground-truth label codes fold
        straight into the accumulator, per-record identical to
        re-simulating.
        """
        if (directory / SHARDS_MANIFEST_FILENAME).exists() or (
            directory / METADATA_FILENAME
        ).exists():
            # A stitched/complete root (or a single dataset directory, which
            # ShardedDataset.load rejects with guidance).
            dataset = ShardedDataset.load(directory)
            viewer_count = dataset.viewer_count
            shard_directories = dataset.shard_directories()
            self._bus.emit(
                ev.TRAINING_STARTED,
                viewers=viewer_count,
                shards=dataset.shard_count,
                subset=False,
            )
        else:
            try:
                found = discover_shard_directories(directory)
            except DatasetError as error:
                raise DatasetError(
                    f"{directory} is not a sharded dataset root: no "
                    f"{SHARDS_MANIFEST_FILENAME} manifest and no shard-NNN "
                    "directories (generate one with `repro generate-dataset "
                    "--shards N`)"
                ) from error
            metadata_by_shard = load_consistent_shard_metadata(found)
            viewer_count = sum(
                int(metadata["viewer_count"]) for metadata in metadata_by_shard
            )
            shard_directories = [path for _index, path in found]
            self._bus.emit(
                ev.TRAINING_STARTED,
                viewers=viewer_count,
                shards=len(found),
                subset=True,
            )
        attack = WhiteMirrorAttack(
            graph=default_study_script(), band_margin=spec.margin
        )
        accumulator = FingerprintAccumulator()
        pending: list[Path] = []
        folded_shards = 0
        folded_records = 0
        for shard_directory in shard_directories:
            folded = fold_shard_sidecar(shard_directory, accumulator)
            if folded is None:
                pending.append(shard_directory)
            else:
                folded_shards += 1
                folded_records += folded
        if folded_shards:
            self._bus.emit(
                ev.SIDECAR_FOLDED,
                folded=folded_shards,
                shards=len(shard_directories),
                records=folded_records,
            )
        if pending:
            attack.train_incremental(
                (
                    iter_shard_training_sessions(path, workers=spec.workers)
                    for path in pending
                ),
                progress=lambda folded: self._bus.emit(
                    ev.PROGRESS,
                    completed=folded,
                    total=None,
                    unit="resimulated-sessions",
                ),
                accumulator=accumulator,
            )
            self._bus.emit(ev.PROGRESS_FINISHED)
        else:
            # Every shard folded from its sidecar; finalise the accumulated
            # state directly (train_incremental would reject zero sessions).
            accumulator.finalize_into(attack.library, margin=spec.margin)
        artifacts: list[Artifact] = []
        if spec.save_state:
            accumulator.save(self._resolve(spec.save_state))
            self._bus.emit(
                ev.ARTIFACT_WRITTEN,
                path=spec.save_state,
                label="accumulator-state",
            )
            artifacts.append(
                self._workspace.artifact("accumulator-state", spec.save_state)
            )
        attack.library.save(self._resolve(spec.output))
        self._emit_fingerprints(attack.library, spec.output)
        artifacts.insert(
            0, self._workspace.artifact("fingerprint-library", spec.output)
        )
        return JobResult(
            job=spec.KIND,
            artifacts=tuple(artifacts),
            summary={
                "environments": len(attack.library.condition_keys),
                "viewers": viewer_count,
            },
        )

    # -- stitch ------------------------------------------------------------

    def _run_stitch(self, spec: StitchJob) -> JobResult:
        """Verify rsync'd shards and publish the merged manifest.

        The distributed-generation closing step: machines that split one
        plan with ``generate-dataset --only-shards`` copy their shard
        directories under one root, and stitching validates the union
        against the recorded seed, session configuration and story-graph
        fingerprint — without regenerating or re-reading a single pcap —
        then writes ``shards.json``.
        """
        self._bus.emit(ev.STITCH_STARTED, root=spec.root)
        dataset = stitch_sharded_dataset(
            self._resolve(spec.root),
            status=lambda shard, state: self._bus.emit(
                ev.SHARD_COMPLETE,
                shard=shard.dirname,
                viewers=shard.viewer_count,
                state=state,
            ),
        )
        self._bus.emit(
            ev.ARTIFACT_WRITTEN,
            path=str(Path(spec.root) / SHARDS_MANIFEST_FILENAME),
        )
        summary = dataset.summary()
        self._emit_summary(summary)
        return JobResult(
            job=spec.KIND,
            artifacts=(
                self._workspace.artifact("manifest", dataset.manifest_path),
            ),
            summary={"viewers": summary.viewer_count},
        )

    # -- merge-fingerprints ------------------------------------------------

    def _run_merge_fingerprints(self, spec: MergeFingerprintsJob) -> JobResult:
        """Fold per-machine calibration states into one library.

        Each input is the accumulator state a machine saved with ``repro
        train --sharded --save-state``; the states merge like shard
        summaries (band extremes fold, record counts add) and finalise into
        a fingerprint library identical — byte for byte — to
        single-machine training over the union of the machines' shards.
        """
        merged = FingerprintAccumulator()
        for path in spec.states:
            state = FingerprintAccumulator.load(self._resolve(path))
            merged.merge(state)
            self._bus.emit(
                ev.STATE_FOLDED,
                path=path,
                environments=len(state.condition_keys),
                records=state.record_count,
            )
        artifacts: list[Artifact] = []
        if spec.save_state:
            merged.save(self._resolve(spec.save_state))
            self._bus.emit(
                ev.ARTIFACT_WRITTEN,
                path=spec.save_state,
                label="merged-accumulator-state",
            )
            artifacts.append(
                self._workspace.artifact("accumulator-state", spec.save_state)
            )
        library = FingerprintLibrary()
        merged.finalize_into(library, margin=spec.margin)
        library.save(self._resolve(spec.output))
        self._emit_fingerprints(library, spec.output)
        artifacts.insert(
            0, self._workspace.artifact("fingerprint-library", spec.output)
        )
        return JobResult(
            job=spec.KIND,
            artifacts=tuple(artifacts),
            summary={"environments": len(library.condition_keys)},
        )

    # -- attack ------------------------------------------------------------

    def _run_attack(self, spec: AttackJob) -> JobResult:
        """Recover choices from a pcap or a directory of pcaps."""
        target = self._workspace.resolve(spec.target)
        if target.is_dir():
            return self._attack_directory(spec, target)
        if spec.results_log:
            # Fail at the point of misuse, not in a consumer that later
            # finds the log was never written.
            raise ReproError(
                "--results-log applies to directory targets; attack the "
                "capture's directory to log its verdict"
            )
        return self._attack_single(spec, target)

    def _attack_single(self, spec: AttackJob, target: Path) -> JobResult:
        entry = metadata_entries_near(target.parent).get(target.name)
        task = build_pcap_task(
            target,
            entry,
            environment=spec.environment,
            client_ip=spec.client_ip,
            server_ip=spec.server_ip,
        )
        library = FingerprintLibrary.load(self._resolve(spec.library))
        attack = WhiteMirrorAttack(graph=default_study_script(), library=library)
        result = attack.attack_pcap(
            task.path,
            condition_key=task.condition_key,
            client_ip=task.client_ip,
            server_ip=task.server_ip,
        )
        self._bus.emit(
            ev.CHOICES_RECOVERED,
            capture=None,
            condition_key=task.condition_key,
            rows=_choice_rows(result),
        )
        if result.profile is not None:
            self._bus.emit(
                ev.PROFILE,
                rows=[
                    {"trait": trait, "revealed_value": label}
                    for trait, label in result.profile.as_dict().items()
                ],
            )
        return JobResult(
            job=spec.KIND,
            summary={"choices": len(result.inferred.events)},
        )

    def _build_attack_service(
        self, spec: AttackJob | WatchJob, log_path: str | None
    ) -> StreamingAttackService:
        """The one capture→verdict code path both attack modes run through."""
        library = FingerprintLibrary.load(self._resolve(spec.library))
        return StreamingAttackService(
            library=library,
            log_path=self._resolve(log_path) if log_path else None,
            workers=spec.workers,
            environment=spec.environment,
            client_ip=spec.client_ip,
            server_ip=spec.server_ip,
        )

    def _attack_directory(self, spec: AttackJob, target: Path) -> JobResult:
        target, pcaps = _directory_pcaps(target)
        service = self._build_attack_service(spec, spec.results_log)
        skip_reasons: list[str] = []

        def on_skip(path: Path, reason: str) -> None:
            skip_reasons.append(reason)
            self._bus.emit(ev.CAPTURE_SKIPPED, capture=path.name, reason=reason)

        def on_verdict(verdict, result: AttackResult) -> None:
            self._bus.emit(
                ev.CHOICES_RECOVERED,
                capture=verdict.capture,
                condition_key=verdict.condition_key,
                rows=_choice_rows(result),
            )

        fresh = service.process(pcaps, on_verdict=on_verdict, on_skip=on_skip)
        if not fresh and SKIP_ALREADY_ATTACKED not in skip_reasons:
            # Nothing was attacked and nothing resumed: the batch caller
            # made an error upstream; name the dominant cause with its fix.
            if any("--environment" in reason for reason in skip_reasons):
                raise ReproError(
                    f"cannot determine the environment of the captures under "
                    f"{target}: pass --environment or attack captures that sit "
                    "next to their dataset metadata.json"
                )
            if SKIP_UNREADABLE in skip_reasons:
                raise ReproError(
                    f"no readable captures under {target}: every .pcap vanished "
                    "or failed to read (rotated away by its writer?)"
                )
            if all("fingerprint library" in reason for reason in skip_reasons):
                raise ReproError(
                    "no attackable captures: none of the environments are in "
                    "the fingerprint library"
                )
            raise ReproError(
                f"no attackable captures under {target}: every capture was "
                "skipped (see the reasons above)"
            )
        self._bus.emit(
            ev.AGGREGATE,
            attacked=len(fresh),
            total=len(pcaps),
            choices=sum(verdict.choice_count for verdict in fresh),
            correct=sum(verdict.correct_questions for verdict in fresh),
            questions=sum(verdict.question_count for verdict in fresh),
        )
        artifacts: tuple[Artifact, ...] = ()
        if service.log_path is not None:
            self._bus.emit(
                ev.ARTIFACT_WRITTEN,
                path=spec.results_log,
                label="results-log",
            )
            artifacts = (
                self._workspace.artifact("results-log", spec.results_log),
            )
        return JobResult(
            job=spec.KIND,
            artifacts=artifacts,
            summary={"attacked": len(fresh), "captures": len(pcaps)},
        )

    # -- watch -------------------------------------------------------------

    def _run_watch(self, spec: WatchJob) -> JobResult:
        """Attack captures as they land in a drop directory.

        The online counterpart of ``repro attack`` over a directory,
        sharing its capture→verdict code path
        (:class:`StreamingAttackService`): detected captures are attacked
        as they finish landing, each verdict is durably appended to the
        results log, and a running aggregate-accuracy table follows every
        batch.  ``follow=False`` drains the directory and exits — over a
        quiescent directory its results log is byte-identical to ``repro
        attack --results-log`` on the same pcaps.  A restarted watch
        resumes from the log, skipping captures already attacked (by
        content fingerprint).

        With ``--source`` directories the spec routes to the fleet branch
        instead: N watched sources through one bounded queue, one shared
        results log, every verdict stamped with its source.
        """
        if spec.sources:
            return self._run_watch_fleet(spec)
        directory = self._workspace.resolve(spec.directory)
        if not directory.is_dir():
            # Checked before the service builds its results log (which
            # defaults into this directory), so the error names the actual
            # mistake.
            raise ReproError(
                f"capture drop directory {directory} does not exist (create it "
                "before watching, or point at a dataset's traces/)"
            )
        log_path = spec.results_log or str(Path(spec.directory) / "results.jsonl")
        service = self._build_attack_service(spec, log_path)
        resumed = len(service.verdicts)
        if resumed:
            self._bus.emit(ev.RESUMED, count=resumed, path=log_path)

        def on_skip(path: Path, reason: str) -> None:
            self._bus.emit(ev.CAPTURE_SKIPPED, capture=path.name, reason=reason)

        def on_verdict(verdict, result: AttackResult) -> None:
            self._bus.emit(
                ev.VERDICT,
                capture=verdict.capture,
                fingerprint=verdict.fingerprint,
                condition_key=verdict.condition_key,
                pattern=list(verdict.pattern),
                truth=list(verdict.truth) if verdict.truth is not None else None,
                correct=verdict.correct_questions,
                questions=verdict.question_count,
            )
            self._bus.emit(ev.AGGREGATE, rows=service.aggregate_rows())

        try:
            service.run(
                directory,
                follow=spec.follow,
                poll_interval=spec.poll_interval,
                on_verdict=on_verdict,
                on_skip=on_skip,
                on_error=lambda error: self._bus.emit(
                    ev.WARNING,
                    text=f"batch failed, still watching: {error}",
                ),
            )
        except KeyboardInterrupt:
            self._bus.emit(ev.STOPPED)
        self._bus.emit(
            ev.RESULTS_LOG, path=log_path, total=len(service.verdicts)
        )
        return JobResult(
            job=spec.KIND,
            artifacts=(self._workspace.artifact("results-log", log_path),),
            summary={"verdicts": len(service.verdicts)},
        )

    def _run_watch_fleet(self, spec: WatchJob) -> JobResult:
        """Watch a fleet of capture sources through one bounded queue.

        Sources are validated and canonically ordered up front; every
        verdict carries its source label, and the running aggregate table
        is broken down per source.  ``--once`` drains every source and
        exits with a results log byte-identical to serial single-source
        fleet runs concatenated in canonical source order — the PR 5
        watch-vs-attack wall, multiplied across sources.
        """
        sources = validate_sources(
            spec.sources, resolve=self._workspace.resolve
        )
        # The reload stage is validated before the main library loads so a
        # bad --reload-library fails on its own flag, not on a coincidence
        # of which file was read first.
        reload_watcher = None
        if spec.reload_library is not None:
            reload_watcher = LibraryReloadWatcher(
                self._resolve(spec.reload_library)
            )
        log_path = spec.results_log  # validate() requires it in fleet mode
        service = self._build_attack_service(spec, log_path)
        resumed = len(service.verdicts)
        if resumed:
            self._bus.emit(ev.RESUMED, count=resumed, path=log_path)

        metrics: IngestMetrics | None = None
        server: MetricsServer | None = None
        if spec.metrics_port is not None:
            metrics = IngestMetrics()
            server = MetricsServer(metrics, port=spec.metrics_port)
            host, port = server.start()
            self._bus.emit(
                ev.METRICS_SERVING, host=host, port=port, path=METRICS_PATH
            )

        queue_low = (
            spec.queue_low
            if spec.queue_low is not None
            else spec.queue_high // 2
        )

        def on_saturated(source: str, depth: int) -> None:
            self._bus.emit(
                ev.QUEUE_SATURATED,
                source=source,
                depth=depth,
                high_watermark=spec.queue_high,
                low_watermark=queue_low,
            )
            if metrics is not None:
                metrics.record_saturation()

        def on_reloaded(path: str, fingerprint: str) -> None:
            self._bus.emit(
                ev.LIBRARY_RELOADED, path=path, fingerprint=fingerprint
            )
            if metrics is not None:
                metrics.record_reload()

        def on_arrival(source: str, path: Path) -> None:
            if metrics is not None:
                metrics.record_arrival(source, path.name)

        def on_skip(path: Path, reason: str) -> None:
            self._bus.emit(ev.CAPTURE_SKIPPED, capture=path.name, reason=reason)
            if metrics is not None:
                metrics.record_skip()

        def on_verdict(verdict, result: AttackResult) -> None:
            self._bus.emit(
                ev.VERDICT,
                source=verdict.source,
                capture=verdict.capture,
                fingerprint=verdict.fingerprint,
                condition_key=verdict.condition_key,
                pattern=list(verdict.pattern),
                truth=list(verdict.truth) if verdict.truth is not None else None,
                correct=verdict.correct_questions,
                questions=verdict.question_count,
            )
            rows = service.aggregate_rows_by_source()
            self._bus.emit(ev.AGGREGATE, rows=rows)
            if metrics is not None:
                metrics.record_verdict(verdict.source or "", verdict.capture)
                queue = fleet.queue
                metrics.set_queue_gauges(
                    depth=len(queue),
                    parked=queue.parked_count,
                    peak=queue.peak_depth,
                    high_watermark=queue.high_watermark,
                    low_watermark=queue.low_watermark,
                )
                metrics.set_source_rows(rows)

        fleet = FleetWatchService(
            service=service,
            sources=sources,
            recursive=spec.recursive,
            queue_high=spec.queue_high,
            queue_low=queue_low,
            reload_watcher=reload_watcher,
            on_saturated=on_saturated,
            on_reloaded=on_reloaded,
            on_arrival=on_arrival,
        )
        try:
            fleet.run(
                follow=spec.follow,
                poll_interval=spec.poll_interval,
                on_verdict=on_verdict,
                on_skip=on_skip,
                on_error=lambda error: self._bus.emit(
                    ev.WARNING,
                    text=f"batch failed, still watching: {error}",
                ),
            )
        except KeyboardInterrupt:
            self._bus.emit(ev.STOPPED)
        finally:
            if server is not None:
                server.stop()
        self._bus.emit(
            ev.RESULTS_LOG, path=log_path, total=len(service.verdicts)
        )
        return JobResult(
            job=spec.KIND,
            artifacts=(self._workspace.artifact("results-log", log_path),),
            summary={
                "verdicts": len(service.verdicts),
                "sources": len(sources),
            },
        )

    # -- inspect -----------------------------------------------------------

    def _run_inspect(self, spec: InspectJob) -> JobResult:
        """Summarise a capture file."""
        trace = CapturedTrace.from_pcap(
            self._resolve(spec.pcap), client_ip=spec.client_ip, server_ip="0.0.0.0"
        )
        table = trace.flow_table()
        flow_rows = []
        for flow in table.flows:
            flow_rows.append(
                {
                    "flow": flow.five_tuple.key,
                    "packets": flow.packet_count(),
                    "uplink_bytes": flow.payload_bytes(Direction.CLIENT_TO_SERVER),
                    "downlink_bytes": flow.payload_bytes(Direction.SERVER_TO_CLIENT),
                }
            )
        self._bus.emit(ev.FLOWS, pcap=spec.pcap, rows=flow_rows)
        records = extract_client_records(trace)
        lengths = [record.wire_length for record in records]
        stats = summarize(lengths)
        self._bus.emit(
            ev.RECORD_STATS,
            count=len(records),
            minimum=stats.minimum,
            median=stats.median,
            p95=stats.p95,
            maximum=stats.maximum,
        )
        return JobResult(
            job=spec.KIND,
            summary={"records": len(records)},
        )

    # -- arena -------------------------------------------------------------

    def _run_arena(self, spec: ArenaJob) -> JobResult:
        """Score the sweep grid locally, cell by cell, and publish the report.

        Every execution path lands on the same bytes: cells are scored by
        the pure :func:`repro.arena.cell.run_cell` (optionally fanned out
        across ``--shard-workers`` processes), written atomically under
        ``<output>/cells/``, and the report is rebuilt from the cell
        results in grid order — so serial, sharded, resumed and
        coordinator-leased runs publish identical reports.
        """
        from concurrent.futures import ProcessPoolExecutor

        from repro.arena.cell import cell_to_json, run_cell
        from repro.arena.grid import ArenaGrid
        from repro.arena.report import ArenaReport

        grid = ArenaGrid.from_axes(
            defenses=spec.defenses,
            classifiers=spec.classifiers,
            conditions=spec.conditions,
            train_count=spec.train_count,
            test_count=spec.test_count,
            seed=spec.seed,
        )
        cells = grid.cells()
        output = Path(self._resolve(spec.output))
        cells_dir = output / "cells"
        cells_dir.mkdir(parents=True, exist_ok=True)
        self._bus.emit(
            ev.ARENA_STARTED,
            cells=len(cells),
            defenses=len(grid.defenses),
            classifiers=len(grid.classifiers),
            conditions=len(grid.conditions),
            seed=grid.seed,
        )
        results: dict[str, dict] = {}
        if spec.resume:
            for cell in cells:
                reused = _matching_cell_result(
                    cells_dir / f"{cell.cell_id}.json", cell, grid
                )
                if reused is not None:
                    results[cell.cell_id] = reused
        pending = [cell for cell in cells if cell.cell_id not in results]
        reused_count = len(results)

        def cell_kwargs(cell: object) -> dict[str, object]:
            return dict(
                cell_id=cell.cell_id,
                condition=cell.condition,
                defense=cell.defense,
                classifier=cell.classifier,
                train_count=grid.train_count,
                test_count=grid.test_count,
                seed=grid.seed,
            )

        # Futures are consumed in submission (= grid) order, so the event
        # stream is deterministic even though cells complete out of order.
        futures: dict[str, object] = {}
        executor: ProcessPoolExecutor | None = None
        if spec.shard_workers is not None and pending:
            executor = ProcessPoolExecutor(max_workers=spec.shard_workers)
            futures = {
                cell.cell_id: executor.submit(run_cell, **cell_kwargs(cell))
                for cell in pending
            }
        try:
            for cell in cells:
                if cell.cell_id in results:
                    result = results[cell.cell_id]
                    state = "reused"
                else:
                    if futures:
                        result = futures[cell.cell_id].result()
                    else:
                        result = run_cell(**cell_kwargs(cell))
                    _write_text_atomic(
                        cells_dir / f"{cell.cell_id}.json", cell_to_json(result)
                    )
                    results[cell.cell_id] = result
                    state = "scored"
                self._bus.emit(
                    ev.CELL_COMPLETE,
                    cell=cell.cell_id,
                    defense=result["defense_name"],
                    classifier=result["classifier_name"],
                    choice_accuracy=result["metrics"]["choice_accuracy"],
                    overhead_bytes=result["metrics"][
                        "overhead_bytes_per_session"
                    ],
                    state=state,
                )
        finally:
            if executor is not None:
                executor.shutdown()
        report = ArenaReport([results[cell.cell_id] for cell in cells])
        self._bus.emit(
            ev.TABLE,
            title="Arena — defense × classifier sweep",
            rows=report.rows(),
            blank_after=True,
        )
        report_display = spec.report or str(Path(spec.output) / "report.json")
        report.save(self._resolve(report_display))
        self._bus.emit(
            ev.ARTIFACT_WRITTEN, path=report_display, label="arena-report"
        )
        return JobResult(
            job=spec.KIND,
            artifacts=(
                self._workspace.artifact("arena-report", report_display),
            ),
            summary={
                "cells": len(cells),
                "reused": reused_count,
                "frontier": len(report.frontier),
            },
        )

    def _run_arena_cell(self, spec: ArenaCellJob) -> JobResult:
        """Score one leased arena cell and write its canonical JSON bytes."""
        from repro.arena.cell import cell_to_json, run_cell

        result = run_cell(
            cell_id=spec.cell,
            condition=spec.condition,
            defense=dict(spec.defense) if spec.defense is not None else None,
            classifier=dict(spec.classifier),
            train_count=spec.train_count,
            test_count=spec.test_count,
            seed=spec.seed,
        )
        path = Path(self._resolve(spec.output))
        path.parent.mkdir(parents=True, exist_ok=True)
        _write_text_atomic(path, cell_to_json(result))
        self._bus.emit(
            ev.CELL_COMPLETE,
            cell=spec.cell,
            defense=result["defense_name"],
            classifier=result["classifier_name"],
            choice_accuracy=result["metrics"]["choice_accuracy"],
            overhead_bytes=result["metrics"]["overhead_bytes_per_session"],
            state="scored",
        )
        return JobResult(
            job=spec.KIND,
            artifacts=(self._workspace.artifact("arena-cell", spec.output),),
            summary={
                "cell": spec.cell,
                "choice_accuracy": result["metrics"]["choice_accuracy"],
            },
        )

    # -- fleet coordination ------------------------------------------------

    def _run_serve(self, spec: ServeJob) -> JobResult:
        """Coordinate a fleet run: lease units, collect, stitch, publish.

        The coordinator package is imported lazily because its worker side
        imports this runner — the same seam that keeps the experiments
        package out of every non-``reproduce`` invocation.
        """
        from repro.coordinator.plan import ArenaPlan, FleetPlan
        from repro.coordinator.service import Coordinator

        if spec.arena:
            plan: ArenaPlan | FleetPlan = ArenaPlan(
                defenses=spec.defenses,
                classifiers=spec.classifiers,
                conditions=spec.conditions,
                train_count=spec.train_count,
                test_count=spec.test_count,
                seed=spec.seed,
            )
        else:
            plan = FleetPlan(
                viewers=spec.viewers,
                shards=spec.shards,
                seed=spec.seed,
                margin=spec.margin,
                cross_traffic=spec.cross_traffic,
                write_pcaps=spec.write_pcaps,
            )
        coordinator = Coordinator(
            plan,
            self._bus,
            root=self._workspace.resolve(spec.output),
            library=self._workspace.resolve(spec.library),
            host=spec.host,
            port=spec.port,
            lease_ttl=spec.lease_ttl,
        )
        try:
            summary = coordinator.serve_until_complete()
        except KeyboardInterrupt:
            coordinator.close()
            self._bus.emit(ev.STOPPED)
            return JobResult(job=spec.KIND, summary={"stopped": True})
        if spec.arena:
            artifacts = (
                self._workspace.artifact("arena-cells", spec.output),
                self._workspace.artifact("arena-report", spec.library),
            )
        else:
            artifacts = (
                self._workspace.artifact("dataset", spec.output),
                self._workspace.artifact("library", spec.library),
            )
        return JobResult(
            job=spec.KIND,
            artifacts=artifacts,
            summary=dict(summary),
        )

    def _run_work(self, spec: WorkJob) -> JobResult:
        """Pull and run leased units from a coordinator until it is done."""
        from repro.coordinator.worker import PullWorker

        worker = PullWorker(
            spec.url,
            self._bus,
            worker_id=spec.worker_id,
            scratch=spec.scratch,
            poll_interval=spec.poll_interval,
            max_units=spec.max_units,
        )
        try:
            summary = worker.run()
        except KeyboardInterrupt:
            self._bus.emit(ev.STOPPED)
            return JobResult(job=spec.KIND, summary={"stopped": True})
        return JobResult(job=spec.KIND, summary=dict(summary))

    # -- reproduce ---------------------------------------------------------

    def _run_reproduce(self, spec: ReproduceJob) -> JobResult:
        """Run the paper-reproduction experiments."""
        from repro.experiments import (
            reproduce_baseline_comparison,
            reproduce_defense_ablation,
            reproduce_figure1,
            reproduce_figure2,
            reproduce_headline,
            reproduce_table1,
        )
        from repro.experiments.conditions import figure2_condition_names

        chosen = spec.experiment
        quick = spec.quick
        workers = spec.workers

        if spec.dataset is not None:
            from repro.experiments import reproduce_headline_from_dataset

            if chosen == "all":
                # Don't let the default "--experiment all" silently narrow:
                # say what runs (the other artefacts need simulated
                # condition grids).
                self._bus.emit(
                    ev.NOTE,
                    text=(
                        "note: --dataset drives the headline experiment only; "
                        "table1/figure1/figure2/baselines/defenses need "
                        "simulated runs"
                    ),
                )
            result = reproduce_headline_from_dataset(
                self._resolve(spec.dataset),
                training_sessions_per_environment=1 if quick else 2,
                workers=workers,
            )
            self._bus.emit(
                ev.TABLE,
                title=f"Section V — choice recovery over {spec.dataset}",
                rows=result.rows(),
            )
            self._bus.emit(
                ev.HEADLINE,
                training_sessions=result.training_sessions,
                evaluated_sessions=result.evaluated_sessions,
                worst_case=result.worst_case_accuracy,
                paper_worst_case=result.paper_worst_case_accuracy,
            )
            return JobResult(
                job=spec.KIND,
                summary={"worst_case_accuracy": result.worst_case_accuracy},
            )

        summary: dict[str, object] = {}
        if chosen in ("all", "table1"):
            result = reproduce_table1(viewer_count=20 if quick else 100)
            self._bus.emit(
                ev.TABLE,
                title="Table I — IITM-Bandersnatch attributes",
                rows=result.rows,
                blank_after=True,
            )
        if chosen in ("all", "figure1"):
            result = reproduce_figure1()
            self._bus.emit(
                ev.FIGURE1,
                events=[list(event) for event in result.protocol_events],
                matches=result.matches_paper_description(),
            )
        if chosen in ("all", "figure2"):
            result = reproduce_figure2(
                sessions_per_condition=1 if quick else 4, workers=workers
            )
            names = figure2_condition_names()
            for distribution in result.distributions:
                title = names[distribution.condition.fingerprint_key]
                self._bus.emit(
                    ev.TABLE,
                    title=f"Figure 2 — {title}",
                    rows=distribution.rows(),
                    blank_after=True,
                )
        if chosen in ("all", "headline"):
            result = reproduce_headline(
                sessions_per_condition=2 if quick else 10,
                training_sessions_per_condition=1 if quick else 2,
                workers=workers,
            )
            self._bus.emit(
                ev.TABLE,
                title="Section V — choice recovery accuracy",
                rows=result.rows(),
            )
            self._bus.emit(
                ev.HEADLINE,
                worst_case=result.worst_case_accuracy,
                paper_worst_case=result.paper_worst_case_accuracy,
            )
            summary["worst_case_accuracy"] = result.worst_case_accuracy
        if chosen in ("all", "baselines"):
            result = reproduce_baseline_comparison(
                train_count=2 if quick else 6,
                test_count=2 if quick else 6,
                workers=workers,
            )
            self._bus.emit(
                ev.TABLE,
                title="Ablation A — baselines vs White Mirror",
                rows=result.rows(),
                blank_after=True,
            )
        if chosen in ("all", "defenses"):
            result = reproduce_defense_ablation(
                train_count=2 if quick else 4,
                test_count=2 if quick else 4,
                workers=workers,
            )
            self._bus.emit(
                ev.TABLE,
                title="Ablation B — countermeasures",
                rows=result.rows(),
                blank_after=True,
            )
        return JobResult(job=spec.KIND, summary=summary)


def fingerprint_rows(library: FingerprintLibrary) -> list[dict[str, object]]:
    """The fingerprint-table rows for a library, in environment order.

    Shared between the runner's ``fingerprints`` emission and the
    coordinator's publication step, so a fleet run's closing table is
    byte-identical to a local ``train``'s.
    """
    return [
        {
            "environment": key,
            "type1_band": (
                f"{library.get(key).type1_band.low}-"
                f"{library.get(key).type1_band.high}"
            ),
            "type2_band": (
                f"{library.get(key).type2_band.low}-"
                f"{library.get(key).type2_band.high}"
            ),
            "training_records": library.get(key).training_records,
        }
        for key in sorted(library.condition_keys)
    ]


def _write_text_atomic(path: Path, payload: str) -> None:
    """Write ``payload`` via temp-file + rename, so readers (a resumed
    sweep, the coordinator's publisher) never see a torn cell file."""
    with tempfile.NamedTemporaryFile(
        "w",
        encoding="utf-8",
        dir=path.parent,
        prefix=path.name + ".",
        suffix=".tmp",
        delete=False,
    ) as handle:
        handle.write(payload)
    os.replace(handle.name, path)


def _matching_cell_result(path: Path, cell, grid) -> dict | None:
    """A previously written cell result, iff it matches the current grid.

    Resume must never trust a stale file: the result is reused only when
    its identity fields (cell id, condition, component specs, counts,
    seed, schema) all equal what the grid would run now.  Anything else —
    unreadable, truncated by SIGKILL mid-write, or from a different sweep
    — is silently re-scored.
    """
    from repro.arena.cell import ARENA_SCHEMA_VERSION

    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or not isinstance(data.get("metrics"), dict):
        return None
    expected = {
        "cell": cell.cell_id,
        "condition": cell.condition,
        "defense": cell.defense,
        "classifier": cell.classifier,
        "seed": grid.seed,
        "sessions": {"test": grid.test_count, "train": grid.train_count},
        "schema": ARENA_SCHEMA_VERSION,
    }
    for key, value in expected.items():
        if data.get(key) != value:
            return None
    return data


def _dataset_seed_from_metadata(metadata: dict) -> int:
    """Seed the dataset was generated from (stored by ``generate-dataset``)."""
    if "seed" not in metadata:
        raise ReproError(
            "dataset metadata does not record its generation seed; "
            "re-run `repro generate-dataset` (or pass the labelled sessions "
            "to WhiteMirrorAttack.train directly)"
        )
    return int(metadata["seed"])


def _choice_rows(result: AttackResult) -> list[dict[str, object]]:
    return [
        {
            "question": event.index + 1,
            "shown_at_s": round(event.question_shown_at, 2),
            "choice": "default" if event.took_default else "NON-DEFAULT",
        }
        for event in result.inferred.events
    ]


def _directory_pcaps(target: Path) -> tuple[Path, list[Path]]:
    """The capture files of a directory target, in name order."""
    pcaps = sorted(target.glob("*.pcap"))
    if not pcaps and (target / "traces").is_dir():
        # A dataset directory was given; its captures live one level down.
        target = target / "traces"
        pcaps = sorted(target.glob("*.pcap"))
    if not pcaps:
        raise ReproError(f"no .pcap files found under {target}")
    return target, pcaps
