"""The workspace / artifact-store abstraction beneath the job runner.

A :class:`Workspace` anchors a run's paths and names its durable outputs —
dataset roots, fingerprint libraries, results logs, accumulator states — as
:class:`Artifact`\\ s with **content fingerprints** (SHA-256 over bytes for
files, over the sorted ``(relative path, file digest)`` tree for
directories).  The fingerprint is the artifact's identity: a future fleet
coordinator can hand a worker a job spec, receive the resulting artifact
descriptors, and verify — without re-reading anything — that two machines
produced the same bytes, exactly the way the results log already dedupes
captures by content.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import JobError

#: Artifact kinds.
FILE = "file"
DIRECTORY = "directory"


def _file_digest(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def fingerprint_path(path: str | Path) -> str:
    """Content fingerprint of a file, or of a directory's whole tree.

    Directories fold their files in sorted relative-path order, so two
    trees with identical contents fingerprint identically regardless of
    where they live or how they were assembled (generated in place,
    rsync'd together, stitched...).
    """
    path = Path(path)
    if path.is_file():
        return _file_digest(path)
    if path.is_dir():
        digest = hashlib.sha256()
        for member in sorted(
            member for member in path.rglob("*") if member.is_file()
        ):
            relative = member.relative_to(path).as_posix()
            digest.update(relative.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(_file_digest(member).encode("ascii"))
            digest.update(b"\x00")
        return digest.hexdigest()
    raise JobError(f"cannot fingerprint {path}: no such file or directory")


@dataclass(frozen=True)
class Artifact:
    """One named, content-addressed output of a job."""

    name: str
    path: str
    kind: str
    fingerprint: str

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "path": self.path,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
        }


class Workspace:
    """Resolves a run's paths and names its outputs as artifacts.

    ``root`` anchors relative paths (defaulting to the current working
    directory, which is exactly how the CLI has always resolved its path
    arguments); absolute paths pass through untouched, so a spec built
    from CLI arguments behaves identically under any workspace.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else Path.cwd()

    def resolve(self, path: str | Path) -> Path:
        path = Path(path)
        return path if path.is_absolute() else self.root / path

    def artifact(self, name: str, path: str | Path) -> Artifact:
        """Describe a durable output: resolve it, fingerprint its content."""
        resolved = self.resolve(path)
        kind = DIRECTORY if resolved.is_dir() else FILE
        return Artifact(
            name=name,
            path=str(path),
            kind=kind,
            fingerprint=fingerprint_path(resolved),
        )
