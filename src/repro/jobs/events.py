"""Structured job events and the bus that carries them.

Runners never print: they :meth:`~EventBus.emit` typed :class:`JobEvent`\\ s
(progress, shard-complete, verdict, aggregate, warning, ...) and attached
sinks decide how to surface them.  The two stock sinks live in
:mod:`repro.jobs.renderers`: a console renderer reproducing the historical
terminal output byte-for-byte (pinned by the CLI golden tests) and a JSONL
renderer for machine consumers (``repro --log-format jsonl``, and the
future fleet coordinator's progress feed).

An event is a ``kind`` plus a JSON-friendly payload.  The payload carries
*semantic* fields (counts, paths, rows, patterns), never pre-rendered text:
formatting is entirely the sink's business, which is what keeps one run
drivable by a terminal, a log pipeline, or another process at once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Protocol

#: Version stamped into every serialised event line (``"schema": N``), so
#: the jsonl streams coordinators and workers exchange can evolve: a
#: consumer that sees an unfamiliar version refuses it by name instead of
#: misreading the payload.  Bump on any incompatible payload change; new
#: event *kinds* are not incompatible (consumers skip unknown kinds).
EVENT_SCHEMA_VERSION = 1

# The event vocabulary.  Constants rather than an Enum so payloads stay
# plain JSON and new kinds can be introduced without a schema migration;
# the console renderer fails loudly on a kind it has no formatter for.
GENERATION_STARTED = "generation-started"
PROGRESS = "progress"
PROGRESS_FINISHED = "progress-finished"
SHARD_COMPLETE = "shard-complete"
SUBSET_WRITTEN = "subset-written"
DATASET_SUMMARY = "dataset-summary"
TRAINING_STARTED = "training-started"
SIDECAR_FOLDED = "sidecar-folded"
FINGERPRINTS = "fingerprints"
STITCH_STARTED = "stitch-started"
STATE_FOLDED = "state-folded"
ARTIFACT_WRITTEN = "artifact-written"
CHOICES_RECOVERED = "choices-recovered"
PROFILE = "profile"
CAPTURE_SKIPPED = "capture-skipped"
VERDICT = "verdict"
AGGREGATE = "aggregate"
RESUMED = "resumed"
WARNING = "warning"
STOPPED = "stopped"
RESULTS_LOG = "results-log"
QUEUE_SATURATED = "queue-saturated"
LIBRARY_RELOADED = "library-reloaded"
METRICS_SERVING = "metrics-serving"
FLOWS = "flows"
RECORD_STATS = "record-stats"
TABLE = "table"
NOTE = "note"
FIGURE1 = "figure1"
HEADLINE = "headline"
RESULT = "result"
# Attack-vs-defense arena (repro arena).
ARENA_STARTED = "arena-started"
CELL_COMPLETE = "cell-complete"
# Fleet coordination (repro serve / repro work).
SERVE_STARTED = "serve-started"
LEASE_GRANTED = "lease-granted"
LEASE_RECLAIMED = "lease-reclaimed"
UNIT_COMPLETE = "unit-complete"
PLAN_COMPLETE = "plan-complete"
WORK_STARTED = "work-started"
UNIT_LEASED = "unit-leased"
UNIT_UPLOADED = "unit-uploaded"
WORK_FINISHED = "work-finished"


@dataclass(frozen=True)
class JobEvent:
    """One structured fact about a running job."""

    kind: str
    data: Mapping[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        """One machine-readable line: ``{"event": kind, "schema": N, ...}``.

        Keys are sorted and separators compact so identical events always
        serialise to identical bytes (the results-log determinism rule,
        applied to the event stream).  Every line carries the event schema
        version (:data:`EVENT_SCHEMA_VERSION`) so stream consumers — the
        coordinator ingesting a worker's feed, a pipeline tailing
        ``--log-format jsonl`` — can refuse an incompatible stream by name.
        """
        return json.dumps(
            {"event": self.kind, "schema": EVENT_SCHEMA_VERSION, **self.data},
            sort_keys=True,
            separators=(",", ":"),
        )


class EventSink(Protocol):
    """Anything that can receive job events (renderers, collectors...)."""

    def handle(self, event: JobEvent) -> None:  # pragma: no cover - protocol
        ...


class EventBus:
    """Fans each emitted event out to every attached sink, in order."""

    def __init__(self, *sinks: EventSink) -> None:
        self._sinks: list[EventSink] = list(sinks)

    def attach(self, sink: EventSink) -> None:
        """Subscribe ``sink`` to every subsequent event."""
        self._sinks.append(sink)

    def emit(self, kind: str, **data: object) -> JobEvent:
        """Build a :class:`JobEvent` and deliver it to every sink."""
        event = JobEvent(kind=kind, data=data)
        for sink in self._sinks:
            sink.handle(event)
        return event
