"""Typed, serializable job specifications.

Every workload the reproduction supports — generate, train, stitch,
merge-fingerprints, attack, watch, reproduce, inspect — is described by a
frozen dataclass here.  A spec is *what a run is*, independent of how it is
invoked or narrated: the CLI builds specs from argparse namespaces, tests
build them directly, and a future fleet coordinator can lease them to
workers over the wire, because every spec round-trips through
``to_dict()``/``from_dict()`` (sorted keys, schema-versioned) without loss.

Serialization rules:

* ``to_dict`` emits ``{"job": <kind>, "schema": <version>, ...fields}``
  with keys sorted and tuples lowered to lists — identical specs always
  serialise to identical JSON bytes;
* ``from_dict`` (and the :func:`job_from_dict` dispatcher) validates the
  schema version and the field set loudly: an unknown version or an
  unknown/missing field names itself in the error instead of silently
  producing a half-built spec.

Validation of *flag combinations* (e.g. ``--resume`` without ``--shards``)
lives in each spec's ``validate()``, which the runner calls before doing
any work; the error messages are exactly the historical CLI ones, so the
refactor changed no user-visible behaviour.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Mapping

from repro.exceptions import JobError, ReproError

#: Default version stamped into serialised specs.  A spec class whose field
#: set has evolved past the fleet-wide default carries its own ``SCHEMA``
#: (and the older versions it still accepts in ``ACCEPTS_SCHEMAS``, with
#: ``from_dict`` migrating old payloads by filling the new fields' defaults);
#: ``job_from_dict`` refuses anything else by name.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class JobSpec:
    """Base class for all job specifications."""

    KIND: ClassVar[str] = ""
    #: The schema version this class serialises as.
    SCHEMA: ClassVar[int] = SCHEMA_VERSION
    #: Every schema version ``from_dict`` can migrate from.  Older versions
    #: simply lack the newer fields — the dataclass defaults are the
    #: migration — so accepting one is a statement that those defaults
    #: reproduce the old behaviour exactly.
    ACCEPTS_SCHEMAS: ClassVar[tuple[int, ...]] = (SCHEMA_VERSION,)

    def validate(self) -> None:
        """Raise :class:`ReproError` on an inconsistent spec; default: ok."""

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form: kind + schema version + fields, sorted keys."""
        data: dict[str, Any] = {"job": self.KIND, "schema": type(self).SCHEMA}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, tuple):
                value = list(value)
            data[spec_field.name] = value
        return dict(sorted(data.items()))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Inverse of :meth:`to_dict`; validates version and field set."""
        if not isinstance(data, Mapping):
            raise JobError(
                f"a job spec must be a JSON object, got {type(data).__name__}"
            )
        kind = data.get("job")
        if kind != cls.KIND:
            raise JobError(
                f"cannot build a {cls.KIND!r} job from a spec of kind {kind!r}"
            )
        version = data.get("schema")
        if version not in cls.ACCEPTS_SCHEMAS:
            accepted = (
                ""
                if len(cls.ACCEPTS_SCHEMAS) == 1
                else f" and accepts {sorted(cls.ACCEPTS_SCHEMAS)}"
            )
            raise JobError(
                f"unsupported job spec schema version {version!r} "
                f"(this build speaks schema version {cls.SCHEMA}{accepted})"
            )
        field_names = {spec_field.name for spec_field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - field_names - {"job", "schema"})
        if unknown:
            raise JobError(
                f"{cls.KIND} job spec has unknown field(s) {unknown} "
                f"(schema version {cls.SCHEMA} fields: "
                f"{sorted(field_names)})"
            )
        kwargs = {
            name: tuple(data[name]) if isinstance(data[name], list) else data[name]
            for name in field_names
            if name in data
        }
        try:
            return cls(**kwargs)
        except TypeError as error:
            raise JobError(f"incomplete {cls.KIND} job spec: {error}") from error


@dataclass(frozen=True)
class GenerateJob(JobSpec):
    """``repro generate-dataset``: build and persist a synthetic dataset."""

    KIND: ClassVar[str] = "generate"

    output: str = ""
    viewers: int = 20
    seed: int = 0
    write_pcaps: bool = True
    cross_traffic: bool = True
    shards: int | None = None
    resume: bool = False
    shard_workers: int | None = None
    only_shards: str | None = None
    workers: int | None = None

    def validate(self) -> None:
        if self.resume and self.shards is None:
            raise ReproError("--resume requires --shards (only sharded runs checkpoint)")
        if self.shard_workers is not None and self.shards is None:
            raise ReproError(
                "--shard-workers requires --shards (only sharded runs fan whole "
                "shards out)"
            )
        if self.only_shards is not None and self.shards is None:
            raise ReproError(
                "--only-shards requires --shards (the selection names shards of "
                "the full plan)"
            )


@dataclass(frozen=True)
class TrainJob(JobSpec):
    """``repro train``: learn fingerprints from a saved dataset."""

    KIND: ClassVar[str] = "train"

    dataset: str = ""
    output: str = ""
    train_fraction: float | None = None
    sharded: bool = False
    margin: int = 8
    save_state: str | None = None
    workers: int | None = None

    def validate(self) -> None:
        if self.sharded and self.train_fraction is not None:
            raise ReproError(
                "--train-fraction applies to single-directory training only; "
                "--sharded uses the whole sharded dataset as calibration data"
            )
        if self.save_state and not self.sharded:
            raise ReproError(
                "--save-state requires --sharded (accumulator state is the "
                "incremental training path's running calibration)"
            )
        if not self.sharded:
            train_fraction = (
                0.5 if self.train_fraction is None else self.train_fraction
            )
            if not 0.0 < train_fraction < 1.0:
                raise ReproError(
                    f"--train-fraction must be in (0, 1), got {train_fraction}"
                )


@dataclass(frozen=True)
class StitchJob(JobSpec):
    """``repro stitch``: verify rsync'd shards and publish the manifest."""

    KIND: ClassVar[str] = "stitch"

    root: str = ""


@dataclass(frozen=True)
class MergeFingerprintsJob(JobSpec):
    """``repro merge-fingerprints``: fold per-machine calibration states."""

    KIND: ClassVar[str] = "merge-fingerprints"

    states: tuple[str, ...] = ()
    output: str = ""
    margin: int = 8
    save_state: str | None = None

    def validate(self) -> None:
        if not self.states:
            raise ReproError(
                "merge-fingerprints needs at least one accumulator state file"
            )


@dataclass(frozen=True)
class AttackJob(JobSpec):
    """``repro attack``: recover choices from a pcap or directory of pcaps."""

    KIND: ClassVar[str] = "attack"

    target: str = ""
    library: str = ""
    environment: str | None = None
    client_ip: str | None = None
    server_ip: str | None = None
    results_log: str | None = None
    workers: int | None = None


@dataclass(frozen=True)
class WatchJob(JobSpec):
    """``repro watch``: attack captures as they land in drop directories.

    Two shapes share the spec.  The historical single-directory mode sets
    ``directory`` and behaves exactly as before (schema-1 payloads, which
    lack every fleet field, migrate by default-fill).  Fleet mode sets
    ``sources`` instead and unlocks the multi-source machinery: recursive
    watching, the bounded queue's watermarks, hot library reload and the
    ``/metrics`` endpoint.
    """

    KIND: ClassVar[str] = "watch"
    SCHEMA: ClassVar[int] = 2
    ACCEPTS_SCHEMAS: ClassVar[tuple[int, ...]] = (1, 2)

    directory: str = ""
    library: str = ""
    follow: bool = True
    results_log: str | None = None
    poll_interval: float = 0.5
    environment: str | None = None
    client_ip: str | None = None
    server_ip: str | None = None
    workers: int | None = None
    sources: tuple[str, ...] = ()
    recursive: bool = False
    queue_high: int = 256
    queue_low: int | None = None
    reload_library: str | None = None
    metrics_port: int | None = None

    def validate(self) -> None:
        if self.directory and self.sources:
            raise ReproError(
                "give either a positional drop directory or --source "
                "directories, not both"
            )
        if not self.directory and not self.sources:
            raise ReproError(
                "watch needs a drop directory: positional for the "
                "single-source mode, or --source (repeatable) for a fleet"
            )
        if not self.sources:
            for flag, engaged in (
                ("--recursive", self.recursive),
                ("--reload-library", self.reload_library is not None),
                ("--metrics-port", self.metrics_port is not None),
            ):
                if engaged:
                    raise ReproError(
                        f"{flag} is a fleet-mode flag; it requires --source"
                    )
        elif self.results_log is None:
            raise ReproError(
                "fleet mode needs --results-log: the sources share one "
                "results log, and with several drop directories there is "
                "no single place to default it into"
            )
        if self.queue_high < 1:
            raise ReproError(
                f"--queue-high must be a positive capture count, got "
                f"{self.queue_high}"
            )
        if self.queue_low is not None:
            if self.queue_low < 0:
                raise ReproError(
                    f"--queue-low must be >= 0, got {self.queue_low}"
                )
            if self.queue_high <= self.queue_low:
                raise ReproError(
                    f"--queue-high ({self.queue_high}) must be greater than "
                    f"--queue-low ({self.queue_low}) — the queue must drain "
                    "below the low watermark before parked captures are "
                    "promoted"
                )
        if self.metrics_port is not None and not 0 <= self.metrics_port <= 65535:
            raise ReproError(
                f"--metrics-port must be a TCP port (0-65535), got "
                f"{self.metrics_port}"
            )


@dataclass(frozen=True)
class ReproduceJob(JobSpec):
    """``repro reproduce``: run the paper-reproduction experiments."""

    KIND: ClassVar[str] = "reproduce"

    experiment: str = "all"
    quick: bool = False
    dataset: str | None = None
    workers: int | None = None

    def validate(self) -> None:
        if self.dataset is not None and self.experiment not in ("all", "headline"):
            raise ReproError(
                "--dataset drives the headline experiment; combine it with "
                "--experiment headline (or all)"
            )


@dataclass(frozen=True)
class ArenaJob(JobSpec):
    """``repro arena``: sweep defense × classifier × condition cells.

    The sweep axes are declarative component-spec entries
    (``name[:key=value,...]``, see :mod:`repro.arena.grid`): every defense
    and classifier in the grid is constructed exclusively through the
    component registries, so a typo fails at validation naming the bad
    entry.  Cells are scored independently (optionally fanned out across
    ``--shard-workers`` processes), each written atomically to
    ``<output>/cells/<cell>.json``; ``--resume`` reuses cells whose files
    match the current grid.  The published report is byte-identical no
    matter how the cells were executed.
    """

    KIND: ClassVar[str] = "arena"

    output: str = ""
    report: str = ""
    defenses: tuple[str, ...] = ()
    classifiers: tuple[str, ...] = ()
    conditions: tuple[str, ...] = ()
    train_count: int = 2
    test_count: int = 2
    seed: int = 0
    shard_workers: int | None = None
    resume: bool = False

    def validate(self) -> None:
        if not self.output:
            raise ReproError(
                "arena needs --output (the directory cell results land in)"
            )
        if self.train_count < 1 or self.test_count < 1:
            raise ReproError(
                "--train-count and --test-count must be at least 1 "
                f"(got train={self.train_count}, test={self.test_count})"
            )
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ReproError("--shard-workers must be at least 1")


@dataclass(frozen=True)
class ArenaCellJob(JobSpec):
    """One arena cell as a leasable unit of work.

    This is what the coordinator hands ``repro work`` pull loops: the
    defense and classifier travel as canonical component specs (already
    validated by the grid), the worker rebuilds them through the
    registries, scores the cell, and uploads the canonical JSON bytes.
    """

    KIND: ClassVar[str] = "arena-cell"

    output: str = ""
    cell: str = ""
    condition: str = ""
    defense: dict | None = None
    classifier: dict | None = None
    train_count: int = 2
    test_count: int = 2
    seed: int = 0

    def validate(self) -> None:
        if not self.cell:
            raise ReproError("an arena cell spec needs its cell id")
        if not self.condition:
            raise ReproError("an arena cell spec needs its condition key")
        if self.classifier is None:
            raise ReproError(
                "an arena cell spec needs a classifier component spec"
            )


@dataclass(frozen=True)
class ServeJob(JobSpec):
    """``repro serve``: coordinate a sharded plan across pull workers.

    The coordinator owns the plan (viewers, shards, seed, margin), leases
    one shard-sized work unit at a time to ``repro work`` pull loops over
    the versioned jobs wire API, collects their fingerprint-verified
    uploads, and — once every unit is complete — folds the accumulator
    states in a hierarchical merge tree and atomically publishes the
    stitched manifest plus the merged library, byte-identical to a
    single-machine ``generate-dataset --shards`` + ``train --sharded`` run.
    """

    KIND: ClassVar[str] = "serve"

    output: str = ""
    library: str = ""
    viewers: int = 20
    shards: int = 2
    seed: int = 0
    margin: int = 8
    cross_traffic: bool = True
    write_pcaps: bool = True
    host: str = "127.0.0.1"
    port: int = 0
    lease_ttl: float = 60.0
    arena: bool = False
    defenses: tuple[str, ...] = ()
    classifiers: tuple[str, ...] = ()
    conditions: tuple[str, ...] = ()
    train_count: int = 2
    test_count: int = 2

    def validate(self) -> None:
        if self.arena:
            if self.train_count < 1 or self.test_count < 1:
                raise ReproError(
                    "--train-count and --test-count must be at least 1 "
                    f"(got train={self.train_count}, test={self.test_count})"
                )
            if self.lease_ttl <= 0:
                raise ReproError(
                    "--lease-ttl must be positive (seconds before a silent "
                    "worker's unit is reassigned)"
                )
            return
        if self.defenses or self.classifiers or self.conditions:
            raise ReproError(
                "--defenses/--classifiers/--conditions describe an arena "
                "sweep; combine them with --arena"
            )
        if self.shards < 1:
            raise ReproError(
                "--shards must be at least 1 (the plan leases whole shards)"
            )
        if self.viewers < 1:
            raise ReproError("--viewers must be at least 1")
        if self.lease_ttl <= 0:
            raise ReproError(
                "--lease-ttl must be positive (seconds before a silent "
                "worker's unit is reassigned)"
            )


@dataclass(frozen=True)
class WorkJob(JobSpec):
    """``repro work``: pull, execute and upload leased units until done."""

    KIND: ClassVar[str] = "work"

    url: str = ""
    worker_id: str | None = None
    scratch: str | None = None
    poll_interval: float = 0.5
    max_units: int | None = None

    def validate(self) -> None:
        if self.poll_interval <= 0:
            raise ReproError("--poll-interval must be positive")
        if self.max_units is not None and self.max_units < 1:
            raise ReproError("--max-units must be at least 1")


@dataclass(frozen=True)
class InspectJob(JobSpec):
    """``repro inspect``: summarise a capture file."""

    KIND: ClassVar[str] = "inspect"

    pcap: str = ""
    client_ip: str = "192.168.1.23"


#: Every leasable spec class, keyed by its wire kind.
SPEC_CLASSES: tuple[type[JobSpec], ...] = (
    GenerateJob,
    TrainJob,
    StitchJob,
    MergeFingerprintsJob,
    AttackJob,
    WatchJob,
    ReproduceJob,
    InspectJob,
    ArenaJob,
    ArenaCellJob,
    ServeJob,
    WorkJob,
)
_SPECS_BY_KIND: dict[str, type[JobSpec]] = {
    spec_class.KIND: spec_class for spec_class in SPEC_CLASSES
}


def job_from_dict(data: Mapping[str, Any]) -> JobSpec:
    """Rebuild any job spec from its ``to_dict`` form (the wire format).

    Dispatches on kind first and lets the spec class judge the schema
    version — each class knows which versions it can migrate from (e.g.
    ``WatchJob`` accepts its pre-fleet schema-1 payloads).
    """
    if not isinstance(data, Mapping):
        raise JobError(
            f"a job spec must be a JSON object, got {type(data).__name__}"
        )
    kind = data.get("job")
    spec_class = _SPECS_BY_KIND.get(str(kind))
    if spec_class is None:
        raise JobError(
            f"unknown job kind {kind!r}; known kinds: {sorted(_SPECS_BY_KIND)}"
        )
    return spec_class.from_dict(data)
