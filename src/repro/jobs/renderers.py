"""Event sinks: the console renderer and the JSONL renderer.

:class:`ConsoleRenderer` maps every event kind to the exact line(s) the
pre-jobs-layer CLI printed — the mapping is pinned byte-for-byte by
``tests/test_cli_golden.py``, so moving the orchestration out of the CLI
could not change what a terminal user sees.  :class:`JsonlRenderer` writes
one ``{"event": ..., ...}`` JSON line per event (``repro --log-format
jsonl``) so pipelines and services can consume runs without scraping
tables.

A console formatter that is missing for an emitted kind raises — renderer
drift must fail a test, not silently swallow output.  Machine-only kinds
(the final :data:`~repro.jobs.events.RESULT` payload) are deliberately not
rendered to the console.
"""

from __future__ import annotations

import sys
from typing import Callable, Mapping, TextIO

from repro.exceptions import JobError
from repro.experiments.report import format_table
from repro.jobs import events as ev
from repro.jobs.events import JobEvent

#: Kinds that only machine consumers see; the console stays quiet.
MACHINE_ONLY_KINDS = frozenset({ev.RESULT})


def renderer_for(log_format: str) -> "ConsoleRenderer | JsonlRenderer":
    """The sink behind a ``--log-format`` value."""
    if log_format == "console":
        return ConsoleRenderer()
    if log_format == "jsonl":
        return JsonlRenderer()
    raise JobError(f"unknown log format {log_format!r} (choose console or jsonl)")


class JsonlRenderer:
    """One JSON line per event, flushed eagerly for live consumers."""

    def __init__(self, stream: TextIO | None = None) -> None:
        self._stream = stream if stream is not None else sys.stdout

    def handle(self, event: JobEvent) -> None:
        print(event.to_json(), file=self._stream, flush=True)


class ConsoleRenderer:
    """Renders events exactly as the historical CLI printed them."""

    def __init__(self, stream: TextIO | None = None) -> None:
        self._stream = stream if stream is not None else sys.stdout
        self._formatters: Mapping[str, Callable[[Mapping[str, object]], None]] = {
            ev.GENERATION_STARTED: self._generation_started,
            ev.PROGRESS: self._progress,
            ev.PROGRESS_FINISHED: self._progress_finished,
            ev.SHARD_COMPLETE: self._shard_complete,
            ev.SUBSET_WRITTEN: self._subset_written,
            ev.DATASET_SUMMARY: self._dataset_summary,
            ev.TRAINING_STARTED: self._training_started,
            ev.SIDECAR_FOLDED: self._sidecar_folded,
            ev.FINGERPRINTS: self._fingerprints,
            ev.STITCH_STARTED: self._stitch_started,
            ev.STATE_FOLDED: self._state_folded,
            ev.ARTIFACT_WRITTEN: self._artifact_written,
            ev.CHOICES_RECOVERED: self._choices_recovered,
            ev.PROFILE: self._profile,
            ev.CAPTURE_SKIPPED: self._capture_skipped,
            ev.VERDICT: self._verdict,
            ev.AGGREGATE: self._aggregate,
            ev.RESUMED: self._resumed,
            ev.WARNING: self._warning,
            ev.STOPPED: self._stopped,
            ev.RESULTS_LOG: self._results_log,
            ev.QUEUE_SATURATED: self._queue_saturated,
            ev.LIBRARY_RELOADED: self._library_reloaded,
            ev.METRICS_SERVING: self._metrics_serving,
            ev.FLOWS: self._flows,
            ev.RECORD_STATS: self._record_stats,
            ev.TABLE: self._table,
            ev.NOTE: self._note,
            ev.FIGURE1: self._figure1,
            ev.HEADLINE: self._headline,
            ev.ARENA_STARTED: self._arena_started,
            ev.CELL_COMPLETE: self._cell_complete,
            ev.SERVE_STARTED: self._serve_started,
            ev.LEASE_GRANTED: self._lease_granted,
            ev.LEASE_RECLAIMED: self._lease_reclaimed,
            ev.UNIT_COMPLETE: self._unit_complete,
            ev.PLAN_COMPLETE: self._plan_complete,
            ev.WORK_STARTED: self._work_started,
            ev.UNIT_LEASED: self._unit_leased,
            ev.UNIT_UPLOADED: self._unit_uploaded,
            ev.WORK_FINISHED: self._work_finished,
        }

    def handle(self, event: JobEvent) -> None:
        if event.kind in MACHINE_ONLY_KINDS:
            return
        formatter = self._formatters.get(event.kind)
        if formatter is None:
            raise JobError(
                f"no console rendering for event kind {event.kind!r}; "
                "add a formatter (and a golden test) before emitting it"
            )
        formatter(event.data)

    # -- helpers -----------------------------------------------------------

    def _print(self, text: str = "", end: str = "\n") -> None:
        print(text, end=end, file=self._stream)

    # -- formatters (one per kind; strings are golden-pinned) --------------

    def _generation_started(self, data: Mapping[str, object]) -> None:
        if data.get("selection") is not None:
            selection = ",".join(str(index) for index in data["selection"])
            self._print(
                f"{data['verb']} shards {selection} of "
                f"{data['viewers']} viewers (seed {data['seed']}) "
                f"across {data['shards']} shards..."
            )
        elif data.get("shards") is not None:
            self._print(
                f"{data['verb']} {data['viewers']} viewers (seed {data['seed']}) "
                f"across {data['shards']} shards..."
            )
        else:
            self._print(
                f"{data['verb']} {data['viewers']} viewers (seed {data['seed']})..."
            )

    def _progress(self, data: Mapping[str, object]) -> None:
        if data.get("unit") == "resimulated-sessions":
            self._print(f"  {data['completed']} session(s) re-simulated", end="\r")
        else:
            self._print(
                f"  {data['completed']}/{data['total']} sessions", end="\r"
            )

    def _progress_finished(self, data: Mapping[str, object]) -> None:
        self._print()

    def _shard_complete(self, data: Mapping[str, object]) -> None:
        self._print(
            f"  {data['shard']}: viewers={data['viewers']} [{data['state']}]"
        )

    def _subset_written(self, data: Mapping[str, object]) -> None:
        self._print(
            f"wrote {data['written']} of {data['planned']} shards under "
            f"{data['root']} (no manifest; once every machine's "
            "shards sit under one root, publish it with `repro stitch`)"
        )

    def _dataset_summary(self, data: Mapping[str, object]) -> None:
        self._print(
            f"viewers={data['viewers']} conditions={data['conditions']} "
            f"choices={data['choices']} packets={data['packets']}"
        )

    def _training_started(self, data: Mapping[str, object]) -> None:
        if data.get("subset"):
            self._print(
                f"incrementally training on {data['viewers']} viewers across "
                f"{data['shards']} local shard(s) of an unstitched subset root..."
            )
        else:
            self._print(
                f"incrementally training on {data['viewers']} viewers across "
                f"{data['shards']} shards..."
            )

    def _sidecar_folded(self, data: Mapping[str, object]) -> None:
        self._print(
            f"  folded {data['folded']}/{data['shards']} shard(s) from "
            f"columnar sidecars ({data['records']} records, no re-simulation)"
        )

    def _fingerprints(self, data: Mapping[str, object]) -> None:
        self._print(format_table(data["rows"], "Learned fingerprints"))
        self._print(f"wrote {data['output']}")

    def _stitch_started(self, data: Mapping[str, object]) -> None:
        self._print(f"stitching shards under {data['root']}...")

    def _state_folded(self, data: Mapping[str, object]) -> None:
        self._print(
            f"  folded {data['path']}: {data['environments']} environment(s), "
            f"{data['records']} records"
        )

    def _artifact_written(self, data: Mapping[str, object]) -> None:
        label = data.get("label")
        if label == "accumulator-state":
            self._print(f"wrote accumulator state to {data['path']}")
        elif label == "merged-accumulator-state":
            self._print(f"wrote merged accumulator state to {data['path']}")
        elif label == "results-log":
            self._print(f"wrote verdicts to {data['path']}")
        else:
            self._print(f"wrote {data['path']}")

    def _choices_recovered(self, data: Mapping[str, object]) -> None:
        if data.get("capture") is None:
            title = f"Recovered choices ({data['condition_key']})"
            self._print(format_table(data["rows"], title))
        else:
            title = (
                f"Recovered choices — {data['capture']} "
                f"({data['condition_key']})"
            )
            self._print(format_table(data["rows"], title))
            self._print()

    def _profile(self, data: Mapping[str, object]) -> None:
        self._print()
        self._print(
            format_table(
                data["rows"], "Behavioural profile implied by the recovered path"
            )
        )

    def _capture_skipped(self, data: Mapping[str, object]) -> None:
        self._print(f"skipping {data['capture']}: {data['reason']}")

    def _verdict(self, data: Mapping[str, object]) -> None:
        pattern = "".join("d" if choice else "N" for choice in data["pattern"])
        scored = (
            f", {data['correct']}/{data['questions']} correct"
            if data.get("truth") is not None
            else ""
        )
        # Fleet verdicts carry a source label; single-directory verdicts
        # omit the key entirely so the legacy line stays golden-pinned.
        attribution = f"[{data['source']}] " if "source" in data else ""
        self._print(
            f"verdict: {attribution}{data['capture']} ({data['condition_key']}) "
            f"pattern={pattern or '-'}{scored}"
        )

    def _aggregate(self, data: Mapping[str, object]) -> None:
        if "rows" in data:
            self._print(format_table(data["rows"], "Running aggregate accuracy"))
            self._print()
            return
        aggregate = (
            f"aggregate: attacked {data['attacked']}/{data['total']} captures, "
            f"recovered {data['choices']} choices"
        )
        questions = data["questions"]
        if questions:
            accuracy = data["correct"] / questions
            aggregate += (
                f", choice accuracy {data['correct']}/{questions} "
                f"({accuracy:.1%})"
            )
        else:
            aggregate += " (no ground truth available)"
        self._print(aggregate)

    def _resumed(self, data: Mapping[str, object]) -> None:
        self._print(
            f"resuming: {data['count']} verdict(s) already in {data['path']}"
        )

    def _warning(self, data: Mapping[str, object]) -> None:
        self._print(str(data["text"]))

    def _stopped(self, data: Mapping[str, object]) -> None:
        self._print("\nstopped")

    def _results_log(self, data: Mapping[str, object]) -> None:
        self._print(
            f"results log: {data['path']} "
            f"({data['total']} verdict(s) total)"
        )

    def _queue_saturated(self, data: Mapping[str, object]) -> None:
        self._print(
            f"queue saturated at {data['depth']} capture(s) "
            f"(high watermark {data['high_watermark']}); parking new "
            f"arrivals from {data['source']} until it drains below "
            f"{data['low_watermark']}"
        )

    def _library_reloaded(self, data: Mapping[str, object]) -> None:
        self._print(
            f"reloaded fingerprint library from {data['path']} "
            f"[{data['fingerprint'][:12]}]"
        )

    def _metrics_serving(self, data: Mapping[str, object]) -> None:
        self._print(
            f"metrics: http://{data['host']}:{data['port']}{data['path']}"
        )

    def _flows(self, data: Mapping[str, object]) -> None:
        self._print(format_table(data["rows"], f"Flows in {data['pcap']}"))

    def _record_stats(self, data: Mapping[str, object]) -> None:
        self._print()
        self._print(
            f"client TLS records on the largest flow: {data['count']}"
        )
        self._print(
            f"record lengths: min={data['minimum']:.0f} "
            f"median={data['median']:.0f} "
            f"p95={data['p95']:.0f} max={data['maximum']:.0f}"
        )

    def _table(self, data: Mapping[str, object]) -> None:
        self._print(format_table(data["rows"], data["title"]))
        if data.get("blank_after"):
            self._print()

    def _note(self, data: Mapping[str, object]) -> None:
        self._print(str(data["text"]))

    def _figure1(self, data: Mapping[str, object]) -> None:
        self._print("Figure 1 — streaming process walkthrough")
        self._print("=" * 41)
        for kind, detail in data["events"]:
            self._print(f"  {kind:<22s} {detail}")
        self._print(f"matches the paper's description: {data['matches']}")
        self._print()

    def _arena_started(self, data: Mapping[str, object]) -> None:
        self._print(
            f"arena: {data['cells']} cell(s) — {data['defenses']} defense(s) "
            f"(+ undefended) × {data['classifiers']} classifier(s) × "
            f"{data['conditions']} condition(s), seed {data['seed']}..."
        )

    def _cell_complete(self, data: Mapping[str, object]) -> None:
        self._print(
            f"  {data['cell']}: {data['defense']} vs {data['classifier']} "
            f"acc={data['choice_accuracy']:.4f} "
            f"overhead={data['overhead_bytes']:.1f}B [{data['state']}]"
        )

    def _serve_started(self, data: Mapping[str, object]) -> None:
        if "cells" in data:
            self._print(
                f"serving arena plan: {data['cells']} cell(s) "
                f"(seed {data['seed']}) at http://{data['host']}:{data['port']} "
                f"(lease ttl {data['lease_ttl']:g}s)"
            )
            return
        self._print(
            f"serving plan: {data['viewers']} viewers (seed {data['seed']}) "
            f"across {data['shards']} shards at "
            f"http://{data['host']}:{data['port']} "
            f"(lease ttl {data['lease_ttl']:g}s)"
        )

    def _lease_granted(self, data: Mapping[str, object]) -> None:
        self._print(
            f"  {data['unit']}: leased to {data['worker']} ({data['lease']})"
        )

    def _lease_reclaimed(self, data: Mapping[str, object]) -> None:
        self._print(
            f"  {data['unit']}: reclaimed from {data['worker']} "
            f"({data['lease']} expired); unit returns to the pool"
        )

    def _unit_complete(self, data: Mapping[str, object]) -> None:
        self._print(
            f"  {data['unit']}: verified upload from {data['worker']} "
            f"[{data['fingerprint'][:12]}]"
        )

    def _plan_complete(self, data: Mapping[str, object]) -> None:
        self._print(
            f"plan complete: {data['units']} unit(s) from "
            f"{data['workers']} worker(s)"
        )

    def _work_started(self, data: Mapping[str, object]) -> None:
        self._print(f"pulling work from {data['url']} as {data['worker']}")

    def _unit_leased(self, data: Mapping[str, object]) -> None:
        self._print(f"  {data['unit']}: leased ({data['lease']})")

    def _unit_uploaded(self, data: Mapping[str, object]) -> None:
        self._print(
            f"  {data['unit']}: uploaded {data['uploads']} artifact(s) "
            f"[{data['fingerprint'][:12]}]"
        )

    def _work_finished(self, data: Mapping[str, object]) -> None:
        self._print(f"done: {data['units']} unit(s) completed")

    def _headline(self, data: Mapping[str, object]) -> None:
        if "training_sessions" in data:
            self._print(
                f"calibrated on {data['training_sessions']} sessions, evaluated "
                f"{data['evaluated_sessions']}; worst case: "
                f"{data['worst_case']:.4f} "
                f"(paper: {data['paper_worst_case']:.2f})"
            )
        else:
            self._print(
                f"worst case: {data['worst_case']:.4f} "
                f"(paper: {data['paper_worst_case']:.2f})"
            )
            self._print()
