"""The jobs application layer: typed specs, an artifact-aware runner,
and a structured event bus.

This package is the seam between *what a run is* and *how it is invoked*:

* :mod:`repro.jobs.specs` — frozen, schema-versioned job specifications
  that round-trip through ``to_dict``/``from_dict`` (the wire format a
  fleet coordinator would lease to workers);
* :mod:`repro.jobs.runner` — :class:`JobRunner` executes a spec against a
  :class:`~repro.jobs.artifacts.Workspace`, returning a typed
  :class:`~repro.jobs.runner.JobResult` that names every durable output as
  a content-fingerprinted :class:`~repro.jobs.artifacts.Artifact`;
* :mod:`repro.jobs.events` / :mod:`repro.jobs.renderers` — runners emit
  semantic :class:`~repro.jobs.events.JobEvent`\\ s instead of printing;
  the console renderer reproduces the historical terminal output
  byte-for-byte and the JSONL renderer feeds machine consumers
  (``repro --log-format jsonl``).

The CLI in :mod:`repro.cli` is a thin adapter over this layer: parse
arguments, build a spec, run it, let the chosen renderer narrate.
"""

from repro.jobs.artifacts import Artifact, Workspace, fingerprint_path
from repro.jobs.events import (
    EVENT_SCHEMA_VERSION,
    EventBus,
    EventSink,
    JobEvent,
)
from repro.jobs.renderers import ConsoleRenderer, JsonlRenderer, renderer_for
from repro.jobs.runner import JobResult, JobRunner
from repro.jobs.specs import (
    SCHEMA_VERSION,
    SPEC_CLASSES,
    ArenaCellJob,
    ArenaJob,
    AttackJob,
    GenerateJob,
    InspectJob,
    JobSpec,
    MergeFingerprintsJob,
    ReproduceJob,
    ServeJob,
    StitchJob,
    TrainJob,
    WatchJob,
    WorkJob,
    job_from_dict,
)

__all__ = [
    "ArenaCellJob",
    "ArenaJob",
    "Artifact",
    "AttackJob",
    "ConsoleRenderer",
    "EVENT_SCHEMA_VERSION",
    "EventBus",
    "EventSink",
    "GenerateJob",
    "InspectJob",
    "JobEvent",
    "JobResult",
    "JobRunner",
    "JobSpec",
    "JsonlRenderer",
    "MergeFingerprintsJob",
    "ReproduceJob",
    "SCHEMA_VERSION",
    "SPEC_CLASSES",
    "ServeJob",
    "StitchJob",
    "TrainJob",
    "WatchJob",
    "WorkJob",
    "Workspace",
    "fingerprint_path",
    "job_from_dict",
    "renderer_for",
]
