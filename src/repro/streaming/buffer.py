"""Playback buffer model.

The buffer tracks how many seconds of video are downloaded but not yet
played.  The ABR controller reads it to pick qualities, and the session uses
it to decide how aggressively to fetch ahead (and how much default-branch
content can be prefetched while a question is on screen).
"""

from __future__ import annotations

from repro.exceptions import StreamingError


class PlaybackBuffer:
    """Seconds of buffered content with play/fill accounting."""

    def __init__(self, target_seconds: float = 30.0, max_seconds: float = 120.0) -> None:
        if target_seconds <= 0:
            raise StreamingError("buffer target must be positive")
        if max_seconds < target_seconds:
            raise StreamingError("buffer maximum must be at least the target")
        self._target = target_seconds
        self._max = max_seconds
        self._level = 0.0
        self._rebuffer_events = 0
        self._total_rebuffer_seconds = 0.0

    @property
    def level_seconds(self) -> float:
        """Seconds of content currently buffered."""
        return self._level

    @property
    def target_seconds(self) -> float:
        """The level the player tries to maintain."""
        return self._target

    @property
    def max_seconds(self) -> float:
        """Hard cap on buffered content."""
        return self._max

    @property
    def rebuffer_events(self) -> int:
        """How many times playback stalled because the buffer emptied."""
        return self._rebuffer_events

    @property
    def total_rebuffer_seconds(self) -> float:
        """Total stall time accumulated."""
        return self._total_rebuffer_seconds

    @property
    def is_full(self) -> bool:
        """Whether the buffer is at its cap (fetching should pause)."""
        return self._level >= self._max - 1e-9

    def headroom_seconds(self) -> float:
        """How many more seconds can be added before hitting the cap."""
        return max(0.0, self._max - self._level)

    def deficit_seconds(self) -> float:
        """How far below target the buffer currently is."""
        return max(0.0, self._target - self._level)

    def add(self, seconds: float) -> None:
        """Add downloaded content (clamped at the cap)."""
        if seconds < 0:
            raise StreamingError("cannot add negative seconds to the buffer")
        self._level = min(self._max, self._level + seconds)

    def play(self, seconds: float) -> float:
        """Consume ``seconds`` of playback; returns stall time incurred (if any)."""
        if seconds < 0:
            raise StreamingError("cannot play negative seconds")
        stall = 0.0
        if seconds > self._level:
            stall = seconds - self._level
            self._rebuffer_events += 1
            self._total_rebuffer_seconds += stall
            self._level = 0.0
        else:
            self._level -= seconds
        return stall

    def drain(self) -> float:
        """Discard all buffered content (e.g. prefetched wrong branch); returns seconds dropped."""
        dropped = self._level
        self._level = 0.0
        return dropped
