"""Adaptive-bitrate (ABR) controller.

A simple throughput-and-buffer rule in the spirit of deployed players: start
conservatively, then pick the highest rung that the recent throughput
estimate supports, dropping a rung when the buffer runs low.  The controller
matters to the reproduction only in that (a) chunk sizes in the captured
downlink look like a real session's, and (b) the *same* content streamed
under the *same* conditions produces similar chunk-size series — which is why
bitrate-based baselines cannot tell two same-length branches apart.
"""

from __future__ import annotations

from repro.exceptions import StreamingError
from repro.media.encoding import BitrateLadder, EncodingProfile
from repro.streaming.buffer import PlaybackBuffer
from repro.utils.units import Bandwidth


class AdaptiveBitrateController:
    """Throughput-estimating ABR with a low-buffer safety rule."""

    def __init__(
        self,
        ladder: BitrateLadder,
        safety_factor: float = 0.8,
        low_buffer_seconds: float = 8.0,
        smoothing: float = 0.6,
    ) -> None:
        if not 0 < safety_factor <= 1:
            raise StreamingError("safety factor must be in (0, 1]")
        if not 0 < smoothing <= 1:
            raise StreamingError("smoothing must be in (0, 1]")
        if low_buffer_seconds < 0:
            raise StreamingError("low-buffer threshold must be non-negative")
        self._ladder = ladder
        self._safety = safety_factor
        self._low_buffer = low_buffer_seconds
        self._smoothing = smoothing
        self._estimate_bps: float | None = None

    @property
    def ladder(self) -> BitrateLadder:
        """The bitrate ladder the controller selects from."""
        return self._ladder

    @property
    def throughput_estimate(self) -> Bandwidth | None:
        """The smoothed throughput estimate, if any samples were observed."""
        if self._estimate_bps is None:
            return None
        return Bandwidth(bits_per_second=self._estimate_bps)

    def observe_download(self, num_bytes: int, duration_seconds: float) -> None:
        """Feed one completed chunk download into the throughput estimator."""
        if num_bytes <= 0:
            raise StreamingError("download size must be positive")
        if duration_seconds <= 0:
            raise StreamingError("download duration must be positive")
        sample = num_bytes * 8.0 / duration_seconds
        if self._estimate_bps is None:
            self._estimate_bps = sample
        else:
            self._estimate_bps = (
                self._smoothing * self._estimate_bps + (1.0 - self._smoothing) * sample
            )

    def select_profile(self, buffer: PlaybackBuffer) -> EncodingProfile:
        """Pick the rung to request the next chunk at."""
        if self._estimate_bps is None:
            return self._ladder.lowest
        candidate = self._ladder.best_under(
            Bandwidth(bits_per_second=self._estimate_bps), self._safety
        )
        if buffer.level_seconds < self._low_buffer:
            index = self._ladder.index_of(candidate)
            if index > 0:
                candidate = self._ladder.profiles[index - 1]
        return candidate
