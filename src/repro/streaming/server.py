"""The streaming-service / CDN edge model.

The server side of the simulation is deliberately thin: it owns the media
manifest, answers chunk requests with the right number of bytes, and
acknowledges state reports.  All of its traffic rides the same TLS connection
as the client's messages, which is what makes the downlink records in the
captures look like a real session (large application-data records back to
back during chunk delivery).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import StreamingError
from repro.media.chunks import Chunk
from repro.media.manifest import MediaManifest


@dataclass(frozen=True)
class ChunkResponse:
    """The server's answer to one chunk request."""

    chunk: Chunk
    payload_bytes: int
    http_overhead_bytes: int

    @property
    def total_bytes(self) -> int:
        """Application bytes sent down for this chunk (media + HTTP framing)."""
        return self.payload_bytes + self.http_overhead_bytes


class StreamingServer:
    """Serves chunks and acknowledges state reports for one title."""

    #: HTTP response framing added around each chunk (status line, headers).
    _HTTP_RESPONSE_OVERHEAD = 310
    #: Size of the small acknowledgement sent back for each state report.
    _STATE_ACK_BYTES = 173

    def __init__(self, manifest: MediaManifest) -> None:
        self._manifest = manifest
        self._chunks_served = 0
        self._bytes_served = 0

    @property
    def manifest(self) -> MediaManifest:
        """The manifest the server is answering from."""
        return self._manifest

    @property
    def chunks_served(self) -> int:
        """Number of chunk requests answered."""
        return self._chunks_served

    @property
    def bytes_served(self) -> int:
        """Total application bytes sent down."""
        return self._bytes_served

    def serve_chunk(self, segment_id: str, chunk_index: int, profile_name: str) -> ChunkResponse:
        """Answer one chunk request."""
        chunk_map = self._manifest.segment_chunks(segment_id, profile_name)
        if not 0 <= chunk_index < len(chunk_map):
            raise StreamingError(
                f"segment {segment_id!r} has no chunk index {chunk_index} "
                f"at profile {profile_name!r}"
            )
        chunk = chunk_map[chunk_index]
        response = ChunkResponse(
            chunk=chunk,
            payload_bytes=chunk.size_bytes,
            http_overhead_bytes=self._HTTP_RESPONSE_OVERHEAD,
        )
        self._chunks_served += 1
        self._bytes_served += response.total_bytes
        return response

    def acknowledge_state_report(self) -> int:
        """Bytes of the acknowledgement sent in response to a state report."""
        return self._STATE_ACK_BYTES
