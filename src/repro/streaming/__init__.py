"""Interactive streaming session simulator.

This package drives everything end to end: it walks the story graph the way
the Netflix player does (Figure 1 of the paper), makes the viewer's choices
via the behaviour model, emits the client's state-report JSON messages and
media requests, streams chunks from the server model, prefetches the default
branch around every choice point, and hands every byte to the TLS and TCP
layers so the capture sink ends up with a realistic packet trace.
"""

from repro.streaming.events import EventKind, SessionEvent
from repro.streaming.buffer import PlaybackBuffer
from repro.streaming.abr import AdaptiveBitrateController
from repro.streaming.prefetch import PrefetchPlan, Prefetcher
from repro.streaming.server import StreamingServer
from repro.streaming.session import (
    InteractiveStreamingSession,
    SessionConfig,
    SessionResult,
    simulate_session,
)

__all__ = [
    "EventKind",
    "SessionEvent",
    "PlaybackBuffer",
    "AdaptiveBitrateController",
    "PrefetchPlan",
    "Prefetcher",
    "StreamingServer",
    "InteractiveStreamingSession",
    "SessionConfig",
    "SessionResult",
    "simulate_session",
]
