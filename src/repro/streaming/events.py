"""Session event log.

The simulator records a structured event for everything that happens during a
viewing session.  The Figure 1 reproduction checks this log against the
streaming process described in the paper, and the evaluation code uses it as
ground truth when scoring the attack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import StreamingError


class EventKind(str, Enum):
    """All event types the simulator can emit."""

    SESSION_STARTED = "session_started"
    HANDSHAKE_COMPLETED = "handshake_completed"
    SEGMENT_STARTED = "segment_started"
    CHUNK_REQUESTED = "chunk_requested"
    CHUNK_RECEIVED = "chunk_received"
    QUESTION_SHOWN = "question_shown"
    TYPE1_SENT = "type1_sent"
    PREFETCH_STARTED = "prefetch_started"
    PREFETCH_CHUNK = "prefetch_chunk"
    CHOICE_MADE = "choice_made"
    TYPE2_SENT = "type2_sent"
    PREFETCH_DISCARDED = "prefetch_discarded"
    TELEMETRY_SENT = "telemetry_sent"
    BULK_REPORT_SENT = "bulk_report_sent"
    STATE_MESSAGE_LOST = "state_message_lost"
    SEGMENT_FINISHED = "segment_finished"
    SESSION_FINISHED = "session_finished"


@dataclass(frozen=True)
class SessionEvent:
    """One entry of the session event log."""

    timestamp: float
    kind: EventKind
    details: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise StreamingError("event timestamp must be non-negative")


class EventLog:
    """Ordered collection of session events."""

    def __init__(self) -> None:
        self._events: list[SessionEvent] = []

    def record(self, timestamp: float, kind: EventKind, **details: object) -> SessionEvent:
        """Append an event and return it."""
        event = SessionEvent(timestamp=timestamp, kind=kind, details=dict(details))
        self._events.append(event)
        return event

    @property
    def events(self) -> tuple[SessionEvent, ...]:
        """All recorded events, in order."""
        return tuple(self._events)

    def of_kind(self, kind: EventKind) -> list[SessionEvent]:
        """All events of one kind, in order."""
        return [event for event in self._events if event.kind is kind]

    def count(self, kind: EventKind) -> int:
        """Number of events of one kind."""
        return len(self.of_kind(kind))

    def kinds_in_order(self) -> list[EventKind]:
        """The sequence of event kinds (useful for Figure 1 style checks)."""
        return [event.kind for event in self._events]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)
