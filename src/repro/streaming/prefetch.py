"""Default-branch prefetching around choice points.

When a question is on screen the player keeps the pipe busy by fetching
chunks of the *default* branch (the paper's ``Si``).  If the viewer picks the
non-default branch ``Si'`` instead, the prefetched chunks are discarded and a
type-2 state message tells the service to switch.  The prefetcher here
reproduces exactly that observable behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import StreamingError
from repro.media.chunks import Chunk, ChunkMap


@dataclass
class PrefetchPlan:
    """The chunks the player intends to prefetch for a default branch."""

    question_id: str
    segment_id: str
    chunks: tuple[Chunk, ...]
    fetched: list[Chunk] = field(default_factory=list)
    discarded: bool = False

    def __post_init__(self) -> None:
        if not self.question_id:
            raise StreamingError("prefetch plan needs a question id")
        if not self.segment_id:
            raise StreamingError("prefetch plan needs a segment id")

    @property
    def fetched_bytes(self) -> int:
        """Bytes of default-branch content fetched so far."""
        return sum(chunk.size_bytes for chunk in self.fetched)

    @property
    def fetched_seconds(self) -> float:
        """Seconds of default-branch content fetched so far."""
        return sum(chunk.duration_seconds for chunk in self.fetched)

    @property
    def remaining(self) -> tuple[Chunk, ...]:
        """Chunks planned but not yet fetched."""
        return self.chunks[len(self.fetched) :]


class Prefetcher:
    """Builds and executes prefetch plans while a question is on screen."""

    def __init__(self, max_prefetch_seconds: float = 20.0) -> None:
        if max_prefetch_seconds <= 0:
            raise StreamingError("maximum prefetch window must be positive")
        self._max_seconds = max_prefetch_seconds

    @property
    def max_prefetch_seconds(self) -> float:
        """Upper bound on how much default-branch content is prefetched."""
        return self._max_seconds

    def plan(self, question_id: str, default_chunks: ChunkMap) -> PrefetchPlan:
        """Choose which default-branch chunks to prefetch."""
        selected: list[Chunk] = []
        budget = self._max_seconds
        for chunk in default_chunks:
            if budget <= 0:
                break
            selected.append(chunk)
            budget -= chunk.duration_seconds
        if not selected:
            raise StreamingError(
                f"prefetch plan for {question_id!r} selected no chunks"
            )
        return PrefetchPlan(
            question_id=question_id,
            segment_id=default_chunks.segment_id,
            chunks=tuple(selected),
        )

    def fetchable_during(
        self, plan: PrefetchPlan, decision_delay_seconds: float, chunk_fetch_seconds: float
    ) -> list[Chunk]:
        """The chunks that actually get fetched before the viewer decides.

        ``chunk_fetch_seconds`` is the (average) time to download one chunk
        under the current conditions; the viewer's decision cuts prefetching
        short.
        """
        if decision_delay_seconds < 0:
            raise StreamingError("decision delay must be non-negative")
        if chunk_fetch_seconds <= 0:
            raise StreamingError("chunk fetch time must be positive")
        count = int(decision_delay_seconds // chunk_fetch_seconds)
        count = max(0, min(count, len(plan.remaining)))
        return list(plan.remaining[:count])

    def mark_fetched(self, plan: PrefetchPlan, chunks: list[Chunk]) -> None:
        """Record chunks as fetched on the plan."""
        plan.fetched.extend(chunks)

    def discard(self, plan: PrefetchPlan) -> int:
        """Discard the plan (viewer took the non-default branch); returns bytes wasted."""
        plan.discarded = True
        return plan.fetched_bytes
