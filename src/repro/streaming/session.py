"""The end-to-end interactive streaming session simulator.

:func:`simulate_session` is the main entry point of the simulation half of
the library: given a story graph, an operational condition and a viewer
behaviour model it produces a :class:`SessionResult` containing

* the captured packet trace (what the eavesdropper sees),
* the viewing path and choice records (ground truth),
* the state messages that were actually transmitted, and
* the full session event log (used by the Figure 1 reproduction).

The time model is a logical clock: playback time advances as segments play,
and network interactions around each instant (chunk requests, state reports,
acknowledgements) are stamped with small serialization/propagation offsets
from the condition model.  That is faithful enough for every observable the
paper's attack uses — record lengths, directions, ordering and coarse timing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.client.json_state import (
    JSON_TYPE_1,
    JSON_TYPE_2,
    StateMessage,
    build_type1_message,
    build_type2_message,
)
from repro.client.profiles import ClientProfile, OperationalCondition, profile_for
from repro.client.viewer import ViewerBehavior, ViewerChoiceModel
from repro.exceptions import StreamingError
from repro.media.manifest import MediaManifest, build_manifest
from repro.narrative.choices import ChoiceRecord
from repro.narrative.graph import StoryGraph
from repro.narrative.path import ViewingPath
from repro.net.capture import CaptureSink, CapturedTrace
from repro.net.conditions import NetworkConditions, conditions_for
from repro.net.endpoints import Endpoint, FiveTuple
from repro.net.packet import Direction
from repro.net.tcp import TCPSender
from repro.streaming.abr import AdaptiveBitrateController
from repro.streaming.buffer import PlaybackBuffer
from repro.streaming.events import EventKind, EventLog
from repro.streaming.prefetch import Prefetcher
from repro.streaming.server import StreamingServer
from repro.tls.ciphers import cipher_by_name
from repro.tls.handshake import simulate_handshake
from repro.tls.session import TLSSession
from repro.utils.rng import RandomSource

#: Annotation keys attached to packets for ground-truth evaluation only.
ANNOTATION_KIND = "kind"
ANNOTATION_QUESTION = "question_id"
ANNOTATION_RECORD_INDEX = "record_index"


@dataclass(frozen=True)
class SessionConfig:
    """Tunable parameters of a simulated viewing session."""

    content_seed: int = 20181228
    chunk_duration_seconds: float = 4.0
    playback_speedup: float = 60.0
    media_scale: float = 0.01
    telemetry_enabled: bool = True
    bulk_report_probability: float = 0.25
    cross_traffic_enabled: bool = True
    interactive: bool = True
    cipher_suite: str = "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256"
    #: When set, the client pads every state report (type-1 and type-2) to
    #: this many plaintext bytes before encryption — the deployable version
    #: of the paper's Section VI countermeasure, applied at the source.
    state_report_pad_to: int | None = None
    client_ip: str = "192.168.1.23"
    server_ip: str = "198.51.100.7"
    client_port: int = 51_742
    server_port: int = 443

    def __post_init__(self) -> None:
        if self.chunk_duration_seconds <= 0:
            raise StreamingError("chunk duration must be positive")
        if self.playback_speedup <= 0:
            raise StreamingError("playback speedup must be positive")
        if not 0.0 < self.media_scale <= 1.0:
            raise StreamingError("media scale must be within (0, 1]")
        if not 0.0 <= self.bulk_report_probability <= 1.0:
            raise StreamingError("bulk report probability must be within [0, 1]")
        if self.state_report_pad_to is not None and self.state_report_pad_to <= 0:
            raise StreamingError("state report padding target must be positive")
        # Validate the suite name eagerly so a typo fails at configuration
        # time, not in the middle of a simulated session.
        cipher_by_name(self.cipher_suite)


@dataclass(frozen=True)
class SessionResult:
    """Everything produced by one simulated viewing session."""

    trace: CapturedTrace
    path: ViewingPath
    condition: OperationalCondition
    profile: ClientProfile
    state_messages: tuple[StateMessage, ...]
    events: tuple[object, ...]
    session_id: str

    @property
    def choice_count(self) -> int:
        """Number of questions the viewer answered."""
        return self.path.choice_count

    @property
    def ground_truth_pattern(self) -> tuple[bool, ...]:
        """Default/non-default pattern of the viewer's choices."""
        return self.path.default_pattern

    def transmitted_state_message_kinds(self) -> list[str]:
        """Kinds of the state messages that actually reached the wire."""
        return [message.kind for message in self.state_messages]

    def fingerprint(self) -> str:
        """Stable digest of everything observable in this result.

        Covers every captured packet (timing, direction, sequencing, payload
        bytes), the ground-truth path and the transmitted state messages.
        Two results with the same fingerprint are byte-identical for every
        purpose the attack and the experiments care about — the engine's
        serial/parallel equivalence tests compare these instead of deep
        structures.
        """
        hasher = hashlib.sha256()
        for packet in self.trace.packets:
            hasher.update(
                f"{packet.timestamp!r}|{packet.direction.value}|"
                f"{packet.sequence_number}|{packet.wire_length}|"
                f"{int(packet.is_retransmission)}\n".encode("utf-8")
            )
            hasher.update(packet.payload)
        hasher.update("|".join(self.path.segment_ids).encode("utf-8"))
        for choice in self.path.choices:
            hasher.update(
                f"{choice.question_id}|{choice.selected_label}|"
                f"{int(choice.took_default)}|{choice.decision_time_seconds!r}\n".encode("utf-8")
            )
        for message in self.state_messages:
            hasher.update(
                f"{message.kind}|{message.question_id}|{message.size_bytes}\n".encode("utf-8")
            )
        return hasher.hexdigest()


class InteractiveStreamingSession:
    """Simulates one viewing session of an interactive title."""

    def __init__(
        self,
        graph: StoryGraph,
        condition: OperationalCondition,
        behavior: ViewerBehavior,
        rng: RandomSource,
        config: SessionConfig | None = None,
        manifest: MediaManifest | None = None,
        forced_choices: Sequence[bool] | None = None,
    ) -> None:
        self._graph = graph
        self._condition = condition
        self._behavior = behavior
        self._rng = rng
        self._config = config or SessionConfig()
        self._profile = profile_for(condition)
        self._network = conditions_for(condition)
        self._manifest = manifest or build_manifest(
            graph,
            content_seed=self._config.content_seed,
            chunk_duration_seconds=self._config.chunk_duration_seconds,
        )
        self._forced_choices = list(forced_choices) if forced_choices is not None else None
        self._choice_model = ViewerChoiceModel(behavior)
        self._events = EventLog()
        self._clock = 0.0
        # Session-wide counters feeding RNG child-stream names; they must
        # never reset mid-session, otherwise random draws would repeat.
        self._state_attempts = 0
        self._telemetry_sent = 0

    # -- public API --------------------------------------------------------

    def run(self, session_id: str = "session-0") -> SessionResult:
        """Execute the session and return its result."""
        graph = self._graph
        graph.validate()
        config = self._config
        profile = self._profile

        five_tuple = FiveTuple(
            client=Endpoint(ip=config.client_ip, port=config.client_port),
            server=Endpoint(ip=config.server_ip, port=config.server_port),
        )
        capture = CaptureSink(
            conditions=self._network,
            rng=self._rng.child("capture"),
            client_ip=config.client_ip,
            server_ip=config.server_ip,
        )
        uplink = TCPSender(five_tuple, Direction.CLIENT_TO_SERVER, mss=profile.mss)
        downlink = TCPSender(five_tuple, Direction.SERVER_TO_CLIENT, mss=profile.mss)
        cipher = cipher_by_name(config.cipher_suite)
        client_tls = TLSSession(key_id=f"{session_id}/client", cipher=cipher)
        server_tls = TLSSession(key_id=f"{session_id}/server", cipher=cipher)
        server = StreamingServer(self._manifest)
        buffer = PlaybackBuffer()
        abr = AdaptiveBitrateController(self._manifest.ladder)
        prefetcher = Prefetcher()

        self._events.record(self._clock, EventKind.SESSION_STARTED, session_id=session_id)
        self._do_handshake(capture, uplink, downlink)

        state_messages: list[StateMessage] = []
        records: list[ChoiceRecord] = []
        segments = [graph.root_segment.segment_id]
        next_telemetry = self._rng.child("telemetry").exponential(
            profile.telemetry_interval_seconds
        )

        current_segment = graph.root_segment.segment_id
        answered = 0
        max_questions = 2 * max(1, graph.choice_point_count)
        while True:
            self._stream_segment(
                current_segment,
                capture,
                uplink,
                downlink,
                client_tls,
                server_tls,
                server,
                buffer,
                abr,
                profile,
                next_telemetry_ref := [next_telemetry],
                state_messages,
            )
            next_telemetry = next_telemetry_ref[0]
            choice_point = (
                graph.choice_point_after(current_segment) if config.interactive else None
            )
            if choice_point is None or answered >= max_questions:
                break

            # -- question shown: type-1 state report ------------------------
            self._events.record(
                self._clock, EventKind.QUESTION_SHOWN, question_id=choice_point.question_id
            )
            type1 = build_type1_message(
                profile,
                choice_point.question_id,
                self._clock,
                self._rng.child(("type1", answered)),
            )
            self._send_state_message(
                type1, capture, uplink, downlink, client_tls, server_tls, state_messages
            )

            # -- prefetch the default branch while the viewer decides -------
            default_segment = choice_point.default_choice.target_segment_id
            quality = abr.select_profile(buffer)
            default_chunks = self._manifest.segment_chunks(default_segment, quality.name)
            plan = prefetcher.plan(choice_point.question_id, default_chunks)
            self._events.record(
                self._clock,
                EventKind.PREFETCH_STARTED,
                question_id=choice_point.question_id,
                segment_id=default_segment,
                planned_chunks=len(plan.chunks),
            )
            if self._forced_choices is not None and answered < len(self._forced_choices):
                takes_default = bool(self._forced_choices[answered])
            else:
                takes_default = self._choice_model.decide(
                    choice_point, self._rng.child(("choice", answered))
                )
            decision_delay = self._choice_model.decision_delay(
                choice_point, self._rng.child(("delay", answered))
            )
            chunk_fetch_seconds = max(
                0.2,
                self._network.serialization_delay(
                    default_chunks[0].size_bytes, uplink=False
                )
                + self._network.base_rtt_seconds,
            )
            fetched = prefetcher.fetchable_during(plan, decision_delay, chunk_fetch_seconds)
            fetch_clock = self._clock
            for chunk in fetched:
                fetch_clock += chunk_fetch_seconds
                self._transfer_chunk(
                    chunk.segment_id,
                    chunk.index,
                    quality.name,
                    fetch_clock,
                    capture,
                    uplink,
                    downlink,
                    client_tls,
                    server_tls,
                    server,
                    kind="prefetch_chunk",
                )
                self._events.record(
                    fetch_clock,
                    EventKind.PREFETCH_CHUNK,
                    question_id=choice_point.question_id,
                    chunk_id=chunk.chunk_id,
                )
            prefetcher.mark_fetched(plan, fetched)
            self._clock += decision_delay

            # -- the decision ------------------------------------------------
            selected = choice_point.choice_for(takes_default)
            records.append(
                ChoiceRecord(
                    question_id=choice_point.question_id,
                    selected_label=selected.label,
                    took_default=takes_default,
                    decision_time_seconds=decision_delay,
                )
            )
            self._events.record(
                self._clock,
                EventKind.CHOICE_MADE,
                question_id=choice_point.question_id,
                selected_label=selected.label,
                took_default=takes_default,
            )
            if takes_default:
                buffer.add(plan.fetched_seconds)
            else:
                discarded = prefetcher.discard(plan)
                self._events.record(
                    self._clock,
                    EventKind.PREFETCH_DISCARDED,
                    question_id=choice_point.question_id,
                    discarded_bytes=discarded,
                )
                type2 = build_type2_message(
                    profile,
                    choice_point.question_id,
                    self._clock,
                    self._rng.child(("type2", answered)),
                )
                self._send_state_message(
                    type2, capture, uplink, downlink, client_tls, server_tls, state_messages
                )

            answered += 1
            current_segment = selected.target_segment_id
            segments.append(current_segment)

        self._events.record(self._clock, EventKind.SESSION_FINISHED)
        if config.cross_traffic_enabled:
            capture.add_cross_traffic(self._clock, self._rng.child("cross"))
        trace = capture.trace()
        path = ViewingPath(segment_ids=tuple(segments), choices=tuple(records))
        return SessionResult(
            trace=trace,
            path=path,
            condition=self._condition,
            profile=profile,
            state_messages=tuple(state_messages),
            events=self._events.events,
            session_id=session_id,
        )

    # -- internal helpers ---------------------------------------------------

    def _do_handshake(self, capture: CaptureSink, uplink: TCPSender, downlink: TCPSender) -> None:
        handshake_rng = self._rng.child("handshake")
        for entry in simulate_handshake(TLSSession(key_id="hs").cipher, handshake_rng):
            sender = uplink if entry.from_client else downlink
            payload = entry.record.serialize()
            delay = self._network.one_way_delay(handshake_rng)
            self._clock += delay
            packets = sender.send(
                payload,
                self._clock,
                annotations={ANNOTATION_KIND: "handshake"},
            )
            capture.observe_all(packets)
        self._events.record(self._clock, EventKind.HANDSHAKE_COMPLETED)

    def _send_application_payload(
        self,
        payload: bytes,
        kind: str,
        capture: CaptureSink,
        sender: TCPSender,
        tls: TLSSession,
        timestamp: float,
        question_id: str | None = None,
    ) -> None:
        """Protect a payload with TLS and emit its TCP segments."""
        annotations: dict[str, object] = {ANNOTATION_KIND: kind}
        if question_id is not None:
            annotations[ANNOTATION_QUESTION] = question_id
        for index, record in enumerate(tls.protect(payload)):
            record_annotations = dict(annotations)
            record_annotations[ANNOTATION_RECORD_INDEX] = index
            packets = sender.send(record.serialize(), timestamp, record_annotations)
            capture.observe_all(packets)

    def _send_state_message(
        self,
        message: StateMessage,
        capture: CaptureSink,
        uplink: TCPSender,
        downlink: TCPSender,
        client_tls: TLSSession,
        server_tls: TLSSession,
        state_messages: list[StateMessage],
    ) -> None:
        """Transmit a state report (unless it is lost before the capture point)."""
        kind_event = EventKind.TYPE1_SENT if message.kind == JSON_TYPE_1 else EventKind.TYPE2_SENT
        # The counter tracks *attempted* reports (not delivered ones) so every
        # report gets an independent loss draw even after a loss occurred.
        self._state_attempts += 1
        if self._rng.child(("state-loss", self._state_attempts)).bernoulli(
            self._profile.state_loss_probability
        ):
            self._events.record(
                self._clock,
                EventKind.STATE_MESSAGE_LOST,
                question_id=message.question_id,
                message_kind=message.kind,
            )
            return
        self._clock += self._network.one_way_delay(self._rng.child("state-delay"))
        payload = message.payload
        pad_to = self._config.state_report_pad_to
        if pad_to is not None and len(payload) < pad_to:
            # Source-level countermeasure: both report types go out at one
            # constant plaintext size, so their ciphertext lengths coincide.
            payload = payload + b" " * (pad_to - len(payload))
        self._send_application_payload(
            payload,
            kind=message.kind,
            capture=capture,
            sender=uplink,
            tls=client_tls,
            timestamp=self._clock,
            question_id=message.question_id,
        )
        state_messages.append(message)
        self._events.record(
            self._clock, kind_event, question_id=message.question_id, size=message.size_bytes
        )
        # Server acknowledges the report with a small response.
        ack_bytes = StreamingServer(self._manifest).acknowledge_state_report()
        ack_payload = self._rng.child("ack").random_bytes(ack_bytes)
        self._send_application_payload(
            ack_payload,
            kind="state_ack",
            capture=capture,
            sender=downlink,
            tls=server_tls,
            timestamp=self._clock + self._network.base_rtt_seconds,
        )

    def _transfer_chunk(
        self,
        segment_id: str,
        chunk_index: int,
        profile_name: str,
        timestamp: float,
        capture: CaptureSink,
        uplink: TCPSender,
        downlink: TCPSender,
        client_tls: TLSSession,
        server_tls: TLSSession,
        server: StreamingServer,
        kind: str = "chunk",
    ) -> int:
        """Request and receive one media chunk; returns its total bytes."""
        request_rng = self._rng.child(("request", segment_id, chunk_index))
        request_size = request_rng.jittered(
            self._profile.request_payload_bytes, self._profile.request_payload_jitter
        )
        request_payload = request_rng.random_bytes(request_size)
        self._send_application_payload(
            request_payload,
            kind="chunk_request",
            capture=capture,
            sender=uplink,
            tls=client_tls,
            timestamp=timestamp,
        )
        self._events.record(
            timestamp, EventKind.CHUNK_REQUESTED, segment_id=segment_id, chunk_index=chunk_index
        )
        response = server.serve_chunk(segment_id, chunk_index, profile_name)
        # The transmitted payload is scaled down by ``media_scale`` so traces
        # stay a tractable size; the *timing* and the event log use the real
        # chunk size, so throughput estimation and the baselines see realistic
        # relative structure.
        transmitted_bytes = max(64, int(response.total_bytes * self._config.media_scale))
        response_payload = request_rng.random_bytes(transmitted_bytes)
        arrival = timestamp + self._network.base_rtt_seconds
        self._send_application_payload(
            response_payload,
            kind=kind,
            capture=capture,
            sender=downlink,
            tls=server_tls,
            timestamp=arrival,
        )
        self._events.record(
            arrival,
            EventKind.CHUNK_RECEIVED,
            segment_id=segment_id,
            chunk_index=chunk_index,
            size_bytes=response.total_bytes,
            transmitted_bytes=transmitted_bytes,
        )
        return response.total_bytes

    def _maybe_send_telemetry(
        self,
        capture: CaptureSink,
        uplink: TCPSender,
        client_tls: TLSSession,
        next_telemetry_ref: list[float],
    ) -> None:
        """Send periodic player telemetry if its timer has elapsed."""
        if not self._config.telemetry_enabled:
            return
        while self._clock >= next_telemetry_ref[0]:
            telemetry_rng = self._rng.child(("telemetry", self._telemetry_sent))
            if telemetry_rng.bernoulli(self._profile.band_collision_probability):
                # Occasionally a telemetry upload happens to be the same size
                # as a state report: the main source of attack false positives.
                target_band = telemetry_rng.choice(["type1", "type2"])
                if target_band == "type1":
                    size = telemetry_rng.jittered(
                        self._profile.type1_payload_bytes, self._profile.type1_payload_jitter
                    )
                else:
                    size = telemetry_rng.jittered(
                        self._profile.type2_payload_bytes, self._profile.type2_payload_jitter
                    )
            elif telemetry_rng.bernoulli(self._config.bulk_report_probability):
                size = telemetry_rng.jittered(
                    self._profile.bulk_report_payload_bytes,
                    self._profile.bulk_report_payload_jitter,
                )
            else:
                size = telemetry_rng.jittered(
                    self._profile.telemetry_payload_bytes,
                    self._profile.telemetry_payload_jitter,
                )
            payload = telemetry_rng.random_bytes(size)
            # The upload is stamped at the current clock (not the scheduled
            # instant) so packet timestamps stay monotone within the TCP
            # stream even when a chunk download overshot the telemetry timer.
            self._send_application_payload(
                payload,
                kind="telemetry",
                capture=capture,
                sender=uplink,
                tls=client_tls,
                timestamp=self._clock,
            )
            event_kind = (
                EventKind.BULK_REPORT_SENT
                if size >= self._profile.bulk_report_payload_bytes - self._profile.bulk_report_payload_jitter
                else EventKind.TELEMETRY_SENT
            )
            self._events.record(self._clock, event_kind, size=size)
            next_telemetry_ref[0] += self._rng.child(
                ("telemetry-gap", self._telemetry_sent)
            ).exponential(self._profile.telemetry_interval_seconds)
            self._telemetry_sent += 1

    def _stream_segment(
        self,
        segment_id: str,
        capture: CaptureSink,
        uplink: TCPSender,
        downlink: TCPSender,
        client_tls: TLSSession,
        server_tls: TLSSession,
        server: StreamingServer,
        buffer: PlaybackBuffer,
        abr: AdaptiveBitrateController,
        profile: ClientProfile,
        next_telemetry_ref: list[float],
        state_messages: list[StateMessage],
    ) -> None:
        """Stream and 'play' one segment, advancing the session clock."""
        segment = self._graph.segment(segment_id)
        self._events.record(self._clock, EventKind.SEGMENT_STARTED, segment_id=segment_id)
        quality = abr.select_profile(buffer)
        chunk_map = self._manifest.segment_chunks(segment_id, quality.name)
        already_buffered = min(buffer.level_seconds, chunk_map.total_seconds)
        skip_chunks = int(already_buffered // self._manifest.chunk_duration_seconds)
        for chunk in chunk_map.chunks[skip_chunks:]:
            quality = abr.select_profile(buffer)
            actual_map = self._manifest.segment_chunks(segment_id, quality.name)
            actual_chunk = actual_map[min(chunk.index, len(actual_map) - 1)]
            total = self._transfer_chunk(
                segment_id,
                actual_chunk.index,
                quality.name,
                self._clock,
                capture,
                uplink,
                downlink,
                client_tls,
                server_tls,
                server,
            )
            download_seconds = max(
                1e-3,
                self._network.serialization_delay(total, uplink=False)
                + self._network.base_rtt_seconds,
            )
            abr.observe_download(total, download_seconds)
            buffer.add(actual_chunk.duration_seconds)
            # Playback (and therefore wall-clock progress between network
            # events) is compressed by the speedup factor so simulating a
            # ~90-minute film stays cheap; ordering of events is unaffected.
            played = actual_chunk.duration_seconds / self._config.playback_speedup
            buffer.play(actual_chunk.duration_seconds)
            self._clock += max(download_seconds, played)
            self._maybe_send_telemetry(capture, uplink, client_tls, next_telemetry_ref)
        self._events.record(self._clock, EventKind.SEGMENT_FINISHED, segment_id=segment_id)


def simulate_session(
    graph: StoryGraph,
    condition: OperationalCondition,
    behavior: ViewerBehavior,
    seed: int,
    config: SessionConfig | None = None,
    manifest: MediaManifest | None = None,
    forced_choices: Sequence[bool] | None = None,
    session_id: str | None = None,
) -> SessionResult:
    """Convenience wrapper: build and run one session from a seed."""
    rng = RandomSource(seed, ("session",))
    session = InteractiveStreamingSession(
        graph=graph,
        condition=condition,
        behavior=behavior,
        rng=rng,
        config=config,
        manifest=manifest,
        forced_choices=forced_choices,
    )
    return session.run(session_id=session_id or f"session-{seed}")
