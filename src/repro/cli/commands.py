"""Command handlers: thin adapters from argparse namespaces to job specs.

Each ``cmd_*`` does exactly three things — build the typed spec for its
sub-command, hand it to a :class:`~repro.jobs.runner.JobRunner` whose event
bus carries the renderer selected by ``--log-format``, and return 0.  All
orchestration (and every format string) lives in :mod:`repro.jobs`; the
CLI owns only the argv surface.  ``tests/test_cli_golden.py`` pins the
default console output byte-for-byte against the pre-jobs-layer CLI.
"""

from __future__ import annotations

import argparse

from repro.ingest.fleet import DEFAULT_QUEUE_HIGH  # noqa: F401 - CLI help text
from repro.ingest.tasks import DEFAULT_CLIENT_IP  # noqa: F401 - CLI help text
from repro.jobs import (
    ArenaJob,
    AttackJob,
    EventBus,
    GenerateJob,
    InspectJob,
    JobRunner,
    JobSpec,
    MergeFingerprintsJob,
    ReproduceJob,
    ServeJob,
    StitchJob,
    TrainJob,
    WatchJob,
    WorkJob,
    renderer_for,
)


def _run(arguments: argparse.Namespace, spec: JobSpec) -> int:
    """Execute ``spec`` with the renderer the user picked; exit code 0."""
    renderer = renderer_for(getattr(arguments, "log_format", "console"))
    JobRunner(bus=EventBus(renderer)).run(spec)
    return 0


def cmd_generate_dataset(arguments: argparse.Namespace) -> int:
    """Handle ``repro generate-dataset``."""
    return _run(
        arguments,
        GenerateJob(
            output=arguments.output,
            viewers=arguments.viewers,
            seed=arguments.seed,
            write_pcaps=not arguments.no_pcaps,
            cross_traffic=not arguments.no_cross_traffic,
            shards=arguments.shards,
            resume=arguments.resume,
            shard_workers=arguments.shard_workers,
            only_shards=arguments.only_shards,
            workers=arguments.workers,
        ),
    )


def cmd_stitch(arguments: argparse.Namespace) -> int:
    """Handle ``repro stitch``."""
    return _run(arguments, StitchJob(root=arguments.root))


def cmd_train(arguments: argparse.Namespace) -> int:
    """Handle ``repro train``."""
    return _run(
        arguments,
        TrainJob(
            dataset=arguments.dataset,
            output=arguments.output,
            train_fraction=arguments.train_fraction,
            sharded=arguments.sharded,
            margin=arguments.margin,
            save_state=arguments.save_state,
            workers=arguments.workers,
        ),
    )


def cmd_merge_fingerprints(arguments: argparse.Namespace) -> int:
    """Handle ``repro merge-fingerprints``."""
    return _run(
        arguments,
        MergeFingerprintsJob(
            states=tuple(arguments.states),
            output=arguments.output,
            margin=arguments.margin,
            save_state=arguments.save_state,
        ),
    )


def cmd_attack(arguments: argparse.Namespace) -> int:
    """Handle ``repro attack``."""
    return _run(
        arguments,
        AttackJob(
            target=arguments.pcap,
            library=arguments.fingerprints,
            environment=arguments.environment,
            client_ip=arguments.client_ip,
            server_ip=arguments.server_ip,
            results_log=arguments.results_log,
            workers=arguments.workers,
        ),
    )


def cmd_watch(arguments: argparse.Namespace) -> int:
    """Handle ``repro watch``."""
    return _run(
        arguments,
        WatchJob(
            directory=arguments.directory,
            library=arguments.library,
            follow=arguments.follow,
            results_log=arguments.results_log,
            poll_interval=arguments.poll_interval,
            environment=arguments.environment,
            client_ip=arguments.client_ip,
            server_ip=arguments.server_ip,
            workers=arguments.workers,
            sources=tuple(arguments.source or ()),
            recursive=arguments.recursive,
            queue_high=arguments.queue_high,
            queue_low=arguments.queue_low,
            reload_library=arguments.reload_library,
            metrics_port=arguments.metrics_port,
        ),
    )


def cmd_arena(arguments: argparse.Namespace) -> int:
    """Handle ``repro arena``."""
    return _run(
        arguments,
        ArenaJob(
            output=arguments.output,
            report=arguments.report,
            defenses=tuple(arguments.defenses),
            classifiers=tuple(arguments.classifiers),
            conditions=tuple(arguments.conditions),
            train_count=arguments.train_count,
            test_count=arguments.test_count,
            seed=arguments.seed,
            shard_workers=arguments.shard_workers,
            resume=arguments.resume,
        ),
    )


def cmd_serve(arguments: argparse.Namespace) -> int:
    """Handle ``repro serve``."""
    return _run(
        arguments,
        ServeJob(
            output=arguments.output,
            library=arguments.library,
            viewers=arguments.viewers,
            shards=arguments.shards,
            seed=arguments.seed,
            margin=arguments.margin,
            cross_traffic=not arguments.no_cross_traffic,
            write_pcaps=not arguments.no_pcaps,
            host=arguments.host,
            port=arguments.port,
            lease_ttl=arguments.lease_ttl,
            arena=arguments.arena,
            defenses=tuple(arguments.defenses),
            classifiers=tuple(arguments.classifiers),
            conditions=tuple(arguments.conditions),
            train_count=arguments.train_count,
            test_count=arguments.test_count,
        ),
    )


def cmd_work(arguments: argparse.Namespace) -> int:
    """Handle ``repro work``."""
    return _run(
        arguments,
        WorkJob(
            url=arguments.url,
            worker_id=arguments.worker_id,
            scratch=arguments.scratch,
            poll_interval=arguments.poll_interval,
            max_units=arguments.max_units,
        ),
    )


def cmd_reproduce(arguments: argparse.Namespace) -> int:
    """Handle ``repro reproduce``."""
    return _run(
        arguments,
        ReproduceJob(
            experiment=arguments.experiment,
            quick=arguments.quick,
            dataset=arguments.dataset,
            workers=arguments.workers,
        ),
    )


def cmd_inspect(arguments: argparse.Namespace) -> int:
    """Handle ``repro inspect``."""
    return _run(
        arguments,
        InspectJob(pcap=arguments.pcap, client_ip=arguments.client_ip),
    )
