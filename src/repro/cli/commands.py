"""Implementations of the CLI sub-commands."""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.core.features import extract_client_records
from repro.core.fingerprint import FingerprintAccumulator, FingerprintLibrary
from repro.core.pipeline import AttackResult, WhiteMirrorAttack
from repro.dataset.collection import collect_dataset, default_study_script
from repro.dataset.format import (
    METADATA_FILENAME,
    load_dataset_metadata,
    session_config_from_metadata,
)
from repro.dataset.iitm import DatasetSummary, IITMBandersnatchDataset
from repro.dataset.population import viewers_from_metadata_entries
from repro.dataset.sidecar import fold_shard_sidecar
from repro.dataset.shards import (
    SHARD_GENERATED,
    SHARDS_MANIFEST_FILENAME,
    ShardedDataset,
    discover_shard_directories,
    generate_shard_subset,
    generate_sharded_dataset,
    iter_shard_training_sessions,
    load_consistent_shard_metadata,
    merge_shard_summaries,
    parse_shard_selection,
    stitch_sharded_dataset,
)
from repro.exceptions import DatasetError, ReproError
from repro.experiments.report import format_table
from repro.ingest.service import (
    SKIP_ALREADY_ATTACKED,
    SKIP_UNREADABLE,
    StreamingAttackService,
)
from repro.ingest.tasks import (
    DEFAULT_CLIENT_IP,
    build_pcap_task,
    metadata_entries_near,
)
from repro.net.capture import CapturedTrace
from repro.net.packet import Direction
from repro.streaming.session import SessionConfig
from repro.utils.stats import summarize


def _print_summary(summary: DatasetSummary) -> None:
    print(
        f"viewers={summary.viewer_count} conditions={summary.distinct_conditions} "
        f"choices={summary.total_choices} packets={summary.total_packets}"
    )


def cmd_generate_dataset(arguments: argparse.Namespace) -> int:
    """``repro generate-dataset``: build and persist a synthetic dataset.

    Generation always streams: each viewer's session is persisted as the
    engine completes it, so peak memory is bounded by the in-flight window
    (and, with ``--shards``, per-shard state) rather than the population.
    """
    config = SessionConfig(cross_traffic_enabled=not arguments.no_cross_traffic)
    progress = lambda done, total: print(f"  {done}/{total} sessions", end="\r")  # noqa: E731
    if arguments.resume and arguments.shards is None:
        raise ReproError("--resume requires --shards (only sharded runs checkpoint)")
    if arguments.shard_workers is not None and arguments.shards is None:
        raise ReproError(
            "--shard-workers requires --shards (only sharded runs fan whole "
            "shards out)"
        )
    if arguments.only_shards is not None and arguments.shards is None:
        raise ReproError(
            "--only-shards requires --shards (the selection names shards of "
            "the full plan)"
        )
    if arguments.shards is not None:
        verb = "resuming" if arguments.resume else "generating"
        # A shard reports e.g. "quarantined+generated" when a partial copy was
        # moved aside before regeneration.
        shard_states: dict[str, list[str]] = {}
        record_state = lambda shard, state: shard_states.setdefault(  # noqa: E731
            shard.dirname, []
        ).append(state)
        if arguments.only_shards is not None:
            selection = parse_shard_selection(arguments.only_shards, arguments.shards)
            print(
                f"{verb} shards {','.join(str(i) for i in selection)} of "
                f"{arguments.viewers} viewers (seed {arguments.seed}) "
                f"across {arguments.shards} shards..."
            )
            summaries = generate_shard_subset(
                arguments.output,
                viewer_count=arguments.viewers,
                shard_count=arguments.shards,
                only_shards=selection,
                seed=arguments.seed,
                config=config,
                workers=arguments.workers,
                shard_workers=arguments.shard_workers,
                write_pcaps=not arguments.no_pcaps,
                progress=progress,
                resume=arguments.resume,
                status=record_state,
            )
            print()
            for shard in summaries:
                state = "+".join(shard_states.get(shard.directory, [SHARD_GENERATED]))
                print(f"  {shard.directory}: viewers={shard.viewer_count} [{state}]")
            print(
                f"wrote {len(summaries)} of {arguments.shards} shards under "
                f"{arguments.output} (no manifest; once every machine's "
                "shards sit under one root, publish it with `repro stitch`)"
            )
            _print_summary(merge_shard_summaries(summaries))
            return 0
        print(
            f"{verb} {arguments.viewers} viewers (seed {arguments.seed}) "
            f"across {arguments.shards} shards..."
        )
        dataset = generate_sharded_dataset(
            arguments.output,
            viewer_count=arguments.viewers,
            shard_count=arguments.shards,
            seed=arguments.seed,
            config=config,
            workers=arguments.workers,
            shard_workers=arguments.shard_workers,
            write_pcaps=not arguments.no_pcaps,
            progress=progress,
            resume=arguments.resume,
            status=record_state,
        )
        print()
        for shard in dataset.shard_summaries:
            state = "+".join(shard_states.get(shard.directory, [SHARD_GENERATED]))
            print(f"  {shard.directory}: viewers={shard.viewer_count} [{state}]")
        print(f"wrote {dataset.manifest_path}")
        _print_summary(dataset.summary())
        return 0
    print(f"generating {arguments.viewers} viewers (seed {arguments.seed})...")
    metadata_path, summary = IITMBandersnatchDataset.generate_streaming(
        arguments.output,
        viewer_count=arguments.viewers,
        seed=arguments.seed,
        config=config,
        progress=progress,
        workers=arguments.workers,
        write_pcaps=not arguments.no_pcaps,
    )
    print()
    print(f"wrote {metadata_path}")
    _print_summary(summary)
    return 0


def _print_fingerprints(library: FingerprintLibrary, output: str) -> None:
    rows = [
        {
            "environment": key,
            "type1_band": f"{library.get(key).type1_band.low}-{library.get(key).type1_band.high}",
            "type2_band": f"{library.get(key).type2_band.low}-{library.get(key).type2_band.high}",
            "training_records": library.get(key).training_records,
        }
        for key in sorted(library.condition_keys)
    ]
    print(format_table(rows, "Learned fingerprints"))
    print(f"wrote {output}")


def _train_sharded(arguments: argparse.Namespace, directory: Path) -> int:
    """``repro train --sharded``: fold a sharded dataset in shard by shard.

    The whole sharded dataset is the attacker's calibration corpus (held-out
    evaluation splits are the experiment drivers' job), so every shard's
    sessions are re-simulated lazily and folded into the fingerprint
    accumulator — peak memory holds one engine window of sessions regardless
    of the population size, and the resulting library is identical to batch
    training over every session at once.

    A *subset root* — shard directories written by ``--only-shards`` with no
    ``shards.json`` manifest yet — also trains: the machine folds in whatever
    shards it holds locally, and ``--save-state`` serialises the running
    accumulator so the per-machine states can later be combined with
    ``repro merge-fingerprints`` into exactly the library one machine
    training over the stitched root would learn.

    Shards carrying a fresh columnar sidecar (``traces/records.npz``, see
    :mod:`repro.dataset.sidecar`) skip re-simulation entirely: their
    recorded wire lengths and ground-truth label codes fold straight into
    the accumulator.  The fold is per-record identical to re-simulating, so
    the saved library (and any ``--save-state`` file) is byte-for-byte the
    same with sidecars, without them, or with any mix.
    """
    if arguments.train_fraction is not None:
        raise ReproError(
            "--train-fraction applies to single-directory training only; "
            "--sharded uses the whole sharded dataset as calibration data"
        )
    workers = getattr(arguments, "workers", None)
    if (directory / SHARDS_MANIFEST_FILENAME).exists() or (
        directory / METADATA_FILENAME
    ).exists():
        # A stitched/complete root (or a single dataset directory, which
        # ShardedDataset.load rejects with guidance).
        dataset = ShardedDataset.load(directory)
        viewer_count = dataset.viewer_count
        shard_directories = dataset.shard_directories()
        print(
            f"incrementally training on {viewer_count} viewers across "
            f"{dataset.shard_count} shards..."
        )
    else:
        try:
            found = discover_shard_directories(directory)
        except DatasetError as error:
            raise DatasetError(
                f"{directory} is not a sharded dataset root: no "
                f"{SHARDS_MANIFEST_FILENAME} manifest and no shard-NNN "
                "directories (generate one with `repro generate-dataset "
                "--shards N`)"
            ) from error
        metadata_by_shard = load_consistent_shard_metadata(found)
        viewer_count = sum(
            int(metadata["viewer_count"]) for metadata in metadata_by_shard
        )
        shard_directories = [path for _index, path in found]
        print(
            f"incrementally training on {viewer_count} viewers across "
            f"{len(found)} local shard(s) of an unstitched subset root..."
        )
    attack = WhiteMirrorAttack(graph=default_study_script(), band_margin=arguments.margin)
    accumulator = FingerprintAccumulator()
    pending: list[Path] = []
    folded_shards = 0
    folded_records = 0
    for shard_directory in shard_directories:
        folded = fold_shard_sidecar(shard_directory, accumulator)
        if folded is None:
            pending.append(shard_directory)
        else:
            folded_shards += 1
            folded_records += folded
    if folded_shards:
        print(
            f"  folded {folded_shards}/{len(shard_directories)} shard(s) from "
            f"columnar sidecars ({folded_records} records, no re-simulation)"
        )
    if pending:
        attack.train_incremental(
            (
                iter_shard_training_sessions(path, workers=workers)
                for path in pending
            ),
            progress=lambda folded: print(f"  {folded} session(s) re-simulated", end="\r"),
            accumulator=accumulator,
        )
        print()
    else:
        # Every shard folded from its sidecar; finalise the accumulated
        # state directly (train_incremental would reject zero sessions).
        accumulator.finalize_into(attack.library, margin=arguments.margin)
    if getattr(arguments, "save_state", None):
        accumulator.save(arguments.save_state)
        print(f"wrote accumulator state to {arguments.save_state}")
    attack.library.save(arguments.output)
    _print_fingerprints(attack.library, arguments.output)
    return 0


def cmd_stitch(arguments: argparse.Namespace) -> int:
    """``repro stitch``: verify rsync'd shards and publish the manifest.

    The distributed-generation closing step: machines that split one plan
    with ``generate-dataset --only-shards`` copy their shard directories
    under one root, and stitching validates the union against the recorded
    seed, session configuration and story-graph fingerprint — without
    regenerating or re-reading a single pcap — then writes ``shards.json``.
    """
    print(f"stitching shards under {arguments.root}...")
    dataset = stitch_sharded_dataset(
        arguments.root,
        status=lambda shard, state: print(
            f"  {shard.dirname}: viewers={shard.viewer_count} [{state}]"
        ),
    )
    print(f"wrote {dataset.manifest_path}")
    _print_summary(dataset.summary())
    return 0


def cmd_merge_fingerprints(arguments: argparse.Namespace) -> int:
    """``repro merge-fingerprints``: fold per-machine calibration states.

    Each input is the accumulator state a machine saved with ``repro train
    --sharded --save-state``; the states merge like shard summaries (band
    extremes fold, record counts add) and finalise into a fingerprint
    library identical — byte for byte — to single-machine training over the
    union of the machines' shards.
    """
    merged = FingerprintAccumulator()
    for path in arguments.states:
        state = FingerprintAccumulator.load(path)
        merged.merge(state)
        print(
            f"  folded {path}: {len(state.condition_keys)} environment(s), "
            f"{state.record_count} records"
        )
    if arguments.save_state:
        merged.save(arguments.save_state)
        print(f"wrote merged accumulator state to {arguments.save_state}")
    library = FingerprintLibrary()
    merged.finalize_into(library, margin=arguments.margin)
    library.save(arguments.output)
    _print_fingerprints(library, arguments.output)
    return 0


def cmd_train(arguments: argparse.Namespace) -> int:
    """``repro train``: learn fingerprints from a saved dataset's pcaps.

    The ground-truth labels needed for training do not live in the pcaps (by
    design), so training re-simulates the calibration viewers' sessions from
    the dataset metadata — exactly what the researcher who generated the
    dataset can do, and what a real attacker does by recording their own
    sessions.  The viewers are rebuilt from the metadata entries, so any
    saved dataset directory works, including a single shard of a sharded
    population; ``--sharded`` instead walks a whole sharded dataset root
    shard by shard with bounded memory.
    """
    directory = Path(arguments.dataset)
    if arguments.sharded:
        return _train_sharded(arguments, directory)
    if getattr(arguments, "save_state", None):
        raise ReproError(
            "--save-state requires --sharded (accumulator state is the "
            "incremental training path's running calibration)"
        )
    train_fraction = (
        0.5 if arguments.train_fraction is None else arguments.train_fraction
    )
    if not 0.0 < train_fraction < 1.0:
        raise ReproError(
            f"--train-fraction must be in (0, 1), got {train_fraction}"
        )
    try:
        metadata = load_dataset_metadata(directory)
    except DatasetError as error:
        if (directory / SHARDS_MANIFEST_FILENAME).exists():
            raise DatasetError(
                f"{directory} is a sharded dataset root (it has a "
                f"{SHARDS_MANIFEST_FILENAME}); train on it with --sharded, or "
                "point at one of its shard directories"
            ) from error
        raise
    seed = _dataset_seed_from_metadata(metadata)
    graph = default_study_script()
    viewers = viewers_from_metadata_entries(metadata["entries"], directory)
    # Replay under the configuration that produced the dataset's pcaps;
    # datasets from before configs were recorded fall back to defaults.
    config = session_config_from_metadata(metadata) or SessionConfig()
    points = collect_dataset(
        viewers,
        dataset_seed=seed,
        graph=graph,
        config=config,
        workers=getattr(arguments, "workers", None),
    )
    dataset = IITMBandersnatchDataset(
        points=points, graph=graph, seed=seed, config=config
    )
    train_points, _ = dataset.train_test_split(test_fraction=1.0 - train_fraction)
    attack = WhiteMirrorAttack(graph=dataset.graph, band_margin=arguments.margin)
    attack.train([point.session for point in train_points])
    attack.library.save(arguments.output)
    _print_fingerprints(attack.library, arguments.output)
    return 0


def _dataset_seed_from_metadata(metadata: dict) -> int:
    """Seed the dataset was generated from (stored by ``generate-dataset``)."""
    if "seed" not in metadata:
        raise ReproError(
            "dataset metadata does not record its generation seed; "
            "re-run `repro generate-dataset` (or pass the labelled sessions "
            "to WhiteMirrorAttack.train directly)"
        )
    return int(metadata["seed"])


def _choice_rows(result: AttackResult) -> list[dict[str, object]]:
    return [
        {
            "question": event.index + 1,
            "shown_at_s": round(event.question_shown_at, 2),
            "choice": "default" if event.took_default else "NON-DEFAULT",
        }
        for event in result.inferred.events
    ]


def _print_profile(result: AttackResult) -> None:
    if result.profile is None:
        return
    trait_rows = [
        {"trait": trait, "revealed_value": label}
        for trait, label in result.profile.as_dict().items()
    ]
    print()
    print(format_table(trait_rows, "Behavioural profile implied by the recovered path"))


def cmd_attack(arguments: argparse.Namespace) -> int:
    """``repro attack``: recover choices from a pcap or a directory of pcaps."""
    target = Path(arguments.pcap)
    if target.is_dir():
        return _attack_directory(arguments, target)
    if getattr(arguments, "results_log", None):
        # Fail at the point of misuse, not in a consumer that later finds
        # the log was never written.
        raise ReproError(
            "--results-log applies to directory targets; attack the "
            "capture's directory to log its verdict"
        )
    return _attack_single(arguments, target)


def _attack_single(arguments: argparse.Namespace, target: Path) -> int:
    entry = metadata_entries_near(target.parent).get(target.name)
    task = build_pcap_task(
        target,
        entry,
        environment=arguments.environment,
        client_ip=arguments.client_ip,
        server_ip=arguments.server_ip,
    )
    library = FingerprintLibrary.load(arguments.fingerprints)
    attack = WhiteMirrorAttack(graph=default_study_script(), library=library)
    result = attack.attack_pcap(
        task.path,
        condition_key=task.condition_key,
        client_ip=task.client_ip,
        server_ip=task.server_ip,
    )
    print(format_table(_choice_rows(result), f"Recovered choices ({task.condition_key})"))
    _print_profile(result)
    return 0


def _directory_pcaps(target: Path) -> tuple[Path, list[Path]]:
    """The capture files of a directory target, in name order."""
    pcaps = sorted(target.glob("*.pcap"))
    if not pcaps and (target / "traces").is_dir():
        # A dataset directory was given; its captures live one level down.
        target = target / "traces"
        pcaps = sorted(target.glob("*.pcap"))
    if not pcaps:
        raise ReproError(f"no .pcap files found under {target}")
    return target, pcaps


def _build_attack_service(
    arguments: argparse.Namespace, log_path: str | None
) -> StreamingAttackService:
    """The one capture→verdict code path both attack modes run through."""
    library = FingerprintLibrary.load(arguments.fingerprints)
    return StreamingAttackService(
        library=library,
        log_path=log_path,
        workers=getattr(arguments, "workers", None),
        environment=arguments.environment,
        client_ip=arguments.client_ip,
        server_ip=arguments.server_ip,
    )


def _print_aggregate_line(fresh: list, total_captures: int) -> None:
    recovered_choices = sum(verdict.choice_count for verdict in fresh)
    correct_questions = sum(verdict.correct_questions for verdict in fresh)
    truth_questions = sum(verdict.question_count for verdict in fresh)
    aggregate = (
        f"aggregate: attacked {len(fresh)}/{total_captures} captures, "
        f"recovered {recovered_choices} choices"
    )
    if truth_questions:
        accuracy = correct_questions / truth_questions
        aggregate += (
            f", choice accuracy {correct_questions}/{truth_questions} "
            f"({accuracy:.1%})"
        )
    else:
        aggregate += " (no ground truth available)"
    print(aggregate)


def _attack_directory(arguments: argparse.Namespace, target: Path) -> int:
    target, pcaps = _directory_pcaps(target)
    service = _build_attack_service(
        arguments, getattr(arguments, "results_log", None)
    )
    skip_reasons: list[str] = []

    def on_skip(path: Path, reason: str) -> None:
        skip_reasons.append(reason)
        print(f"skipping {path.name}: {reason}")

    def on_verdict(verdict, result: AttackResult) -> None:
        title = f"Recovered choices — {verdict.capture} ({verdict.condition_key})"
        print(format_table(_choice_rows(result), title))
        print()

    fresh = service.process(pcaps, on_verdict=on_verdict, on_skip=on_skip)
    if not fresh and SKIP_ALREADY_ATTACKED not in skip_reasons:
        # Nothing was attacked and nothing resumed: the batch caller made an
        # error upstream; name the dominant cause with its fix.
        if any("--environment" in reason for reason in skip_reasons):
            raise ReproError(
                f"cannot determine the environment of the captures under "
                f"{target}: pass --environment or attack captures that sit "
                "next to their dataset metadata.json"
            )
        if SKIP_UNREADABLE in skip_reasons:
            raise ReproError(
                f"no readable captures under {target}: every .pcap vanished "
                "or failed to read (rotated away by its writer?)"
            )
        if all("fingerprint library" in reason for reason in skip_reasons):
            raise ReproError(
                "no attackable captures: none of the environments are in "
                "the fingerprint library"
            )
        raise ReproError(
            f"no attackable captures under {target}: every capture was "
            "skipped (see the reasons above)"
        )
    _print_aggregate_line(fresh, len(pcaps))
    if service.log_path is not None:
        print(f"wrote verdicts to {service.log_path}")
    return 0


def cmd_watch(arguments: argparse.Namespace) -> int:
    """``repro watch``: attack captures as they land in a drop directory.

    The online counterpart of ``repro attack`` over a directory, sharing its
    capture→verdict code path (:class:`StreamingAttackService`): detected
    captures are attacked as they finish landing, each verdict is durably
    appended to the results log, and a running aggregate-accuracy table
    follows every batch.  ``--once`` drains the directory and exits — over a
    quiescent directory its results log is byte-identical to ``repro attack
    --results-log`` on the same pcaps.  A restarted watch resumes from the
    log, skipping captures already attacked (by content fingerprint).
    """
    directory = Path(arguments.directory)
    if not directory.is_dir():
        # Checked before the service builds its results log (which defaults
        # into this directory), so the error names the actual mistake.
        raise ReproError(
            f"capture drop directory {directory} does not exist (create it "
            "before watching, or point at a dataset's traces/)"
        )
    log_path = arguments.results_log or str(directory / "results.jsonl")
    arguments.fingerprints = arguments.library
    service = _build_attack_service(arguments, log_path)
    resumed = len(service.verdicts)
    if resumed:
        print(f"resuming: {resumed} verdict(s) already in {log_path}")

    def on_skip(path: Path, reason: str) -> None:
        print(f"skipping {path.name}: {reason}")

    def on_verdict(verdict, result: AttackResult) -> None:
        pattern = "".join("d" if choice else "N" for choice in verdict.pattern)
        scored = (
            f", {verdict.correct_questions}/{verdict.question_count} correct"
            if verdict.truth is not None
            else ""
        )
        print(
            f"verdict: {verdict.capture} ({verdict.condition_key}) "
            f"pattern={pattern or '-'}{scored}"
        )
        print(format_table(service.aggregate_rows(), "Running aggregate accuracy"))
        print()

    try:
        service.run(
            directory,
            follow=arguments.follow,
            poll_interval=arguments.poll_interval,
            on_verdict=on_verdict,
            on_skip=on_skip,
            on_error=lambda error: print(f"batch failed, still watching: {error}"),
        )
    except KeyboardInterrupt:
        print("\nstopped")
    print(
        f"results log: {log_path} "
        f"({len(service.verdicts)} verdict(s) total)"
    )
    return 0


def cmd_inspect(arguments: argparse.Namespace) -> int:
    """``repro inspect``: summarise a capture file."""
    trace = CapturedTrace.from_pcap(
        arguments.pcap, client_ip=arguments.client_ip, server_ip="0.0.0.0"
    )
    table = trace.flow_table()
    flow_rows = []
    for flow in table.flows:
        flow_rows.append(
            {
                "flow": flow.five_tuple.key,
                "packets": flow.packet_count(),
                "uplink_bytes": flow.payload_bytes(Direction.CLIENT_TO_SERVER),
                "downlink_bytes": flow.payload_bytes(Direction.SERVER_TO_CLIENT),
            }
        )
    print(format_table(flow_rows, f"Flows in {arguments.pcap}"))
    records = extract_client_records(trace)
    lengths = [record.wire_length for record in records]
    stats = summarize(lengths)
    print()
    print(f"client TLS records on the largest flow: {len(records)}")
    print(
        f"record lengths: min={stats.minimum:.0f} median={stats.median:.0f} "
        f"p95={stats.p95:.0f} max={stats.maximum:.0f}"
    )
    return 0


def cmd_reproduce(arguments: argparse.Namespace) -> int:
    """``repro reproduce``: run the paper-reproduction experiments."""
    from repro.experiments import (
        reproduce_baseline_comparison,
        reproduce_defense_ablation,
        reproduce_figure1,
        reproduce_figure2,
        reproduce_headline,
        reproduce_table1,
    )
    from repro.experiments.conditions import figure2_condition_names

    chosen = arguments.experiment
    quick = arguments.quick
    workers = getattr(arguments, "workers", None)

    if getattr(arguments, "dataset", None) is not None:
        from repro.experiments import reproduce_headline_from_dataset

        if chosen not in ("all", "headline"):
            raise ReproError(
                "--dataset drives the headline experiment; combine it with "
                "--experiment headline (or all)"
            )
        if chosen == "all":
            # Don't let the default "--experiment all" silently narrow: say
            # what runs (the other artefacts need simulated condition grids).
            print(
                "note: --dataset drives the headline experiment only; "
                "table1/figure1/figure2/baselines/defenses need simulated runs"
            )
        result = reproduce_headline_from_dataset(
            arguments.dataset,
            training_sessions_per_environment=1 if quick else 2,
            workers=workers,
        )
        print(
            format_table(
                result.rows(),
                f"Section V — choice recovery over {arguments.dataset}",
            )
        )
        print(
            f"calibrated on {result.training_sessions} sessions, evaluated "
            f"{result.evaluated_sessions}; worst case: "
            f"{result.worst_case_accuracy:.4f} "
            f"(paper: {result.paper_worst_case_accuracy:.2f})"
        )
        return 0

    if chosen in ("all", "table1"):
        result = reproduce_table1(viewer_count=20 if quick else 100)
        print(format_table(result.rows, "Table I — IITM-Bandersnatch attributes"))
        print()
    if chosen in ("all", "figure1"):
        result = reproduce_figure1()
        print("Figure 1 — streaming process walkthrough")
        print("=" * 41)
        for kind, detail in result.protocol_events:
            print(f"  {kind:<22s} {detail}")
        print(f"matches the paper's description: {result.matches_paper_description()}")
        print()
    if chosen in ("all", "figure2"):
        result = reproduce_figure2(
            sessions_per_condition=1 if quick else 4, workers=workers
        )
        names = figure2_condition_names()
        for distribution in result.distributions:
            title = names[distribution.condition.fingerprint_key]
            print(format_table(distribution.rows(), f"Figure 2 — {title}"))
            print()
    if chosen in ("all", "headline"):
        result = reproduce_headline(
            sessions_per_condition=2 if quick else 10,
            training_sessions_per_condition=1 if quick else 2,
            workers=workers,
        )
        print(format_table(result.rows(), "Section V — choice recovery accuracy"))
        print(
            f"worst case: {result.worst_case_accuracy:.4f} "
            f"(paper: {result.paper_worst_case_accuracy:.2f})"
        )
        print()
    if chosen in ("all", "baselines"):
        result = reproduce_baseline_comparison(
            train_count=2 if quick else 6, test_count=2 if quick else 6, workers=workers
        )
        print(format_table(result.rows(), "Ablation A — baselines vs White Mirror"))
        print()
    if chosen in ("all", "defenses"):
        result = reproduce_defense_ablation(
            train_count=2 if quick else 4, test_count=2 if quick else 4, workers=workers
        )
        print(format_table(result.rows(), "Ablation B — countermeasures"))
        print()
    return 0
