"""Implementations of the CLI sub-commands."""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.core.features import extract_client_records
from repro.core.fingerprint import FingerprintLibrary
from repro.core.inference import infer_choices
from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.collection import default_study_script
from repro.dataset.format import load_dataset_metadata
from repro.dataset.iitm import IITMBandersnatchDataset
from repro.exceptions import ReproError
from repro.experiments.report import format_table
from repro.net.capture import CapturedTrace
from repro.net.packet import Direction
from repro.streaming.session import SessionConfig
from repro.utils.stats import summarize


def cmd_generate_dataset(arguments: argparse.Namespace) -> int:
    """``repro generate-dataset``: build and persist a synthetic dataset."""
    config = SessionConfig(cross_traffic_enabled=not arguments.no_cross_traffic)
    print(f"generating {arguments.viewers} viewers (seed {arguments.seed})...")
    dataset = IITMBandersnatchDataset.generate(
        viewer_count=arguments.viewers,
        seed=arguments.seed,
        config=config,
        progress=lambda done, total: print(f"  {done}/{total} sessions", end="\r"),
        workers=arguments.workers,
    )
    print()
    metadata_path = dataset.save(arguments.output, write_pcaps=not arguments.no_pcaps)
    summary = dataset.summary()
    print(f"wrote {metadata_path}")
    print(
        f"viewers={summary.viewer_count} conditions={summary.distinct_conditions} "
        f"choices={summary.total_choices} packets={summary.total_packets}"
    )
    return 0


def _split_dataset_entries(metadata: dict, train_fraction: float) -> tuple[list[dict], list[dict]]:
    entries = list(metadata["entries"])
    if not 0.0 < train_fraction < 1.0:
        raise ReproError("train fraction must be in (0, 1)")
    split_point = max(1, int(round(len(entries) * train_fraction)))
    split_point = min(split_point, len(entries) - 1) if len(entries) > 1 else 1
    return entries[:split_point], entries[split_point:]


def cmd_train(arguments: argparse.Namespace) -> int:
    """``repro train``: learn fingerprints from a saved dataset's pcaps.

    The ground-truth labels needed for training do not live in the pcaps (by
    design), so training re-simulates the calibration viewers' sessions from
    the dataset metadata — exactly what the researcher who generated the
    dataset can do, and what a real attacker does by recording their own
    sessions.
    """
    directory = Path(arguments.dataset)
    metadata = load_dataset_metadata(directory)
    dataset = IITMBandersnatchDataset.generate(
        viewer_count=int(metadata["viewer_count"]),
        seed=_dataset_seed_from_metadata(metadata),
        config=SessionConfig(cross_traffic_enabled=True),
        workers=getattr(arguments, "workers", None),
    )
    train_points, _ = dataset.train_test_split(test_fraction=1.0 - arguments.train_fraction)
    attack = WhiteMirrorAttack(graph=dataset.graph, band_margin=arguments.margin)
    attack.train([point.session for point in train_points])
    attack.library.save(arguments.output)
    rows = [
        {
            "environment": key,
            "type1_band": f"{attack.library.get(key).type1_band.low}-{attack.library.get(key).type1_band.high}",
            "type2_band": f"{attack.library.get(key).type2_band.low}-{attack.library.get(key).type2_band.high}",
            "training_records": attack.library.get(key).training_records,
        }
        for key in sorted(attack.library.condition_keys)
    ]
    print(format_table(rows, "Learned fingerprints"))
    print(f"wrote {arguments.output}")
    return 0


def _dataset_seed_from_metadata(metadata: dict) -> int:
    """Seed the dataset was generated from (stored by ``generate-dataset``)."""
    if "seed" not in metadata:
        raise ReproError(
            "dataset metadata does not record its generation seed; "
            "re-run `repro generate-dataset` (or pass the labelled sessions "
            "to WhiteMirrorAttack.train directly)"
        )
    return int(metadata["seed"])


def cmd_attack(arguments: argparse.Namespace) -> int:
    """``repro attack``: recover choices from a single pcap."""
    library = FingerprintLibrary.load(arguments.fingerprints)
    trace = CapturedTrace.from_pcap(
        arguments.pcap,
        client_ip=arguments.client_ip,
        server_ip=arguments.server_ip or "0.0.0.0",
    )
    records = extract_client_records(trace, server_ip=arguments.server_ip)
    fingerprint = library.get(arguments.environment)
    labels = fingerprint.classify(records)
    inferred = infer_choices(records, labels)
    graph = default_study_script()
    rows = []
    for event in inferred.events:
        rows.append(
            {
                "question": event.index + 1,
                "shown_at_s": round(event.question_shown_at, 2),
                "choice": "default" if event.took_default else "NON-DEFAULT",
            }
        )
    print(format_table(rows, f"Recovered choices ({arguments.environment})"))
    if inferred.choice_count:
        from repro.core.inference import reconstruct_path
        from repro.core.profiling import profile_from_path

        path = reconstruct_path(graph, inferred)
        profile = profile_from_path(path)
        trait_rows = [
            {"trait": trait, "revealed_value": label}
            for trait, label in profile.as_dict().items()
        ]
        print()
        print(format_table(trait_rows, "Behavioural profile implied by the recovered path"))
    return 0


def cmd_inspect(arguments: argparse.Namespace) -> int:
    """``repro inspect``: summarise a capture file."""
    trace = CapturedTrace.from_pcap(
        arguments.pcap, client_ip=arguments.client_ip, server_ip="0.0.0.0"
    )
    table = trace.flow_table()
    flow_rows = []
    for flow in table.flows:
        flow_rows.append(
            {
                "flow": flow.five_tuple.key,
                "packets": flow.packet_count(),
                "uplink_bytes": flow.payload_bytes(Direction.CLIENT_TO_SERVER),
                "downlink_bytes": flow.payload_bytes(Direction.SERVER_TO_CLIENT),
            }
        )
    print(format_table(flow_rows, f"Flows in {arguments.pcap}"))
    records = extract_client_records(trace)
    lengths = [record.wire_length for record in records]
    stats = summarize(lengths)
    print()
    print(f"client TLS records on the largest flow: {len(records)}")
    print(
        f"record lengths: min={stats.minimum:.0f} median={stats.median:.0f} "
        f"p95={stats.p95:.0f} max={stats.maximum:.0f}"
    )
    return 0


def cmd_reproduce(arguments: argparse.Namespace) -> int:
    """``repro reproduce``: run the paper-reproduction experiments."""
    from repro.experiments import (
        reproduce_baseline_comparison,
        reproduce_defense_ablation,
        reproduce_figure1,
        reproduce_figure2,
        reproduce_headline,
        reproduce_table1,
    )
    from repro.experiments.conditions import figure2_condition_names

    chosen = arguments.experiment
    quick = arguments.quick
    workers = getattr(arguments, "workers", None)

    if chosen in ("all", "table1"):
        result = reproduce_table1(viewer_count=20 if quick else 100)
        print(format_table(result.rows, "Table I — IITM-Bandersnatch attributes"))
        print()
    if chosen in ("all", "figure1"):
        result = reproduce_figure1()
        print("Figure 1 — streaming process walkthrough")
        print("=" * 41)
        for kind, detail in result.protocol_events:
            print(f"  {kind:<22s} {detail}")
        print(f"matches the paper's description: {result.matches_paper_description()}")
        print()
    if chosen in ("all", "figure2"):
        result = reproduce_figure2(
            sessions_per_condition=1 if quick else 4, workers=workers
        )
        names = figure2_condition_names()
        for distribution in result.distributions:
            title = names[distribution.condition.fingerprint_key]
            print(format_table(distribution.rows(), f"Figure 2 — {title}"))
            print()
    if chosen in ("all", "headline"):
        result = reproduce_headline(
            sessions_per_condition=2 if quick else 10,
            training_sessions_per_condition=1 if quick else 2,
            workers=workers,
        )
        print(format_table(result.rows(), "Section V — choice recovery accuracy"))
        print(
            f"worst case: {result.worst_case_accuracy:.4f} "
            f"(paper: {result.paper_worst_case_accuracy:.2f})"
        )
        print()
    if chosen in ("all", "baselines"):
        result = reproduce_baseline_comparison(
            train_count=2 if quick else 6, test_count=2 if quick else 6, workers=workers
        )
        print(format_table(result.rows(), "Ablation A — baselines vs White Mirror"))
        print()
    if chosen in ("all", "defenses"):
        result = reproduce_defense_ablation(
            train_count=2 if quick else 4, test_count=2 if quick else 4, workers=workers
        )
        print(format_table(result.rows(), "Ablation B — countermeasures"))
        print()
    return 0
