"""Command-line interface.

``python -m repro <command>`` exposes the library's main workflows without
writing any Python:

* ``generate-dataset`` — build a synthetic IITM-Bandersnatch dataset
  (metadata + per-viewer pcaps) under a directory;
* ``train`` — learn record-length fingerprints from the labelled half of a
  saved dataset and write them to a JSON library file;
* ``attack`` — run the White Mirror attack on a pcap file (or on every victim
  of a saved dataset) using a fingerprint library;
* ``reproduce`` — run the paper-reproduction experiments (Table I, Figures 1
  and 2, the Section V headline, and the ablations) and print the report;
* ``inspect`` — summarise a pcap: flows, volumes, and client record lengths.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
