"""Argument parsing and dispatch for the ``python -m repro`` command."""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro import __version__
from repro.cli import commands


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "White Mirror reproduction: simulate interactive-streaming traffic, "
            "build the IITM-Bandersnatch-style dataset, and run the record-length "
            "traffic-analysis attack."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_workers_argument(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--workers",
            type=int,
            default=None,
            help=(
                "engine worker processes: omit or 1 for serial, 0 for all "
                "cores, N for a pool of N (results are identical either way)"
            ),
        )

    generate = subparsers.add_parser(
        "generate-dataset",
        help="generate a synthetic dataset (metadata.json + per-viewer pcaps)",
    )
    generate.add_argument("output", help="directory to write the dataset into")
    generate.add_argument("--viewers", type=int, default=20, help="number of viewers (default 20)")
    generate.add_argument("--seed", type=int, default=0, help="dataset seed (default 0)")
    generate.add_argument(
        "--no-pcaps", action="store_true", help="write only metadata, skip the pcap files"
    )
    generate.add_argument(
        "--no-cross-traffic", action="store_true", help="disable background cross traffic"
    )
    generate.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "split the population into N on-disk shards (shard-000/, ...), "
            "generated one at a time with bounded memory; omit for a single "
            "dataset directory"
        ),
    )
    generate.add_argument(
        "--resume",
        action="store_true",
        help=(
            "pick an interrupted sharded run back up: skip shards that "
            "finalised cleanly, quarantine partial ones and regenerate only "
            "the missing work (run with the same flags as the interrupted "
            "run and the result is byte-identical to an uninterrupted one); "
            "requires --shards"
        ),
    )
    add_workers_argument(generate)
    generate.set_defaults(handler=commands.cmd_generate_dataset)

    train = subparsers.add_parser(
        "train",
        help="learn record-length fingerprints from a saved dataset",
    )
    train.add_argument("dataset", help="dataset directory written by generate-dataset")
    train.add_argument("output", help="path of the fingerprint library JSON to write")
    train.add_argument(
        "--train-fraction",
        type=float,
        default=None,
        help=(
            "fraction of viewers used for calibration (default 0.5; "
            "incompatible with --sharded, which uses every viewer)"
        ),
    )
    train.add_argument(
        "--sharded",
        action="store_true",
        help=(
            "treat the dataset as a sharded root (shards.json + shard-*/) "
            "and fold its shards into the fingerprints one at a time with "
            "bounded memory"
        ),
    )
    train.add_argument("--margin", type=int, default=8, help="band widening margin in bytes")
    add_workers_argument(train)
    train.set_defaults(handler=commands.cmd_train)

    attack = subparsers.add_parser(
        "attack",
        help="run the attack on a pcap (or a directory of pcaps) using a fingerprint library",
    )
    attack.add_argument(
        "pcap",
        help=(
            "capture file of the victim session, or a directory of .pcap "
            "files (e.g. a dataset's traces/ directory) to attack in batch"
        ),
    )
    attack.add_argument("fingerprints", help="fingerprint library JSON written by 'train'")
    attack.add_argument(
        "--environment",
        default=None,
        help=(
            "victim environment key, e.g. linux/firefox; optional when the "
            "captures sit next to their dataset metadata.json, which records "
            "each viewer's environment"
        ),
    )
    attack.add_argument(
        "--client-ip",
        default=None,
        help=f"viewer's IP in the capture (default: from metadata, else {commands.DEFAULT_CLIENT_IP})",
    )
    attack.add_argument(
        "--server-ip",
        default=None,
        help="streaming server IP (default: from metadata, else the largest flow)",
    )
    add_workers_argument(attack)
    attack.set_defaults(handler=commands.cmd_attack)

    reproduce = subparsers.add_parser(
        "reproduce",
        help="run the paper-reproduction experiments and print the report",
    )
    reproduce.add_argument(
        "--experiment",
        choices=["all", "table1", "figure1", "figure2", "headline", "baselines", "defenses"],
        default="all",
        help="which artefact to reproduce (default: all)",
    )
    reproduce.add_argument(
        "--quick",
        action="store_true",
        help="use reduced session counts for a fast smoke run",
    )
    reproduce.add_argument(
        "--dataset",
        default=None,
        help=(
            "run the headline experiment over a sharded dataset root written "
            "by `generate-dataset --shards N` (incremental training + "
            "streaming evaluation) instead of simulating the condition grid"
        ),
    )
    add_workers_argument(reproduce)
    reproduce.set_defaults(handler=commands.cmd_reproduce)

    inspect = subparsers.add_parser(
        "inspect",
        help="summarise a pcap: flows, volumes and client record lengths",
    )
    inspect.add_argument("pcap", help="capture file to inspect")
    inspect.add_argument("--client-ip", default="192.168.1.23", help="viewer's IP in the capture")
    inspect.set_defaults(handler=commands.cmd_inspect)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handler: Callable[[argparse.Namespace], int] = arguments.handler
    try:
        return handler(arguments)
    except Exception as error:  # noqa: BLE001 - the CLI boundary reports, not raises
        print(f"error: {error}", file=sys.stderr)
        return 1
