"""Argument parsing and dispatch for the ``python -m repro`` command."""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro import __version__
from repro.cli import commands


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "White Mirror reproduction: simulate interactive-streaming traffic, "
            "build the IITM-Bandersnatch-style dataset, and run the record-length "
            "traffic-analysis attack."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "architecture:\n"
            "  every sub-command is a thin adapter over the repro.jobs layer:\n"
            "  argv builds a typed, serialisable job spec (repro.jobs.specs),\n"
            "  a JobRunner executes it against a workspace and names each\n"
            "  durable output as a content-fingerprinted artifact, and the\n"
            "  run narrates through a structured event bus instead of\n"
            "  printing.  --log-format picks the renderer: the default\n"
            "  `console` reproduces the classic terminal output byte for\n"
            "  byte, `jsonl` emits one {\"event\": ...} JSON line per event\n"
            "  for pipelines and services.  written artifacts (datasets,\n"
            "  libraries, results logs) are byte-identical either way\n"
            "\n"
            "distributed generation:\n"
            "  split one generation plan across machines, then stitch:\n"
            "    machine A: repro generate-dataset ROOT --viewers 1000 "
            "--shards 10 --only-shards 0-4 --seed 7\n"
            "    machine B: repro generate-dataset ROOT --viewers 1000 "
            "--shards 10 --only-shards 5-9 --seed 7\n"
            "    rsync both ROOTs under one directory, then:  repro stitch ROOT\n"
            "  one machine, all cores: add --shard-workers N (whole shards in "
            "parallel,\n"
            "  output byte-identical to the serial run)\n"
            "\n"
            "distributed calibration:\n"
            "    per machine: repro train ROOT lib.json --sharded "
            "--save-state state.json\n"
            "    merge:       repro merge-fingerprints state-a.json "
            "state-b.json -o lib.json\n"
            "  the merged library is byte-identical to single-machine "
            "training over\n"
            "  the stitched dataset (see examples/generate_dataset.py "
            "stitch-demo)\n"
            "\n"
            "fleet coordination:\n"
            "  the distributed flows above, as a service (no rsync, no "
            "manual merge):\n"
            "    coordinator: repro serve ROOT lib.json --viewers 1000 "
            "--shards 10 --seed 7\n"
            "    each worker: repro work http://COORDINATOR:PORT\n"
            "  the coordinator leases one shard-sized unit at a time over "
            "a versioned\n"
            "  JSON wire API (/v1/plan /v1/lease /v1/complete /v1/events "
            "/v1/status);\n"
            "  workers run the leased job specs in a scratch workspace, "
            "verify the\n"
            "  artifacts by content fingerprint and upload them; the "
            "coordinator\n"
            "  verifies the fingerprints again, re-leases units whose "
            "workers go\n"
            "  silent past --lease-ttl (kill -9 a worker and its unit is "
            "simply\n"
            "  redone), folds the accumulator states in a hierarchical "
            "merge tree\n"
            "  and atomically publishes the stitched manifest + merged "
            "library —\n"
            "  byte-identical to one machine running the whole plan "
            "(see\n"
            "  examples/fleet_coordinator.py)\n"
            "\n"
            "attack-vs-defense arena:\n"
            "  sweep defense x classifier x condition cells and publish the\n"
            "  Pareto frontier of (overhead, leakage):\n"
            "    repro arena OUT --defenses pad-to-multiple:block_bytes=64 "
            "\\\n"
            "      pad-to-constant:target_bytes=4096 --classifiers "
            "interval:margin=8 knn:k=7\n"
            "  sweep entries are declarative component specs "
            "(name[:key=value,...])\n"
            "  resolved through the defense/classifier registries — a typo "
            "fails at\n"
            "  parse time naming the bad entry.  each cell retrains its "
            "classifier on\n"
            "  the defended traffic (an adaptive attacker) and scores "
            "overhead and\n"
            "  leakage; cells land atomically under OUT/cells/ and the "
            "report at\n"
            "  OUT/report.json.  --shard-workers N scores cells in a "
            "process pool,\n"
            "  --resume reuses cells whose files match the grid (kill -9 "
            "mid-sweep and\n"
            "  re-run: only missing cells are re-scored), and `repro serve "
            "--arena` +\n"
            "  `repro work` lease cells across machines — the published "
            "report is\n"
            "  byte-identical in every mode\n"
            "\n"
            "live capture ingest:\n"
            "  tail a pcap drop directory and attack captures as they "
            "finish landing:\n"
            "    repro watch DROP_DIR --library lib.json "
            "[--results-log results.jsonl]\n"
            "  --once drains the directory and exits; its results log is "
            "byte-identical\n"
            "  to `repro attack DROP_DIR lib.json --results-log ...` over "
            "the same pcaps.\n"
            "  verdicts append durably (one JSON line per capture); a "
            "restarted watch\n"
            "  resumes from the log, skipping captures already attacked "
            "(by content\n"
            "  fingerprint), so kill-and-restart never duplicates or "
            "drops a verdict.\n"
            "  repeat --source to watch a fleet of capture directories "
            "through one\n"
            "  bounded queue (--queue-high/--queue-low watermarks park "
            "overflow per\n"
            "  source), with per-source verdict attribution, hot library "
            "reload\n"
            "  (--reload-library, swapped between captures) and a "
            "--metrics-port\n"
            "  /metrics JSON endpoint; a fleet --once log is "
            "byte-identical to the\n"
            "  single-source runs concatenated in sorted source order\n"
            "\n"
            "performance:\n"
            "  generated shards carry a columnar sidecar "
            "(traces/records.npz): the\n"
            "  client-record columns of every capture — timestamps, wire "
            "lengths,\n"
            "  content types, ground-truth label codes — packed at "
            "generation time.\n"
            "  `repro attack` and `repro train --sharded` stream it instead "
            "of\n"
            "  re-parsing (or re-simulating) each pcap, with byte-identical "
            "output;\n"
            "  the pcaps stay the source of truth, and a missing or stale "
            "sidecar\n"
            "  (pcap resized or newer than it) falls back to parsing "
            "transparently.\n"
            "  pcap reading and record classification are vectorized; CI's\n"
            "  perf-ratchet job replays benchmarks/bench_hotpath.py,\n"
            "  benchmarks/bench_ingest_latency.py and "
            "benchmarks/bench_arena_sweep.py\n"
            "  against the floors in benchmarks/BENCH_baselines.json and "
            "fails on regression.  "
            "after a\n"
            "  legitimate speedup, re-baseline with one line and commit the "
            "result:\n"
            "    python benchmarks/check_perf_ratchet.py --update "
            "BENCH_results.json\n"
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--log-format",
        choices=["console", "jsonl"],
        default="console",
        help=(
            "how to narrate the run: 'console' (default) prints the classic "
            "human-readable output; 'jsonl' emits one JSON line per "
            "structured job event for machine consumers"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_log_format_argument(subparser: argparse.ArgumentParser) -> None:
        # Registered per sub-command too (with SUPPRESS, so a subparser
        # default never clobbers the top-level value) purely so the flag
        # may also appear after the sub-command name.
        subparser.add_argument(
            "--log-format",
            choices=["console", "jsonl"],
            default=argparse.SUPPRESS,
            help=argparse.SUPPRESS,
        )

    def add_workers_argument(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--workers",
            type=int,
            default=None,
            help=(
                "engine worker processes: omit or 1 for serial, 0 for all "
                "cores, N for a pool of N (results are identical either way)"
            ),
        )

    generate = subparsers.add_parser(
        "generate-dataset",
        help="generate a synthetic dataset (metadata.json + per-viewer pcaps)",
    )
    generate.add_argument("output", help="directory to write the dataset into")
    generate.add_argument("--viewers", type=int, default=20, help="number of viewers (default 20)")
    generate.add_argument("--seed", type=int, default=0, help="dataset seed (default 0)")
    generate.add_argument(
        "--no-pcaps", action="store_true", help="write only metadata, skip the pcap files"
    )
    generate.add_argument(
        "--no-cross-traffic", action="store_true", help="disable background cross traffic"
    )
    generate.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "split the population into N on-disk shards (shard-000/, ...), "
            "generated one at a time with bounded memory; omit for a single "
            "dataset directory"
        ),
    )
    generate.add_argument(
        "--resume",
        action="store_true",
        help=(
            "pick an interrupted sharded run back up: skip shards that "
            "finalised cleanly, quarantine partial ones and regenerate only "
            "the missing work (run with the same flags as the interrupted "
            "run and the result is byte-identical to an uninterrupted one); "
            "requires --shards"
        ),
    )
    generate.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        help=(
            "generate whole shards in a process pool of N (0 for all cores), "
            "multiplying the per-session --workers fan-out; output is "
            "byte-identical to the serial run; requires --shards"
        ),
    )
    generate.add_argument(
        "--only-shards",
        default=None,
        metavar="SELECTION",
        help=(
            "generate only the named shards of the plan, e.g. '0,3-5' "
            "(inclusive ranges): several machines run the same plan with "
            "disjoint selections, rsync the shard directories under one root "
            "and publish the merged manifest with `repro stitch`; requires "
            "--shards"
        ),
    )
    add_workers_argument(generate)
    add_log_format_argument(generate)
    generate.set_defaults(handler=commands.cmd_generate_dataset)

    stitch = subparsers.add_parser(
        "stitch",
        help=(
            "verify shard directories rsync'd together from --only-shards "
            "runs and publish the merged shards.json manifest"
        ),
    )
    stitch.add_argument(
        "root",
        help=(
            "directory holding the shard-NNN directories of one generation "
            "plan (the union of every machine's --only-shards output)"
        ),
    )
    add_log_format_argument(stitch)
    stitch.set_defaults(handler=commands.cmd_stitch)

    train = subparsers.add_parser(
        "train",
        help="learn record-length fingerprints from a saved dataset",
    )
    train.add_argument("dataset", help="dataset directory written by generate-dataset")
    train.add_argument("output", help="path of the fingerprint library JSON to write")
    train.add_argument(
        "--train-fraction",
        type=float,
        default=None,
        help=(
            "fraction of viewers used for calibration (default 0.5; "
            "incompatible with --sharded, which uses every viewer)"
        ),
    )
    train.add_argument(
        "--sharded",
        action="store_true",
        help=(
            "treat the dataset as a sharded root (shards.json + shard-*/) "
            "and fold its shards into the fingerprints one at a time with "
            "bounded memory"
        ),
    )
    train.add_argument("--margin", type=int, default=8, help="band widening margin in bytes")
    train.add_argument(
        "--save-state",
        default=None,
        metavar="PATH",
        help=(
            "also write the raw fingerprint-accumulator state (requires "
            "--sharded): one machine's running calibration, combined across "
            "machines with `repro merge-fingerprints`"
        ),
    )
    add_workers_argument(train)
    add_log_format_argument(train)
    train.set_defaults(handler=commands.cmd_train)

    merge = subparsers.add_parser(
        "merge-fingerprints",
        help=(
            "merge per-machine fingerprint-accumulator states (train "
            "--sharded --save-state) into one fingerprint library"
        ),
    )
    merge.add_argument(
        "states",
        nargs="+",
        help="accumulator state JSON files, one per machine",
    )
    merge.add_argument(
        "-o",
        "--output",
        required=True,
        help="path of the merged fingerprint library JSON to write",
    )
    merge.add_argument(
        "--margin",
        type=int,
        default=8,
        help="band widening margin in bytes (match the train run's value)",
    )
    merge.add_argument(
        "--save-state",
        default=None,
        metavar="PATH",
        help=(
            "also write the merged accumulator state, for hierarchical "
            "merges (merge the merges)"
        ),
    )
    add_log_format_argument(merge)
    merge.set_defaults(handler=commands.cmd_merge_fingerprints)

    attack = subparsers.add_parser(
        "attack",
        help="run the attack on a pcap (or a directory of pcaps) using a fingerprint library",
    )
    attack.add_argument(
        "pcap",
        help=(
            "capture file of the victim session, or a directory of .pcap "
            "files (e.g. a dataset's traces/ directory) to attack in batch"
        ),
    )
    attack.add_argument("fingerprints", help="fingerprint library JSON written by 'train'")
    attack.add_argument(
        "--environment",
        default=None,
        help=(
            "victim environment key, e.g. linux/firefox; optional when the "
            "captures sit next to their dataset metadata.json, which records "
            "each viewer's environment"
        ),
    )
    attack.add_argument(
        "--client-ip",
        default=None,
        help=f"viewer's IP in the capture (default: from metadata, else {commands.DEFAULT_CLIENT_IP})",
    )
    attack.add_argument(
        "--server-ip",
        default=None,
        help="streaming server IP (default: from metadata, else the largest flow)",
    )
    attack.add_argument(
        "--results-log",
        default=None,
        metavar="PATH",
        help=(
            "append one durable JSON verdict line per attacked capture "
            "(directory targets only); byte-identical to the log `repro "
            "watch --once` writes over the same pcaps, and re-running skips "
            "captures already in the log"
        ),
    )
    add_workers_argument(attack)
    add_log_format_argument(attack)
    attack.set_defaults(handler=commands.cmd_attack)

    watch = subparsers.add_parser(
        "watch",
        help=(
            "tail a pcap drop directory and attack captures as they finish "
            "landing (the online attack front end)"
        ),
    )
    watch.add_argument(
        "directory",
        nargs="?",
        default="",
        help=(
            "capture drop directory to watch; a capture counts as finished "
            "once its .inprogress marker is renamed away, or once its size "
            "and mtime hold still across two polls and a quiet window; "
            "omit it and repeat --source to watch a fleet instead"
        ),
    )
    watch.add_argument(
        "--library",
        required=True,
        help="fingerprint library JSON written by 'train'",
    )
    watch.add_argument(
        "--source",
        action="append",
        default=None,
        metavar="DIR",
        help=(
            "fleet mode: a capture source directory (repeatable, replaces "
            "the positional directory); every verdict is stamped with the "
            "source that produced it, and sources are processed in sorted "
            "label order so --once output is reproducible"
        ),
    )
    watch.add_argument(
        "--recursive",
        action="store_true",
        default=False,
        help=(
            "fleet mode: watch each --source directory recursively, keying "
            "captures by their relative path"
        ),
    )
    watch.add_argument(
        "--queue-high",
        type=int,
        default=commands.DEFAULT_QUEUE_HIGH,
        metavar="N",
        help=(
            "fleet mode: high watermark of the bounded ingest queue — at "
            f"most N captures pending at once (default "
            f"{commands.DEFAULT_QUEUE_HIGH}); overflow parks per source "
            "and a queue-saturated event is emitted"
        ),
    )
    watch.add_argument(
        "--queue-low",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fleet mode: low watermark — parked captures are promoted once "
            "the queue drains to N (default: half of --queue-high)"
        ),
    )
    watch.add_argument(
        "--reload-library",
        default=None,
        metavar="PATH",
        help=(
            "fleet mode: hot-reload staging path for the fingerprint "
            "library; when its content changes the new library is swapped "
            "in between captures (never mid-attack), and a corrupt stage "
            "is reported and ignored"
        ),
    )
    watch.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "fleet mode: serve GET /metrics JSON (arrival-to-verdict "
            "latency percentiles, queue depth, per-source accuracy) on "
            "127.0.0.1:PORT; 0 picks a free port"
        ),
    )
    mode = watch.add_mutually_exclusive_group()
    mode.add_argument(
        "--follow",
        action="store_true",
        default=True,
        help="keep polling for new captures until interrupted (default)",
    )
    mode.add_argument(
        "--once",
        dest="follow",
        action="store_false",
        help=(
            "drain the captures already in the (quiescent) directory, then "
            "exit; the results log is byte-identical to batch `repro attack "
            "--results-log` over the same pcaps"
        ),
    )
    watch.add_argument(
        "--results-log",
        default=None,
        metavar="PATH",
        help=(
            "append-only JSONL verdict log (default: results.jsonl inside "
            "the watched directory); restarts resume from it"
        ),
    )
    watch.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="seconds between directory polls in follow mode (default 0.5)",
    )
    watch.add_argument(
        "--environment",
        default=None,
        help=(
            "victim environment key applied to every capture; optional when "
            "captures sit next to their dataset metadata.json"
        ),
    )
    watch.add_argument(
        "--client-ip",
        default=None,
        help=f"viewer's IP in the captures (default: from metadata, else {commands.DEFAULT_CLIENT_IP})",
    )
    watch.add_argument(
        "--server-ip",
        default=None,
        help="streaming server IP (default: from metadata, else the largest flow)",
    )
    add_workers_argument(watch)
    add_log_format_argument(watch)
    watch.set_defaults(handler=commands.cmd_watch)

    arena = subparsers.add_parser(
        "arena",
        help=(
            "sweep defense × classifier × condition cells (adaptive "
            "attacker) and publish the overhead/leakage Pareto report"
        ),
    )
    arena.add_argument(
        "output",
        help="directory cell results land in (cells/ + report.json)",
    )
    arena.add_argument(
        "--report",
        default="",
        metavar="PATH",
        help="where to write the report (default: <output>/report.json)",
    )
    arena.add_argument(
        "--defenses",
        nargs="+",
        default=[],
        metavar="SPEC",
        help=(
            "defense sweep entries, name[:key=value,...] resolved through "
            "the defense registry (default: the standard defense suite); "
            "the undefended baseline is always added"
        ),
    )
    arena.add_argument(
        "--classifiers",
        nargs="+",
        default=[],
        metavar="SPEC",
        help=(
            "classifier sweep entries, name[:key=value,...] resolved "
            "through the classifier registry (default: interval:margin=8 "
            "knn:k=7)"
        ),
    )
    arena.add_argument(
        "--conditions",
        nargs="+",
        default=[],
        metavar="KEY",
        help=(
            "operational conditions to sweep, os/platform/browser/"
            "connection/traffic (default: linux/desktop/firefox/wired/noon)"
        ),
    )
    arena.add_argument(
        "--train-count",
        type=int,
        default=2,
        help="training sessions per cell (default 2)",
    )
    arena.add_argument(
        "--test-count",
        type=int,
        default=2,
        help="attacked sessions per cell (default 2)",
    )
    arena.add_argument(
        "--seed", type=int, default=0, help="sweep seed (default 0)"
    )
    arena.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        help=(
            "score cells in a process pool of N; the report is "
            "byte-identical to the serial run"
        ),
    )
    arena.add_argument(
        "--resume",
        action="store_true",
        help=(
            "reuse cell files that match the current grid and re-score "
            "only the missing or mismatched cells"
        ),
    )
    add_log_format_argument(arena)
    arena.set_defaults(handler=commands.cmd_arena)

    serve = subparsers.add_parser(
        "serve",
        help=(
            "coordinate a sharded generate+train plan across pull workers "
            "(repro work) and publish the stitched dataset + merged library"
        ),
    )
    serve.add_argument("output", help="directory to publish the dataset into")
    serve.add_argument(
        "library", help="path of the merged fingerprint library JSON to write"
    )
    serve.add_argument(
        "--viewers", type=int, default=20, help="number of viewers (default 20)"
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=2,
        help=(
            "shards in the plan; each shard is one leasable work unit "
            "(default 2)"
        ),
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="dataset seed (default 0)"
    )
    serve.add_argument(
        "--margin",
        type=int,
        default=8,
        help="band widening margin in bytes for the merged library",
    )
    serve.add_argument(
        "--no-pcaps",
        action="store_true",
        help="workers write only metadata, skipping the pcap files",
    )
    serve.add_argument(
        "--no-cross-traffic",
        action="store_true",
        help="disable background cross traffic in generated sessions",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="address to bind the wire API on (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default 0: pick a free port and announce it)",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=60.0,
        help=(
            "seconds before a silent worker's unit returns to the pool "
            "(default 60)"
        ),
    )
    serve.add_argument(
        "--arena",
        action="store_true",
        help=(
            "serve an arena sweep instead of a generate+train plan: each "
            "grid cell is one leasable unit, LIBRARY is the arena report "
            "path, and --defenses/--classifiers/--conditions/--train-count/"
            "--test-count describe the grid (--viewers/--shards/--margin "
            "are ignored)"
        ),
    )
    serve.add_argument(
        "--defenses",
        nargs="+",
        default=[],
        metavar="SPEC",
        help="arena defense sweep entries (requires --arena)",
    )
    serve.add_argument(
        "--classifiers",
        nargs="+",
        default=[],
        metavar="SPEC",
        help="arena classifier sweep entries (requires --arena)",
    )
    serve.add_argument(
        "--conditions",
        nargs="+",
        default=[],
        metavar="KEY",
        help="arena conditions to sweep (requires --arena)",
    )
    serve.add_argument(
        "--train-count",
        type=int,
        default=2,
        help="arena training sessions per cell (default 2)",
    )
    serve.add_argument(
        "--test-count",
        type=int,
        default=2,
        help="arena attacked sessions per cell (default 2)",
    )
    add_log_format_argument(serve)
    serve.set_defaults(handler=commands.cmd_serve)

    work = subparsers.add_parser(
        "work",
        help=(
            "pull leased work units from a `repro serve` coordinator, run "
            "them and upload the fingerprint-verified results"
        ),
    )
    work.add_argument(
        "url", help="coordinator base URL, e.g. http://127.0.0.1:8400"
    )
    work.add_argument(
        "--worker-id",
        default=None,
        help="name this worker reports (default: worker-<pid>)",
    )
    work.add_argument(
        "--scratch",
        default=None,
        metavar="DIR",
        help=(
            "directory for per-lease scratch workspaces (default: a fresh "
            "temporary directory)"
        ),
    )
    work.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="seconds between lease polls while idle (default 0.5)",
    )
    work.add_argument(
        "--max-units",
        type=int,
        default=None,
        help="stop after completing N units (default: work until done)",
    )
    add_log_format_argument(work)
    work.set_defaults(handler=commands.cmd_work)

    reproduce = subparsers.add_parser(
        "reproduce",
        help="run the paper-reproduction experiments and print the report",
    )
    reproduce.add_argument(
        "--experiment",
        choices=["all", "table1", "figure1", "figure2", "headline", "baselines", "defenses"],
        default="all",
        help="which artefact to reproduce (default: all)",
    )
    reproduce.add_argument(
        "--quick",
        action="store_true",
        help="use reduced session counts for a fast smoke run",
    )
    reproduce.add_argument(
        "--dataset",
        default=None,
        help=(
            "run the headline experiment over a sharded dataset root written "
            "by `generate-dataset --shards N` (incremental training + "
            "streaming evaluation) instead of simulating the condition grid"
        ),
    )
    add_workers_argument(reproduce)
    add_log_format_argument(reproduce)
    reproduce.set_defaults(handler=commands.cmd_reproduce)

    inspect = subparsers.add_parser(
        "inspect",
        help="summarise a pcap: flows, volumes and client record lengths",
    )
    inspect.add_argument("pcap", help="capture file to inspect")
    inspect.add_argument("--client-ip", default="192.168.1.23", help="viewer's IP in the capture")
    add_log_format_argument(inspect)
    inspect.set_defaults(handler=commands.cmd_inspect)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handler: Callable[[argparse.Namespace], int] = arguments.handler
    try:
        return handler(arguments)
    except Exception as error:  # noqa: BLE001 - the CLI boundary reports, not raises
        print(f"error: {error}", file=sys.stderr)
        return 1
