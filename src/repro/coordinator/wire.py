"""The versioned JSON wire protocol between coordinator and workers.

Every exchange on the jobs wire API is a JSON object stamped with the wire
version (``"wire": 1``) under a version-prefixed path (``/v1/...``); job
specs travel in their ``to_dict`` form and are rebuilt with
:func:`repro.jobs.specs.job_from_dict`, and event feeds travel as the
:class:`~repro.jobs.renderers.JsonlRenderer` lines they already are (each
stamped with the *event* schema version).  Error responses always name the
failing field — ``{"error": {"message": ..., "field": ...}}`` — exactly as
``job_from_dict`` names a bad spec field, so a worker three machines away
debugs a rejected request the same way a local caller debugs a bad spec.

This module owns the envelope rules (stamping, parsing, error payloads);
the HTTP plumbing lives in :mod:`repro.coordinator.service` and
:mod:`repro.coordinator.worker`.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.exceptions import CoordinatorError

#: Version stamped into every wire request and response body.  Bump on any
#: incompatible envelope change; both ends refuse other versions by name.
WIRE_VERSION = 1

#: Path prefix every endpoint lives under; bump alongside WIRE_VERSION.
API_PREFIX = "/v1"

#: The five endpoints of the jobs wire API.
PLAN_PATH = f"{API_PREFIX}/plan"
LEASE_PATH = f"{API_PREFIX}/lease"
COMPLETE_PATH = f"{API_PREFIX}/complete"
EVENTS_PATH = f"{API_PREFIX}/events"
STATUS_PATH = f"{API_PREFIX}/status"


def dump_body(payload: Mapping[str, Any]) -> bytes:
    """Serialise one wire body: version-stamped, sorted keys, UTF-8."""
    return json.dumps(
        {"wire": WIRE_VERSION, **payload}, sort_keys=True
    ).encode("utf-8")


def parse_body(raw: bytes) -> dict[str, Any]:
    """Parse and validate one wire body; names the failing field loudly."""
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CoordinatorError(
            f"wire body is not valid JSON: {error}", field="body"
        ) from error
    if not isinstance(body, dict):
        raise CoordinatorError(
            f"wire body must be a JSON object, got {type(body).__name__}",
            field="body",
        )
    version = body.get("wire")
    if version != WIRE_VERSION:
        raise CoordinatorError(
            f"unsupported wire version {version!r} "
            f"(this build speaks wire version {WIRE_VERSION})",
            field="wire",
        )
    return body


def require_field(body: Mapping[str, Any], name: str, kind: type) -> Any:
    """One required, typed field of a wire body; absence names the field."""
    value = body.get(name)
    if not isinstance(value, kind) or (kind is str and not value):
        expected = kind.__name__
        raise CoordinatorError(
            f"wire request needs a non-empty {expected!r} field {name!r}, "
            f"got {value!r}",
            field=name,
        )
    return value


def error_body(error: CoordinatorError) -> bytes:
    """The wire form of a failed request: message plus failing field."""
    return dump_body(
        {"error": {"message": str(error), "field": error.field or "request"}}
    )
