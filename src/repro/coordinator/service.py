"""The coordinator service: ``repro serve`` behind the jobs wire API.

One :class:`Coordinator` owns one :class:`~repro.coordinator.plan.FleetPlan`
and drives it to publication:

* ``GET /v1/plan`` and ``GET /v1/status`` describe the plan and the
  ledger's current unit dispositions;
* ``POST /v1/lease`` hands the next pending unit — a pair of ordinary
  :mod:`repro.jobs` specs in their wire form — to a pulling worker, after
  sweeping expired leases back into the pool;
* ``POST /v1/complete`` accepts a worker's upload (shard directory as a
  tar, accumulator state as a file, both base64 in the JSON body), verifies
  every blob against its claimed sha256 content fingerprint *before* any of
  it reaches the dataset root, and marks the unit complete;
* ``POST /v1/events`` ingests a worker's JSONL event feed and re-emits it
  on the coordinator's own bus, so fleet progress renders through the
  stock renderers exactly like a local run.

When the last unit completes, the serve loop folds the collected
accumulator states in a hierarchical merge tree, validates and publishes
the stitched manifest (:func:`~repro.dataset.shards.stitch_sharded_dataset`
— the same closing step as the manual rsync flow), and writes the merged
library atomically.  The published root and library are byte-identical to
a single-machine ``generate-dataset --shards`` + ``train --sharded`` run.

All coordinator-local bookkeeping (ledger, collected states, staged
uploads) lives in a ``<root>.coordinator`` sibling directory, so the
dataset root itself stays byte-comparable with ``diff -r``.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import io
import json
import os
import tarfile
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.coordinator import wire
from repro.coordinator.ledger import LeaseLedger, WorkUnit
from repro.coordinator.merge import fold_states_tree
from repro.coordinator.plan import (
    UPLOAD_DIRECTORY,
    UPLOAD_FILE,
    ArenaPlan,
    FleetPlan,
)
from repro.core.fingerprint import FingerprintAccumulator, FingerprintLibrary
from repro.dataset.shards import stitch_sharded_dataset
from repro.exceptions import CoordinatorError, JobError
from repro.jobs import events as ev
from repro.jobs.artifacts import fingerprint_path
from repro.jobs.events import EVENT_SCHEMA_VERSION, EventBus


class Coordinator:
    """Serves one fleet plan until its artifacts are published.

    ``clock`` is injectable for deterministic lease-expiry tests; ``linger``
    is how long the server stays up after publication so workers polling
    for their next lease observe ``done`` instead of a vanished socket
    (idle workers also tolerate the vanished socket — belt and braces).
    """

    def __init__(
        self,
        plan: FleetPlan | ArenaPlan,
        bus: EventBus,
        *,
        root: str | Path,
        library: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_ttl: float = 60.0,
        linger: float = 0.5,
        clock: Callable[[], float] = time.time,
    ) -> None:
        plan.validate()
        self._plan = plan
        self._bus = bus
        self._root = Path(root)
        self._library_path = Path(library)
        self._host = host
        self._port = port
        self._lease_ttl = lease_ttl
        self._linger = linger
        self._clock = clock
        self._state_dir = self._root.parent / (self._root.name + ".coordinator")
        self._states_dir = self._state_dir / "states"
        self._incoming_dir = self._state_dir / "incoming"
        for directory in (
            self._root,
            self._state_dir,
            self._states_dir,
            self._incoming_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        self._ledger = LeaseLedger(
            self._state_dir / "ledger.json", plan, clock=clock
        )
        self._lock = threading.RLock()
        self._emit_lock = threading.Lock()
        self._complete = threading.Event()
        if self._ledger.all_complete():
            # A restart after every upload landed but before (or during)
            # publication: republish — stitch and the library write are
            # idempotent.
            self._complete.set()
        self._done = False
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- narration ---------------------------------------------------------

    def _emit(self, kind: str, **data: object) -> None:
        # Handler threads and the serve loop share the renderers; one event
        # at a time keeps console lines whole.
        with self._emit_lock:
            self._bus.emit(kind, **data)

    def _sweep_expired(self) -> None:
        with self._lock:
            reclaimed = self._ledger.reclaim_expired()
        for unit in reclaimed:
            self._emit(
                ev.LEASE_RECLAIMED,
                unit=unit.unit,
                worker=unit.worker,
                lease=unit.lease,
            )

    # -- wire API ----------------------------------------------------------

    def api_plan(self) -> dict[str, Any]:
        return {
            "plan": self._plan.to_dict(),
            "units": list(self._plan.unit_ids()),
            "lease_ttl": self._lease_ttl,
        }

    def api_status(self) -> dict[str, Any]:
        with self._lock:
            units = [
                {
                    "unit": unit.unit,
                    "status": unit.status,
                    "worker": unit.worker,
                    "lease": unit.lease,
                    "attempts": unit.attempts,
                }
                for unit in self._ledger.units()
            ]
            counts = self._ledger.counts()
        return {"done": self._done, "counts": counts, "units": units}

    def api_lease(self, body: Mapping[str, Any]) -> dict[str, Any]:
        worker = wire.require_field(body, "worker", str)
        self._sweep_expired()
        if self._done:
            return {"lease": None, "done": True}
        with self._lock:
            unit = self._ledger.lease(worker, self._lease_ttl)
        if unit is None:
            # Nothing pending: either everything is leased out and this
            # worker should poll again, or everything is complete and
            # publication is in flight — done flips once it lands.
            return {"lease": None, "done": False}
        self._emit(
            ev.LEASE_GRANTED, unit=unit.unit, worker=worker, lease=unit.lease
        )
        return {
            "lease": {
                "id": unit.lease,
                "unit": unit.unit,
                "ttl": self._lease_ttl,
                "jobs": [
                    spec.to_dict() for spec in self._plan.unit_jobs(unit.shard)
                ],
                "uploads": [
                    dict(upload) for upload in self._plan.unit_uploads(unit.shard)
                ],
            },
            "done": False,
        }

    def api_complete(self, body: Mapping[str, Any]) -> dict[str, Any]:
        lease_id = wire.require_field(body, "lease", str)
        worker = wire.require_field(body, "worker", str)
        uploads = body.get("uploads")
        if not isinstance(uploads, list):
            raise CoordinatorError(
                "completion needs an 'uploads' list (shard directory + "
                "accumulator state)",
                field="uploads",
            )
        self._sweep_expired()
        with self._lock:
            unit = self._ledger.unit_for_lease(lease_id)
            expected = self._plan.unit_uploads(unit.shard)
        _check_upload_shape(uploads, expected)
        # Decode, verify and stage outside the ledger lock: uploads are the
        # slow part and must not block lease polls.
        staged = [
            self._materialise(unit, index, upload)
            for index, upload in enumerate(uploads)
        ]
        with self._lock:
            # The lease may have expired while the upload was verified; a
            # dead lease means the unit was reassigned and this copy is
            # redundant — refuse it rather than racing the replacement.
            unit = self._ledger.unit_for_lease(lease_id)
            for place in staged:
                place()
            self._ledger.complete(
                lease_id,
                {upload["name"]: upload["fingerprint"] for upload in uploads},
            )
            all_complete = self._ledger.all_complete()
        self._emit(
            ev.UNIT_COMPLETE,
            unit=unit.unit,
            worker=worker,
            fingerprint=uploads[0]["fingerprint"],
        )
        if all_complete:
            self._complete.set()
        return {"accepted": True, "done": self._done}

    def api_events(self, raw: bytes) -> dict[str, Any]:
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise CoordinatorError(
                f"event feed is not UTF-8: {error}", field="events"
            ) from error
        accepted = 0
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise CoordinatorError(
                    f"event feed line is not JSON: {error}", field="events"
                ) from error
            if not isinstance(payload, dict):
                raise CoordinatorError(
                    "event feed lines must be JSON objects", field="events"
                )
            schema = payload.get("schema")
            if schema != EVENT_SCHEMA_VERSION:
                raise CoordinatorError(
                    f"unsupported event schema version {schema!r} (this "
                    f"build speaks event schema {EVENT_SCHEMA_VERSION})",
                    field="schema",
                )
            kind = payload.get("event")
            if not isinstance(kind, str) or not kind:
                raise CoordinatorError(
                    "event feed line has no 'event' kind", field="event"
                )
            data = {
                key: value
                for key, value in payload.items()
                if key not in ("event", "schema")
            }
            try:
                self._emit(kind, **data)
            except JobError as error:
                raise CoordinatorError(str(error), field="event") from error
            accepted += 1
        return {"accepted": accepted}

    # -- upload materialisation --------------------------------------------

    def _materialise(
        self, unit: WorkUnit, index: int, upload: Mapping[str, Any]
    ) -> Callable[[], None]:
        """Decode + fingerprint-verify one upload; returns its placement.

        Verification happens against *staged* bytes in the coordinator's
        sibling state directory; nothing touches the dataset root until the
        whole completion is accepted under the ledger lock.
        """
        try:
            blob = base64.b64decode(upload["data"], validate=True)
        except (binascii.Error, TypeError) as error:
            raise CoordinatorError(
                f"upload {upload['name']!r} carries undecodable base64 data: "
                f"{error}",
                field=f"uploads[{index}].data",
            ) from error
        claimed = upload["fingerprint"]
        if upload["kind"] == UPLOAD_FILE:
            actual = hashlib.sha256(blob).hexdigest()
            if actual != claimed:
                raise CoordinatorError(
                    f"upload {upload['name']!r} fingerprint mismatch: worker "
                    f"claimed {claimed[:12]} but the bytes hash to "
                    f"{actual[:12]}",
                    field=f"uploads[{index}].fingerprint",
                    status=409,
                )
            destination = self._states_dir / f"{unit.unit}.json"

            def place_file() -> None:
                with tempfile.NamedTemporaryFile(
                    dir=self._states_dir, delete=False
                ) as handle:
                    handle.write(blob)
                os.replace(handle.name, destination)

            return place_file
        staging = Path(
            tempfile.mkdtemp(prefix=f"{unit.unit}-", dir=self._incoming_dir)
        )
        _extract_tar(blob, staging, name=upload["name"])
        actual = fingerprint_path(staging)
        if actual != claimed:
            raise CoordinatorError(
                f"upload {upload['name']!r} fingerprint mismatch: worker "
                f"claimed {claimed[:12]} but the extracted tree fingerprints "
                f"to {actual[:12]}",
                field=f"uploads[{index}].fingerprint",
                status=409,
            )
        destination = self._root / unit.unit

        def place_directory() -> None:
            if destination.exists():
                # A unit completed twice can only mean a reassignment race
                # the ledger already lost track of; identical bytes are
                # harmlessly redundant, anything else must fail loudly.
                if fingerprint_path(destination) == claimed:
                    return
                raise CoordinatorError(
                    f"{destination} already holds different bytes than this "
                    f"upload claims ({claimed[:12]})",
                    field=f"uploads[{index}].fingerprint",
                    status=409,
                )
            os.replace(staging, destination)

        return place_directory

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind the wire API and serve it from a daemon thread."""
        handler = _build_handler(self)
        self._server = ThreadingHTTPServer((self._host, self._port), handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-coordinator",
            daemon=True,
        )
        self._thread.start()
        return self._host, self._server.server_address[1]

    def serve_until_complete(self) -> dict[str, object]:
        """Serve leases until every unit is in, then publish and stop."""
        if self._server is None:
            host, port = self.start()
        else:
            host, port = self._host, self._server.server_address[1]
        if isinstance(self._plan, ArenaPlan):
            self._emit(
                ev.SERVE_STARTED,
                cells=len(self._plan.unit_ids()),
                seed=self._plan.seed,
                host=host,
                port=port,
                lease_ttl=self._lease_ttl,
            )
        else:
            self._emit(
                ev.SERVE_STARTED,
                viewers=self._plan.viewers,
                seed=self._plan.seed,
                shards=self._plan.shards,
                host=host,
                port=port,
                lease_ttl=self._lease_ttl,
            )
        # Short waits keep the loop interruptible (Ctrl-C stops a serve).
        while not self._complete.wait(0.1):
            pass
        summary = self._publish()
        self._done = True
        time.sleep(self._linger)
        self.close()
        return summary

    def close(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _publish(self) -> dict[str, object]:
        """Merge states, stitch the root, write the library — atomically.

        Everything here is a pure function of the verified uploads, so a
        crash between any two steps republishes identically on restart.
        """
        if isinstance(self._plan, ArenaPlan):
            return self._publish_arena()
        states = []
        for unit in self._ledger.units():
            path = self._states_dir / f"{unit.unit}.json"
            state = FingerprintAccumulator.load(path)
            self._emit(
                ev.STATE_FOLDED,
                path=str(path),
                environments=len(state.condition_keys),
                records=state.record_count,
            )
            states.append(state)
        merged = fold_states_tree(states)
        library = FingerprintLibrary()
        merged.finalize_into(library, margin=self._plan.margin)
        self._emit(ev.STITCH_STARTED, root=str(self._root))
        dataset = stitch_sharded_dataset(
            self._root,
            status=lambda shard, state: self._emit(
                ev.SHARD_COMPLETE,
                shard=shard.dirname,
                viewers=shard.viewer_count,
                state=state,
            ),
        )
        self._emit(ev.ARTIFACT_WRITTEN, path=str(dataset.manifest_path))
        temporary = self._library_path.with_name(self._library_path.name + ".tmp")
        library.save(temporary)
        os.replace(temporary, self._library_path)
        from repro.jobs.runner import fingerprint_rows

        self._emit(
            ev.FINGERPRINTS,
            rows=fingerprint_rows(library),
            output=str(self._library_path),
        )
        units = self._ledger.units()
        workers = sorted({unit.worker for unit in units if unit.worker})
        self._emit(ev.PLAN_COMPLETE, units=len(units), workers=len(workers))
        return {
            "units": len(units),
            "workers": len(workers),
            "environments": len(library.condition_keys),
        }

    def _publish_arena(self) -> dict[str, object]:
        """Place the verified cell bytes and write the arena report.

        The staged uploads *are* the canonical cell files (workers write
        them with :func:`repro.arena.cell.cell_to_json`), so publication
        copies bytes verbatim into ``<root>/cells/`` and rebuilds the
        report from them — byte-identical to a local ``repro arena`` run
        of the same grid, and idempotent on restart.
        """
        from repro.arena.report import ArenaReport

        cells_dir = self._root / "cells"
        cells_dir.mkdir(parents=True, exist_ok=True)
        results = []
        for unit in self._ledger.units():
            payload = (self._states_dir / f"{unit.unit}.json").read_bytes()
            destination = cells_dir / f"{unit.unit}.json"
            with tempfile.NamedTemporaryFile(dir=cells_dir, delete=False) as handle:
                handle.write(payload)
            os.replace(handle.name, destination)
            results.append(json.loads(payload.decode("utf-8")))
        report = ArenaReport(results)
        self._emit(
            ev.TABLE,
            title="Arena — defense × classifier sweep",
            rows=report.rows(),
            blank_after=True,
        )
        report.save(self._library_path)
        self._emit(
            ev.ARTIFACT_WRITTEN,
            path=str(self._library_path),
            label="arena-report",
        )
        units = self._ledger.units()
        workers = sorted({unit.worker for unit in units if unit.worker})
        self._emit(ev.PLAN_COMPLETE, units=len(units), workers=len(workers))
        return {
            "units": len(units),
            "workers": len(workers),
            "cells": len(results),
            "frontier": len(report.frontier),
        }


def _check_upload_shape(
    uploads: list[Any], expected: tuple[dict[str, str], ...]
) -> None:
    """The uploads list must match the lease's declared artifact set."""
    if len(uploads) != len(expected):
        raise CoordinatorError(
            f"completion carries {len(uploads)} upload(s), the lease "
            f"declared {len(expected)}",
            field="uploads",
        )
    for index, (upload, declared) in enumerate(zip(uploads, expected)):
        if not isinstance(upload, dict):
            raise CoordinatorError(
                "each upload must be a JSON object",
                field=f"uploads[{index}]",
            )
        for key in ("name", "kind", "fingerprint", "data"):
            if not isinstance(upload.get(key), str) or not upload[key]:
                raise CoordinatorError(
                    f"upload {index} needs a non-empty string {key!r}",
                    field=f"uploads[{index}].{key}",
                )
        for key in ("name", "kind"):
            if upload[key] != declared[key]:
                raise CoordinatorError(
                    f"upload {index} {key} is {upload[key]!r}, the lease "
                    f"declared {declared[key]!r}",
                    field=f"uploads[{index}].{key}",
                )


def _extract_tar(blob: bytes, destination: Path, *, name: str) -> None:
    """Extract a directory upload, refusing anything but plain members."""
    try:
        archive = tarfile.open(fileobj=io.BytesIO(blob), mode="r:")
    except tarfile.TarError as error:
        raise CoordinatorError(
            f"upload {name!r} is not a readable tar archive: {error}",
            field="uploads",
        ) from error
    with archive:
        for member in archive.getmembers():
            member_path = Path(member.name)
            if member_path.is_absolute() or ".." in member_path.parts:
                raise CoordinatorError(
                    f"upload {name!r} names an unsafe member {member.name!r}",
                    field="uploads",
                )
            if not (member.isreg() or member.isdir()):
                raise CoordinatorError(
                    f"upload {name!r} member {member.name!r} is not a plain "
                    "file or directory",
                    field="uploads",
                )
        archive.extractall(destination)


def _build_handler(coordinator: Coordinator) -> type[BaseHTTPRequestHandler]:
    """A request handler bound to one coordinator instance."""

    class Handler(BaseHTTPRequestHandler):
        # The event bus is the coordinator's narration channel; the default
        # per-request stderr log would drown it.
        def log_message(self, *args: object) -> None:
            pass

        def do_GET(self) -> None:
            self._dispatch("GET")

        def do_POST(self) -> None:
            self._dispatch("POST")

        def _dispatch(self, method: str) -> None:
            try:
                payload = self._route(method)
            except CoordinatorError as error:
                self._respond(error.status, wire.error_body(error))
            except Exception as error:  # noqa: BLE001 - the API boundary
                fault = CoordinatorError(
                    f"internal coordinator error: {error!r}",
                    field="internal",
                    status=500,
                )
                self._respond(500, wire.error_body(fault))
            else:
                self._respond(200, wire.dump_body(payload))

        def _route(self, method: str) -> dict[str, Any]:
            if method == "GET" and self.path == wire.PLAN_PATH:
                return coordinator.api_plan()
            if method == "GET" and self.path == wire.STATUS_PATH:
                return coordinator.api_status()
            if method == "POST" and self.path == wire.LEASE_PATH:
                return coordinator.api_lease(wire.parse_body(self._body()))
            if method == "POST" and self.path == wire.COMPLETE_PATH:
                return coordinator.api_complete(wire.parse_body(self._body()))
            if method == "POST" and self.path == wire.EVENTS_PATH:
                return coordinator.api_events(self._body())
            raise CoordinatorError(
                f"unknown wire endpoint {method} {self.path} (endpoints: "
                f"GET {wire.PLAN_PATH}, POST {wire.LEASE_PATH}, "
                f"POST {wire.COMPLETE_PATH}, POST {wire.EVENTS_PATH}, "
                f"GET {wire.STATUS_PATH})",
                field="path",
                status=404,
            )

        def _body(self) -> bytes:
            length = int(self.headers.get("Content-Length") or 0)
            return self.rfile.read(length)

        def _respond(self, status: int, body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

    return Handler
