"""Fleet coordination: ``repro serve`` + pull workers over a wire API.

The coordinator turns the manual distributed flow (per-machine
``generate-dataset --only-shards`` + ``train --sharded --save-state``,
rsync, ``stitch-dataset``, ``merge-fingerprints``) into a service:

* :mod:`repro.coordinator.plan` — the logical plans, cut into leasable
  units of ordinary :mod:`repro.jobs` specs: per-shard generate+train
  pairs (:class:`FleetPlan`) or per-cell arena sweeps
  (:class:`ArenaPlan`, ``repro serve --arena``);
* :mod:`repro.coordinator.wire` — the versioned JSON envelope those specs
  and event feeds travel in;
* :mod:`repro.coordinator.ledger` — durable lease state, crash-safe via
  atomic rewrites, with TTL-based reassignment;
* :mod:`repro.coordinator.service` — the HTTP coordinator itself;
* :mod:`repro.coordinator.worker` — the pull worker (``repro work URL``);
* :mod:`repro.coordinator.merge` — the hierarchical state merge tree.

The invariant the whole package answers to: a fleet run's published
dataset root and fingerprint library are byte-identical to one machine
running the same plan serially.
"""

from repro.coordinator.ledger import LeaseLedger, WorkUnit
from repro.coordinator.merge import fold_states_tree
from repro.coordinator.plan import ArenaPlan, FleetPlan
from repro.coordinator.service import Coordinator
from repro.coordinator.wire import WIRE_VERSION
from repro.coordinator.worker import PullWorker, RemoteEventSink

__all__ = [
    "ArenaPlan",
    "Coordinator",
    "FleetPlan",
    "LeaseLedger",
    "PullWorker",
    "RemoteEventSink",
    "WIRE_VERSION",
    "WorkUnit",
    "fold_states_tree",
]
