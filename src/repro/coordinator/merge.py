"""Hierarchical merge tree for fingerprint-accumulator states.

The ``--save-state`` blobs workers upload are associative-mergeable by
construction (:meth:`repro.core.fingerprint.FingerprintAccumulator.merge`:
min of mins, max of maxes, counts add), so *any* merge shape finalises the
same library.  The coordinator folds them as a balanced binary tree rather
than a left-to-right chain: pairwise rounds halve the state count each
pass, which is the shape that parallelises (each round's merges are
independent) and the shape hierarchical fleets compose (a regional
coordinator's merged state is just another leaf upstream — ``repro
merge-fingerprints --save-state`` already emits exactly that).

The tree fold is pinned byte-identical to the sequential fold by test, the
same guarantee ``repro merge-fingerprints`` gives across machines.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.fingerprint import FingerprintAccumulator
from repro.exceptions import CoordinatorError


def fold_states_tree(
    states: Sequence[FingerprintAccumulator],
) -> FingerprintAccumulator:
    """Fold accumulator states pairwise until one remains.

    Mutates and returns the first state (merging folds in place, exactly
    like ``repro merge-fingerprints`` folding its inputs); callers that
    need the leaves afterwards should pass copies.
    """
    if not states:
        raise CoordinatorError(
            "cannot merge zero accumulator states", field="states"
        )
    level = list(states)
    while len(level) > 1:
        merged = []
        for index in range(0, len(level) - 1, 2):
            merged.append(level[index].merge(level[index + 1]))
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0]
