"""The fleet plan: one sharded generate+train run, cut into leasable units.

A :class:`FleetPlan` is the *logical* plan the coordinator owns — viewers,
shard count, seed, band margin, session toggles — with none of the
coordinator's local paths in it, so the same plan dict can be shown on the
wire (``GET /v1/plan``) without leaking filesystem layout.  Each shard of
the plan becomes one work unit: a pair of ordinary :mod:`repro.jobs` specs
(``generate-dataset --only-shards i`` then ``train --sharded
--save-state``) whose paths are *workspace-relative*, so a worker runs
them against its own scratch :class:`~repro.jobs.artifacts.Workspace`
untouched — the specs are byte-for-byte what a human would have built for
the manual ``--only-shards`` + rsync flow PR 4 shipped.

Because session bytes derive from ``(dataset seed, viewer id)`` alone and
accumulator states merge associatively, the shard directories and state
blobs a fleet uploads stitch and fold into exactly the artifacts one
machine running the whole plan would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

from repro.dataset.shards import shard_dirname
from repro.exceptions import CoordinatorError
from repro.jobs.specs import ArenaCellJob, GenerateJob, TrainJob

#: Workspace-relative paths every leased unit writes into.
UNIT_DATASET_DIR = "dataset"
UNIT_STATE_FILE = "state.json"
UNIT_LIBRARY_FILE = "library.json"
UNIT_CELL_FILE = "cell.json"

#: Upload kinds (mirroring the artifact kinds of :mod:`repro.jobs.artifacts`).
UPLOAD_DIRECTORY = "directory"
UPLOAD_FILE = "file"


@dataclass(frozen=True)
class FleetPlan:
    """What the fleet is building, independent of where it is built."""

    viewers: int = 20
    shards: int = 2
    seed: int = 0
    margin: int = 8
    cross_traffic: bool = True
    write_pcaps: bool = True

    def validate(self) -> None:
        if self.shards < 1:
            raise CoordinatorError(
                "a fleet plan needs at least one shard", field="shards"
            )
        if self.viewers < 1:
            raise CoordinatorError(
                "a fleet plan needs at least one viewer", field="viewers"
            )

    def to_dict(self) -> dict[str, Any]:
        return dict(
            sorted(
                (field.name, getattr(self, field.name)) for field in fields(self)
            )
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetPlan":
        field_names = {field.name for field in fields(cls)}
        unknown = sorted(set(data) - field_names)
        if unknown:
            raise CoordinatorError(
                f"fleet plan has unknown field(s) {unknown} "
                f"(known fields: {sorted(field_names)})",
                field=unknown[0],
            )
        missing = sorted(field_names - set(data))
        if missing:
            raise CoordinatorError(
                f"fleet plan is missing field(s) {missing}", field=missing[0]
            )
        return cls(**{name: data[name] for name in field_names})

    # -- work units --------------------------------------------------------

    def unit_ids(self) -> tuple[str, ...]:
        """One unit per shard, named after the shard directory it produces."""
        return tuple(shard_dirname(index) for index in range(self.shards))

    def unit_jobs(self, shard: int) -> tuple[GenerateJob, TrainJob]:
        """The spec pair a worker runs for one shard, in order.

        Generation writes only this shard of the full plan (so the bytes
        match the corresponding shard of a whole-plan run exactly), and
        training folds the freshly written subset root into an accumulator
        state — the blob the coordinator's merge tree consumes.
        """
        self._require_shard(shard)
        return (
            GenerateJob(
                output=UNIT_DATASET_DIR,
                viewers=self.viewers,
                seed=self.seed,
                write_pcaps=self.write_pcaps,
                cross_traffic=self.cross_traffic,
                shards=self.shards,
                only_shards=str(shard),
            ),
            TrainJob(
                dataset=UNIT_DATASET_DIR,
                output=UNIT_LIBRARY_FILE,
                sharded=True,
                margin=self.margin,
                save_state=UNIT_STATE_FILE,
            ),
        )

    def unit_uploads(self, shard: int) -> tuple[dict[str, str], ...]:
        """What the worker must upload for one shard, by name/path/kind.

        The shard directory (pcaps, metadata, sidecar) and the accumulator
        state blob; the per-unit ``library.json`` is a worker-local
        by-product the coordinator never collects (the published library
        comes from the merged states).
        """
        self._require_shard(shard)
        return (
            {
                "name": "shard",
                "path": f"{UNIT_DATASET_DIR}/{shard_dirname(shard)}",
                "kind": UPLOAD_DIRECTORY,
            },
            {
                "name": "state",
                "path": UNIT_STATE_FILE,
                "kind": UPLOAD_FILE,
            },
        )

    def _require_shard(self, shard: int) -> None:
        if not 0 <= shard < self.shards:
            raise CoordinatorError(
                f"shard {shard} is outside the plan's 0..{self.shards - 1}",
                field="shard",
            )


@dataclass(frozen=True)
class ArenaPlan:
    """An arena sweep cut into leasable one-cell units.

    The axes travel as the sweep grammar strings (``name[:key=value,...]``)
    the user wrote, so the plan dict on the wire stays declarative; each
    unit's :class:`~repro.jobs.specs.ArenaCellJob` carries the *canonical*
    component specs the grid validated, and the worker rebuilds both
    components through the registries.  Because a cell is a pure function
    of its spec, the cell files a fleet uploads are byte-identical to the
    ones a local ``repro arena`` writes, and so is the published report.
    """

    defenses: tuple[str, ...] = ()
    classifiers: tuple[str, ...] = ()
    conditions: tuple[str, ...] = ()
    train_count: int = 2
    test_count: int = 2
    seed: int = 0

    def validate(self) -> None:
        # Grid construction is the validation: every axis entry round-trips
        # through the component registries, and bad entries/counts raise
        # naming themselves.
        self._grid()

    def _grid(self):
        from repro.arena.grid import ArenaGrid

        return ArenaGrid.from_axes(
            defenses=self.defenses,
            classifiers=self.classifiers,
            conditions=self.conditions,
            train_count=self.train_count,
            test_count=self.test_count,
            seed=self.seed,
        )

    def to_dict(self) -> dict[str, Any]:
        data = {}
        for field in fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = list(value)
            data[field.name] = value
        return dict(sorted(data.items()))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArenaPlan":
        field_names = {field.name for field in fields(cls)}
        unknown = sorted(set(data) - field_names)
        if unknown:
            raise CoordinatorError(
                f"arena plan has unknown field(s) {unknown} "
                f"(known fields: {sorted(field_names)})",
                field=unknown[0],
            )
        missing = sorted(field_names - set(data))
        if missing:
            raise CoordinatorError(
                f"arena plan is missing field(s) {missing}", field=missing[0]
            )
        return cls(
            **{
                name: tuple(data[name])
                if isinstance(data[name], list)
                else data[name]
                for name in field_names
            }
        )

    # -- work units --------------------------------------------------------

    def unit_ids(self) -> tuple[str, ...]:
        """One unit per grid cell, named after the cell id."""
        return tuple(cell.cell_id for cell in self._grid().cells())

    def unit_jobs(self, index: int) -> tuple[ArenaCellJob]:
        """The single-cell spec a worker runs for one unit."""
        cell = self._require_cell(index)
        grid = self._grid()
        return (
            ArenaCellJob(
                output=UNIT_CELL_FILE,
                cell=cell.cell_id,
                condition=cell.condition,
                defense=cell.defense,
                classifier=cell.classifier,
                train_count=grid.train_count,
                test_count=grid.test_count,
                seed=grid.seed,
            ),
        )

    def unit_uploads(self, index: int) -> tuple[dict[str, str], ...]:
        """One file upload per unit: the cell's canonical JSON bytes."""
        self._require_cell(index)
        return (
            {"name": "cell", "path": UNIT_CELL_FILE, "kind": UPLOAD_FILE},
        )

    def _require_cell(self, index: int):
        cells = self._grid().cells()
        if not 0 <= index < len(cells):
            raise CoordinatorError(
                f"cell index {index} is outside the plan's "
                f"0..{len(cells) - 1}",
                field="shard",
            )
        return cells[index]
