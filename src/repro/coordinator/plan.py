"""The fleet plan: one sharded generate+train run, cut into leasable units.

A :class:`FleetPlan` is the *logical* plan the coordinator owns — viewers,
shard count, seed, band margin, session toggles — with none of the
coordinator's local paths in it, so the same plan dict can be shown on the
wire (``GET /v1/plan``) without leaking filesystem layout.  Each shard of
the plan becomes one work unit: a pair of ordinary :mod:`repro.jobs` specs
(``generate-dataset --only-shards i`` then ``train --sharded
--save-state``) whose paths are *workspace-relative*, so a worker runs
them against its own scratch :class:`~repro.jobs.artifacts.Workspace`
untouched — the specs are byte-for-byte what a human would have built for
the manual ``--only-shards`` + rsync flow PR 4 shipped.

Because session bytes derive from ``(dataset seed, viewer id)`` alone and
accumulator states merge associatively, the shard directories and state
blobs a fleet uploads stitch and fold into exactly the artifacts one
machine running the whole plan would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

from repro.dataset.shards import shard_dirname
from repro.exceptions import CoordinatorError
from repro.jobs.specs import GenerateJob, TrainJob

#: Workspace-relative paths every leased unit writes into.
UNIT_DATASET_DIR = "dataset"
UNIT_STATE_FILE = "state.json"
UNIT_LIBRARY_FILE = "library.json"

#: Upload kinds (mirroring the artifact kinds of :mod:`repro.jobs.artifacts`).
UPLOAD_DIRECTORY = "directory"
UPLOAD_FILE = "file"


@dataclass(frozen=True)
class FleetPlan:
    """What the fleet is building, independent of where it is built."""

    viewers: int = 20
    shards: int = 2
    seed: int = 0
    margin: int = 8
    cross_traffic: bool = True
    write_pcaps: bool = True

    def validate(self) -> None:
        if self.shards < 1:
            raise CoordinatorError(
                "a fleet plan needs at least one shard", field="shards"
            )
        if self.viewers < 1:
            raise CoordinatorError(
                "a fleet plan needs at least one viewer", field="viewers"
            )

    def to_dict(self) -> dict[str, Any]:
        return dict(
            sorted(
                (field.name, getattr(self, field.name)) for field in fields(self)
            )
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetPlan":
        field_names = {field.name for field in fields(cls)}
        unknown = sorted(set(data) - field_names)
        if unknown:
            raise CoordinatorError(
                f"fleet plan has unknown field(s) {unknown} "
                f"(known fields: {sorted(field_names)})",
                field=unknown[0],
            )
        missing = sorted(field_names - set(data))
        if missing:
            raise CoordinatorError(
                f"fleet plan is missing field(s) {missing}", field=missing[0]
            )
        return cls(**{name: data[name] for name in field_names})

    # -- work units --------------------------------------------------------

    def unit_ids(self) -> tuple[str, ...]:
        """One unit per shard, named after the shard directory it produces."""
        return tuple(shard_dirname(index) for index in range(self.shards))

    def unit_jobs(self, shard: int) -> tuple[GenerateJob, TrainJob]:
        """The spec pair a worker runs for one shard, in order.

        Generation writes only this shard of the full plan (so the bytes
        match the corresponding shard of a whole-plan run exactly), and
        training folds the freshly written subset root into an accumulator
        state — the blob the coordinator's merge tree consumes.
        """
        self._require_shard(shard)
        return (
            GenerateJob(
                output=UNIT_DATASET_DIR,
                viewers=self.viewers,
                seed=self.seed,
                write_pcaps=self.write_pcaps,
                cross_traffic=self.cross_traffic,
                shards=self.shards,
                only_shards=str(shard),
            ),
            TrainJob(
                dataset=UNIT_DATASET_DIR,
                output=UNIT_LIBRARY_FILE,
                sharded=True,
                margin=self.margin,
                save_state=UNIT_STATE_FILE,
            ),
        )

    def unit_uploads(self, shard: int) -> tuple[dict[str, str], ...]:
        """What the worker must upload for one shard, by name/path/kind.

        The shard directory (pcaps, metadata, sidecar) and the accumulator
        state blob; the per-unit ``library.json`` is a worker-local
        by-product the coordinator never collects (the published library
        comes from the merged states).
        """
        self._require_shard(shard)
        return (
            {
                "name": "shard",
                "path": f"{UNIT_DATASET_DIR}/{shard_dirname(shard)}",
                "kind": UPLOAD_DIRECTORY,
            },
            {
                "name": "state",
                "path": UNIT_STATE_FILE,
                "kind": UPLOAD_FILE,
            },
        )

    def _require_shard(self, shard: int) -> None:
        if not 0 <= shard < self.shards:
            raise CoordinatorError(
                f"shard {shard} is outside the plan's 0..{self.shards - 1}",
                field="shard",
            )
