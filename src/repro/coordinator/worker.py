"""The pull worker: ``repro work URL`` against a coordinator's wire API.

A :class:`PullWorker` is deliberately dumb: it polls ``/v1/lease``, runs
whatever :mod:`repro.jobs` specs the lease carries through the ordinary
:class:`~repro.jobs.runner.JobRunner` in a scratch workspace, verifies the
produced artifacts by re-fingerprinting them (a changed fingerprint means a
partial write or concurrent modification — never upload it), and posts the
declared uploads back base64-encoded with their content fingerprints for
the coordinator to verify independently.  Its event bus streams to the
coordinator through a :class:`RemoteEventSink` as the same JSONL lines
``--jsonl`` writes locally, so fleet narration reuses the stock renderers
end to end.

Crash safety is the coordinator's job, not the worker's: a worker that
dies mid-unit simply never completes its lease, and the unit is re-leased
after the TTL.  The worker's matching obligation is to *discard* work when
its lease has died under it (:class:`~repro.exceptions.LeaseExpired` from
``/v1/complete``) rather than fight the reassignment.
"""

from __future__ import annotations

import base64
import io
import json
import os
import tarfile
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.coordinator import wire
from repro.exceptions import CoordinatorError, LeaseExpired
from repro.jobs import events as ev
from repro.jobs.artifacts import Workspace, fingerprint_path
from repro.jobs.events import EventBus, JobEvent
from repro.jobs.runner import JobResult, JobRunner
from repro.jobs.specs import job_from_dict


class RemoteEventSink:
    """Buffers a bus's events and ships them to ``/v1/events`` as JSONL.

    Lines are exactly :meth:`~repro.jobs.events.JobEvent.to_json` — schema
    stamp included — batched so a chatty progress loop does not become one
    HTTP round trip per packet.
    """

    def __init__(
        self, post: Callable[[str, bytes], Mapping[str, Any]], batch_size: int = 64
    ) -> None:
        self._post = post
        self._batch_size = batch_size
        self._buffer: list[str] = []

    def handle(self, event: JobEvent) -> None:
        self._buffer.append(event.to_json())
        if len(self._buffer) >= self._batch_size:
            self.flush()

    def flush(self) -> None:
        if not self._buffer:
            return
        body = ("\n".join(self._buffer) + "\n").encode("utf-8")
        self._buffer.clear()
        self._post(wire.EVENTS_PATH, body)


class PullWorker:
    """Pulls leases from one coordinator until the plan is done.

    ``max_units`` bounds how many units this worker will run (tests and
    examples use it to interleave workers deterministically); ``sleep`` is
    injectable so tests poll without wall-clock waits.
    """

    def __init__(
        self,
        url: str,
        bus: EventBus,
        *,
        worker_id: str | None = None,
        scratch: str | Path | None = None,
        poll_interval: float = 0.5,
        max_units: int | None = None,
        timeout: float = 60.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._url = url.rstrip("/")
        self._bus = bus
        self._worker_id = worker_id or f"worker-{os.getpid()}"
        if scratch is None:
            self._scratch = Path(tempfile.mkdtemp(prefix="repro-work-"))
        else:
            self._scratch = Path(scratch)
            self._scratch.mkdir(parents=True, exist_ok=True)
        self._poll_interval = poll_interval
        self._max_units = max_units
        self._timeout = timeout
        self._sleep = sleep
        self._contacted = False
        self._sink = RemoteEventSink(self._post_raw)
        bus.attach(self._sink)

    # -- transport ---------------------------------------------------------

    def _post_raw(
        self, path: str, body: bytes, content_type: str = "application/x-ndjson"
    ) -> dict[str, Any]:
        request = urllib.request.Request(
            self._url + path,
            data=body,
            headers={"Content-Type": content_type},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as reply:
                raw = reply.read()
        except urllib.error.HTTPError as error:
            raise _rejection(error) from error
        except (urllib.error.URLError, OSError) as error:
            raise CoordinatorError(
                f"cannot reach coordinator at {self._url}: {error}",
                field="url",
            ) from error
        self._contacted = True
        return _parse_reply(raw)

    def _post_json(self, path: str, payload: Mapping[str, Any]) -> dict[str, Any]:
        return self._post_raw(
            path, wire.dump_body(payload), content_type="application/json"
        )

    # -- the pull loop -----------------------------------------------------

    def run(self) -> dict[str, object]:
        """Pull, run and upload units until the coordinator says done."""
        self._bus.emit(
            ev.WORK_STARTED, url=self._url, worker=self._worker_id
        )
        completed = 0
        while self._max_units is None or completed < self._max_units:
            try:
                reply = self._post_json(
                    wire.LEASE_PATH, {"worker": self._worker_id}
                )
            except CoordinatorError as error:
                if error.field == "url" and self._contacted:
                    # The coordinator publishes and exits once the plan is
                    # done; an idle worker that loses the socket after
                    # having worked the plan treats that as completion.
                    break
                raise
            if reply.get("done"):
                break
            lease = reply.get("lease")
            if lease is None:
                self._sleep(self._poll_interval)
                continue
            try:
                self._run_unit(lease)
            except LeaseExpired:
                # Too slow: the unit was reclaimed and reassigned.  The
                # replacement produces identical bytes, so just drop ours.
                self._bus.emit(
                    ev.LEASE_RECLAIMED,
                    unit=lease["unit"],
                    worker=self._worker_id,
                    lease=lease["id"],
                )
                continue
            completed += 1
        try:
            self._sink.flush()
        except CoordinatorError:
            # A final flush may race the coordinator's exit; local sinks
            # already rendered these events, so losing the copy is fine.
            pass
        self._bus.emit(ev.WORK_FINISHED, units=completed)
        return {"worker": self._worker_id, "units": completed}

    def _run_unit(self, lease: Mapping[str, Any]) -> None:
        unit = lease["unit"]
        lease_id = lease["id"]
        self._bus.emit(ev.UNIT_LEASED, unit=unit, lease=lease_id)
        # A fresh directory per lease: a re-leased unit must never see a
        # previous attempt's partial writes.
        workdir = self._scratch / f"{unit}-{lease_id}"
        workdir.mkdir(parents=True)
        workspace = Workspace(workdir)
        runner = JobRunner(self._bus, workspace)
        results = [runner.run(job_from_dict(spec)) for spec in lease["jobs"]]
        verify_artifacts(workspace, results)
        uploads = []
        for declared in lease["uploads"]:
            path = workspace.resolve(declared["path"])
            fingerprint = fingerprint_path(path)
            if declared["kind"] == "directory":
                blob = pack_directory(path)
            else:
                blob = path.read_bytes()
            uploads.append(
                {
                    "name": declared["name"],
                    "kind": declared["kind"],
                    "fingerprint": fingerprint,
                    "data": base64.b64encode(blob).decode("ascii"),
                }
            )
        # The coordinator folds a unit's event feed before announcing its
        # completion; ship buffered narration ahead of the upload.
        self._sink.flush()
        self._post_json(
            wire.COMPLETE_PATH,
            {"worker": self._worker_id, "lease": lease_id, "uploads": uploads},
        )
        self._bus.emit(
            ev.UNIT_UPLOADED,
            unit=unit,
            uploads=len(uploads),
            fingerprint=uploads[0]["fingerprint"],
        )


def verify_artifacts(workspace: Workspace, results: list[JobResult]) -> None:
    """Re-fingerprint every result artifact before anything is uploaded.

    The recorded fingerprint was taken when the job finished; a mismatch
    now means the bytes changed under us — a partial write, a concurrent
    process in the scratch directory — and uploading them would poison the
    fleet's dataset root, so fail the unit loudly instead.
    """
    for result in results:
        for artifact in result.artifacts:
            actual = fingerprint_path(workspace.resolve(artifact.path))
            if actual != artifact.fingerprint:
                raise CoordinatorError(
                    f"artifact {artifact.name!r} at {artifact.path} changed "
                    f"after its job finished: {artifact.fingerprint[:12]} "
                    f"recorded, {actual[:12]} now — refusing to upload",
                    field="artifact",
                )


def pack_directory(path: Path) -> bytes:
    """Tar a directory for upload, members rooted at ``.``."""
    buffer = io.BytesIO()
    with tarfile.open(fileobj=buffer, mode="w") as archive:
        archive.add(path, arcname=".")
    return buffer.getvalue()


def _parse_reply(raw: bytes) -> dict[str, Any]:
    try:
        return wire.parse_body(raw)
    except CoordinatorError as error:
        raise CoordinatorError(
            f"coordinator reply is not a wire body: {error}", field="reply"
        ) from error


def _rejection(error: urllib.error.HTTPError) -> CoordinatorError:
    """Rebuild the coordinator's typed error from an HTTP error reply."""
    message = f"coordinator rejected the request (HTTP {error.code})"
    field = None
    try:
        body = json.loads(error.read().decode("utf-8"))
        detail = body.get("error", {})
        message = detail.get("message", message)
        field = detail.get("field")
    except (ValueError, UnicodeDecodeError, AttributeError):
        pass
    kind = LeaseExpired if error.code == 410 else CoordinatorError
    return kind(message, field=field, status=error.code)
