"""The durable lease ledger: which unit is where, across crashes.

Every transition — lease granted, lease reclaimed, unit completed — is
written to one JSON file via the atomic write-temp-then-rename idiom the
dataset layer already uses for ``metadata.json``, so a coordinator that is
killed and restarted resumes exactly where it stopped: completed units keep
their verified uploads, leased units whose TTL has passed return to the
pool on the next reclaim sweep, and a ledger recorded for a *different*
plan refuses to load, naming the mismatched field.

Leases are the crash-safety seam: a worker that goes silent (SIGKILL,
network partition) simply stops renewing the only thing that kept its unit
assigned, and the unit is re-leased to the next puller.  Work is
deterministic and uploads are verified by content fingerprint, so
reassignment can never change the published bytes — the worst a dead
worker costs is its unit's wall-clock time.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.coordinator.plan import FleetPlan
from repro.exceptions import CoordinatorError, LeaseExpired

#: Unit lifecycle states.
PENDING = "pending"
LEASED = "leased"
COMPLETE = "complete"

#: Version of the ledger file layout.
LEDGER_VERSION = 1


@dataclass
class WorkUnit:
    """One leasable shard of the plan and its current disposition."""

    unit: str
    shard: int
    status: str = PENDING
    lease: str | None = None
    worker: str | None = None
    expires_at: float | None = None
    attempts: int = 0
    fingerprints: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "unit": self.unit,
            "shard": self.shard,
            "status": self.status,
            "lease": self.lease,
            "worker": self.worker,
            "expires_at": self.expires_at,
            "attempts": self.attempts,
            "fingerprints": dict(sorted(self.fingerprints.items())),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkUnit":
        return cls(
            unit=data["unit"],
            shard=data["shard"],
            status=data["status"],
            lease=data["lease"],
            worker=data["worker"],
            expires_at=data["expires_at"],
            attempts=data["attempts"],
            fingerprints=dict(data["fingerprints"]),
        )


class LeaseLedger:
    """Durable unit/lease state for one plan, saved on every transition.

    ``clock`` is injectable (tests drive expiry deterministically); the
    default is wall-clock :func:`time.time`, because deadlines must stay
    meaningful across a coordinator restart.
    """

    def __init__(
        self,
        path: str | Path,
        plan: FleetPlan,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = Path(path)
        self._plan = plan
        self._clock = clock
        self._lease_counter = 0
        self._units: dict[str, WorkUnit] = {
            unit: WorkUnit(unit=unit, shard=shard)
            for shard, unit in enumerate(plan.unit_ids())
        }
        if self.path.exists():
            self._load()
        else:
            self._save()

    # -- persistence -------------------------------------------------------

    def _load(self) -> None:
        with open(self.path, encoding="utf-8") as handle:
            data = json.load(handle)
        version = data.get("ledger")
        if version != LEDGER_VERSION:
            raise CoordinatorError(
                f"unsupported ledger version {version!r} in {self.path} "
                f"(this build speaks ledger version {LEDGER_VERSION})",
                field="ledger",
            )
        recorded = data.get("plan", {})
        current = self._plan.to_dict()
        for name in sorted(set(recorded) | set(current)):
            if recorded.get(name) != current.get(name):
                raise CoordinatorError(
                    f"ledger {self.path} was recorded for a different plan: "
                    f"field {name!r} is {recorded.get(name)!r} there but "
                    f"{current.get(name)!r} now (point the coordinator at a "
                    "fresh root, or re-serve the original plan)",
                    field=name,
                )
        units = [WorkUnit.from_dict(entry) for entry in data["units"]]
        if [unit.unit for unit in units] != list(self._units):
            raise CoordinatorError(
                f"ledger {self.path} names different units than the plan",
                field="units",
            )
        self._units = {unit.unit: unit for unit in units}
        self._lease_counter = int(data["lease_counter"])

    def _save(self) -> None:
        payload = {
            "ledger": LEDGER_VERSION,
            "plan": self._plan.to_dict(),
            "lease_counter": self._lease_counter,
            "units": [unit.to_dict() for unit in self._units.values()],
        }
        temporary = self.path.with_name(self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        os.replace(temporary, self.path)

    # -- queries -----------------------------------------------------------

    def units(self) -> tuple[WorkUnit, ...]:
        """Every unit, in shard order."""
        return tuple(self._units.values())

    def counts(self) -> dict[str, int]:
        counts = {PENDING: 0, LEASED: 0, COMPLETE: 0}
        for unit in self._units.values():
            counts[unit.status] += 1
        return counts

    def all_complete(self) -> bool:
        return all(unit.status == COMPLETE for unit in self._units.values())

    # -- transitions -------------------------------------------------------

    def reclaim_expired(self) -> tuple[WorkUnit, ...]:
        """Return expired leases' units to the pool; reports what moved."""
        now = self._clock()
        reclaimed = []
        for unit in self._units.values():
            if unit.status == LEASED and unit.expires_at is not None:
                if unit.expires_at <= now:
                    # Snapshot the expired assignment for reporting before
                    # the unit forgets who held it.
                    reclaimed.append(WorkUnit.from_dict(unit.to_dict()))
                    unit.status = PENDING
                    unit.lease = None
                    unit.worker = None
                    unit.expires_at = None
        if reclaimed:
            self._save()
        return tuple(reclaimed)

    def lease(self, worker: str, ttl: float) -> WorkUnit | None:
        """Lease the first pending unit (shard order) to ``worker``.

        Returns a snapshot, not the live record: later transitions must
        not mutate what a caller already handed out.
        """
        for unit in self._units.values():
            if unit.status == PENDING:
                self._lease_counter += 1
                unit.status = LEASED
                unit.lease = f"lease-{self._lease_counter:06d}"
                unit.worker = worker
                unit.expires_at = self._clock() + ttl
                unit.attempts += 1
                self._save()
                return WorkUnit.from_dict(unit.to_dict())
        return None

    def unit_for_lease(self, lease: str) -> WorkUnit:
        """The unit a live lease covers; a dead lease fails loudly.

        A lease can be dead because it expired and was reclaimed (possibly
        re-leased — even completed — by another worker since) or because it
        never existed; either way the holder must drop its work, not
        upload it.
        """
        for unit in self._units.values():
            if unit.status == LEASED and unit.lease == lease:
                return unit
        raise LeaseExpired(
            f"lease {lease!r} is not live: it expired and was reclaimed, or "
            "never existed (the unit may have been reassigned; discard this "
            "work and pull a fresh lease)",
            field="lease",
        )

    def complete(self, lease: str, fingerprints: Mapping[str, str]) -> WorkUnit:
        """Mark a live lease's unit complete, recording upload fingerprints."""
        unit = self.unit_for_lease(lease)
        unit.status = COMPLETE
        unit.expires_at = None
        unit.fingerprints = dict(fingerprints)
        self._save()
        return unit
