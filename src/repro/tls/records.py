"""TLS record framing: the 5-byte header and what it reveals.

A TLS record on the wire is::

    +--------------+---------+---------+----------------------+
    | content type | version | length  |      ciphertext      |
    |    1 byte    | 2 bytes | 2 bytes |   ``length`` bytes   |
    +--------------+---------+---------+----------------------+

The header is never encrypted, so a passive observer always learns the
content type, protocol version and — crucially for this paper — the exact
ciphertext length of every record.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator

from repro.exceptions import TLSError

RECORD_HEADER_LENGTH = 5
#: TLS forbids plaintext fragments larger than 2**14 bytes.
MAX_PLAINTEXT_FRAGMENT = 16_384
#: Upper bound on the ciphertext length field (2**14 + 2048, RFC 5246).
MAX_CIPHERTEXT_LENGTH = 18_432

_HEADER_STRUCT = struct.Struct("!BHH")


class ContentType(IntEnum):
    """TLS record content types (subset relevant to the simulation)."""

    CHANGE_CIPHER_SPEC = 20
    ALERT = 21
    HANDSHAKE = 22
    APPLICATION_DATA = 23


@dataclass(frozen=True)
class TLSRecord:
    """One TLS record as it appears on the wire.

    Attributes
    ----------
    content_type:
        The record's content type.
    version:
        The legacy protocol version field (0x0303 for TLS 1.2 and for
        TLS 1.3 application records).
    ciphertext:
        The (simulated) encrypted fragment.
    """

    content_type: ContentType
    version: int
    ciphertext: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.content_type, ContentType):
            raise TLSError(f"invalid content type {self.content_type!r}")
        if not 0 <= self.version <= 0xFFFF:
            raise TLSError(f"invalid version field {self.version:#x}")
        if len(self.ciphertext) == 0:
            raise TLSError("a TLS record must carry at least one ciphertext byte")
        if len(self.ciphertext) > MAX_CIPHERTEXT_LENGTH:
            raise TLSError(
                f"ciphertext length {len(self.ciphertext)} exceeds the TLS "
                f"maximum of {MAX_CIPHERTEXT_LENGTH}"
            )

    @property
    def length(self) -> int:
        """Value of the record header's length field (ciphertext bytes)."""
        return len(self.ciphertext)

    @property
    def wire_length(self) -> int:
        """Total bytes the record occupies on the wire (header + ciphertext).

        This is the quantity the paper calls the *SSL record length*: it is
        what an observer measuring the encrypted byte stream sees for each
        record.
        """
        return RECORD_HEADER_LENGTH + self.length

    def serialize(self) -> bytes:
        """Encode the record into its wire representation."""
        header = _HEADER_STRUCT.pack(int(self.content_type), self.version, self.length)
        return header + self.ciphertext

    @classmethod
    def parse_one(cls, data: bytes, offset: int = 0) -> tuple["TLSRecord", int]:
        """Parse a single record starting at ``offset``.

        Returns the record and the offset just past it.  Raises
        :class:`TLSError` on truncation or malformed headers.
        """
        if offset < 0:
            raise TLSError(f"negative parse offset {offset}")
        if len(data) - offset < RECORD_HEADER_LENGTH:
            raise TLSError("truncated TLS record header")
        raw_type, version, length = _HEADER_STRUCT.unpack_from(data, offset)
        try:
            content_type = ContentType(raw_type)
        except ValueError:
            raise TLSError(f"unknown TLS content type {raw_type}") from None
        if length == 0:
            raise TLSError("TLS record declares a zero-length fragment")
        if length > MAX_CIPHERTEXT_LENGTH:
            raise TLSError(f"TLS record declares oversized fragment ({length} bytes)")
        body_start = offset + RECORD_HEADER_LENGTH
        body_end = body_start + length
        if body_end > len(data):
            raise TLSError(
                f"truncated TLS record body: need {length} bytes, "
                f"have {len(data) - body_start}"
            )
        record = cls(
            content_type=content_type,
            version=version,
            ciphertext=bytes(data[body_start:body_end]),
        )
        return record, body_end


def parse_records(data: bytes) -> list[TLSRecord]:
    """Parse a byte stream into consecutive TLS records.

    The whole buffer must be consumed exactly; trailing garbage raises.
    """
    records: list[TLSRecord] = []
    offset = 0
    while offset < len(data):
        record, offset = TLSRecord.parse_one(data, offset)
        records.append(record)
    return records


def iter_record_lengths(data: bytes) -> Iterator[int]:
    """Yield the wire length of each record in a reassembled TLS byte stream.

    This is the passive observer's view: it never looks at ciphertext bytes,
    only at the record headers, exactly as the attack does.
    """
    offset = 0
    while offset < len(data):
        if len(data) - offset < RECORD_HEADER_LENGTH:
            raise TLSError("truncated TLS record header")
        _, _, length = _HEADER_STRUCT.unpack_from(data, offset)
        if length == 0 or length > MAX_CIPHERTEXT_LENGTH:
            raise TLSError(f"implausible TLS record length field {length}")
        yield RECORD_HEADER_LENGTH + length
        offset += RECORD_HEADER_LENGTH + length
    if offset != len(data):  # pragma: no cover - defensive; loop guarantees this
        raise TLSError("TLS stream ended mid-record")
