"""Simulated TLS handshake records.

Captured sessions begin with a handshake whose records are *not* application
data; the attack must skip them, and the feature-extraction tests exercise
that.  The sizes below are typical of a TLS 1.2 ECDHE-RSA handshake against a
CDN edge (ClientHello with a long ALPN/SNI extension block, a certificate
chain of two or three certificates, small key-exchange and finished messages).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import TLSError
from repro.tls.ciphers import CipherSpec
from repro.tls.records import ContentType, TLSRecord
from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class HandshakeRecord:
    """One handshake-phase record plus the direction it travels."""

    record: TLSRecord
    from_client: bool
    description: str


def _record(length: int, rng: RandomSource, *, content: ContentType = ContentType.HANDSHAKE) -> TLSRecord:
    if length <= 0:
        raise TLSError("handshake record length must be positive")
    body = rng.random_bytes(length)
    return TLSRecord(content_type=content, version=0x0303, ciphertext=body)


def simulate_handshake(cipher: CipherSpec, rng: RandomSource) -> list[HandshakeRecord]:
    """Produce a plausible handshake record exchange for ``cipher``.

    The exact sizes vary a little per connection (session tickets, extension
    ordering), which the jitter models.
    """
    client_hello = _record(rng.jittered(517, 6), rng)
    server_hello = _record(rng.jittered(91, 4), rng)
    certificate = _record(rng.jittered(3680, 120), rng)
    server_key_exchange = _record(rng.jittered(333, 8), rng)
    server_hello_done = _record(9, rng)
    client_key_exchange = _record(rng.jittered(70, 2), rng)
    client_ccs = _record(1, rng, content=ContentType.CHANGE_CIPHER_SPEC)
    client_finished = _record(rng.jittered(45, 2), rng)
    server_ccs = _record(1, rng, content=ContentType.CHANGE_CIPHER_SPEC)
    server_finished = _record(rng.jittered(45, 2), rng)

    return [
        HandshakeRecord(client_hello, from_client=True, description="ClientHello"),
        HandshakeRecord(server_hello, from_client=False, description="ServerHello"),
        HandshakeRecord(certificate, from_client=False, description="Certificate"),
        HandshakeRecord(
            server_key_exchange, from_client=False, description="ServerKeyExchange"
        ),
        HandshakeRecord(
            server_hello_done, from_client=False, description="ServerHelloDone"
        ),
        HandshakeRecord(
            client_key_exchange, from_client=True, description="ClientKeyExchange"
        ),
        HandshakeRecord(client_ccs, from_client=True, description="ChangeCipherSpec"),
        HandshakeRecord(client_finished, from_client=True, description="Finished"),
        HandshakeRecord(server_ccs, from_client=False, description="ChangeCipherSpec"),
        HandshakeRecord(server_finished, from_client=False, description="Finished"),
    ]
