"""Send-side TLS session: application payloads in, records out."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import TLSError
from repro.tls.ciphers import CipherSpec, default_cipher
from repro.tls.records import MAX_PLAINTEXT_FRAGMENT, ContentType, TLSRecord


@dataclass
class TLSSession:
    """One direction of an established TLS connection.

    Parameters
    ----------
    key_id:
        Identifier mixed into the pseudo-ciphertext so the two directions of
        a connection (and different connections) produce unrelated bytes.
    cipher:
        The negotiated cipher suite; defaults to the calibration suite
        (AES-128-GCM over TLS 1.2).
    version:
        The legacy version field stamped on outgoing records.
    """

    key_id: str
    cipher: CipherSpec = field(default_factory=default_cipher)
    version: int = 0x0303
    _sequence_number: int = field(default=0, init=False, repr=False)

    @property
    def records_sent(self) -> int:
        """Number of application-data records produced so far."""
        return self._sequence_number

    def protect(self, payload: bytes) -> list[TLSRecord]:
        """Encrypt one application payload into one or more records.

        Payloads longer than the TLS plaintext fragment limit (16 KiB) are
        split across consecutive records, exactly as real stacks do for large
        HTTP responses; each fragment gets its own sequence number.
        """
        if not payload:
            raise TLSError("cannot protect an empty payload")
        records: list[TLSRecord] = []
        for start in range(0, len(payload), MAX_PLAINTEXT_FRAGMENT):
            fragment = payload[start : start + MAX_PLAINTEXT_FRAGMENT]
            ciphertext = self.cipher.encrypt(
                fragment, self._sequence_number, self.key_id
            )
            records.append(
                TLSRecord(
                    content_type=ContentType.APPLICATION_DATA,
                    version=self.version,
                    ciphertext=ciphertext,
                )
            )
            self._sequence_number += 1
        return records

    def record_length_for(self, payload_length: int) -> int:
        """Wire length of the single record a payload of this size produces.

        Only valid for payloads that fit in one fragment; used by the
        calibration tests to tie client profiles to Figure 2 bands.
        """
        if payload_length <= 0:
            raise TLSError("payload length must be positive")
        if payload_length > MAX_PLAINTEXT_FRAGMENT:
            raise TLSError(
                "payload spans multiple records; use protect() and sum lengths"
            )
        from repro.tls.records import RECORD_HEADER_LENGTH

        return RECORD_HEADER_LENGTH + self.cipher.ciphertext_length(payload_length)
