"""Cipher-suite overhead models: plaintext size -> ciphertext size.

The attack's observable is the record length, which equals the plaintext
fragment size plus a cipher-suite-dependent expansion:

* AES-GCM in TLS 1.2 prepends an 8-byte explicit nonce and appends a 16-byte
  tag (+24 bytes, size-preserving otherwise);
* ChaCha20-Poly1305 appends only the 16-byte tag (+16 bytes);
* AES-CBC (TLS 1.2) pads the plaintext+MAC to a 16-byte boundary after adding
  a 16-byte IV and a 20-byte HMAC-SHA1 MAC, so the mapping is a step function;
* TLS 1.3 AEAD appends a 1-byte inner content type before encrypting and a
  16-byte tag (+17 bytes minimum, plus optional padding).

Only the *size* behaviour is modelled; "encryption" is a keyed byte whitening
that keeps ciphertext incompressible-looking in captures.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import TLSError

_EXPANSION_FN = Callable[[int], int]


def _gcm_tls12(plaintext_len: int) -> int:
    return plaintext_len + 8 + 16


def _chacha20_tls12(plaintext_len: int) -> int:
    return plaintext_len + 16


def _cbc_sha1_tls12(plaintext_len: int, block: int = 16, mac: int = 20, iv: int = 16) -> int:
    padded = plaintext_len + mac + 1  # at least one padding byte
    if padded % block:
        padded += block - (padded % block)
    return iv + padded


def _aead_tls13(plaintext_len: int) -> int:
    return plaintext_len + 1 + 16  # inner content type byte + tag


@dataclass(frozen=True)
class CipherSpec:
    """Size behaviour of one negotiated cipher suite."""

    name: str
    protocol: str
    _expansion: _EXPANSION_FN

    def ciphertext_length(self, plaintext_length: int) -> int:
        """Ciphertext bytes produced for a plaintext fragment of this size."""
        if plaintext_length <= 0:
            raise TLSError(
                f"plaintext length must be positive, got {plaintext_length}"
            )
        return self._expansion(plaintext_length)

    def overhead(self, plaintext_length: int = 1024) -> int:
        """Expansion in bytes at a representative plaintext size."""
        return self.ciphertext_length(plaintext_length) - plaintext_length

    def encrypt(self, plaintext: bytes, sequence_number: int, key_id: str) -> bytes:
        """Produce pseudo-ciphertext of the correct length.

        The bytes are a deterministic keystream seeded (via SHA-256) from
        ``(key_id, cipher, sequence number)`` XORed over the padded plaintext
        — not secure, but deterministic, length-correct and high-entropy,
        which is all the capture needs.
        """
        if sequence_number < 0:
            raise TLSError("sequence number must be non-negative")
        target = self.ciphertext_length(len(plaintext))
        digest = hashlib.sha256(
            f"{key_id}:{self.name}:{sequence_number}".encode("utf-8")
        ).digest()
        seed = int.from_bytes(digest[:8], "big")
        keystream = np.random.default_rng(seed).integers(0, 256, size=target, dtype=np.uint8)
        padded = np.zeros(target, dtype=np.uint8)
        padded[: len(plaintext)] = np.frombuffer(plaintext, dtype=np.uint8)
        return (padded ^ keystream).tobytes()


CIPHER_SUITES: dict[str, CipherSpec] = {
    "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256": CipherSpec(
        name="TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
        protocol="TLSv1.2",
        _expansion=_gcm_tls12,
    ),
    "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256": CipherSpec(
        name="TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
        protocol="TLSv1.2",
        _expansion=_chacha20_tls12,
    ),
    "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA": CipherSpec(
        name="TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA",
        protocol="TLSv1.2",
        _expansion=_cbc_sha1_tls12,
    ),
    "TLS_AES_128_GCM_SHA256": CipherSpec(
        name="TLS_AES_128_GCM_SHA256",
        protocol="TLSv1.3",
        _expansion=_aead_tls13,
    ),
}

#: The suite Netflix-era stacks negotiated most often and the one the
#: Figure 2 calibration assumes.
DEFAULT_CIPHER_SUITE = "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256"


def cipher_by_name(name: str) -> CipherSpec:
    """Look up a cipher suite by its IANA-style name."""
    try:
        return CIPHER_SUITES[name]
    except KeyError:
        raise TLSError(f"unknown cipher suite {name!r}") from None


def default_cipher() -> CipherSpec:
    """The calibration cipher suite (AES-128-GCM, TLS 1.2)."""
    return CIPHER_SUITES[DEFAULT_CIPHER_SUITE]
