"""TLS record-layer model.

The attack observes nothing but ciphertext, yet TLS exposes the *length* of
every record in its plaintext record header.  This package models exactly the
part of TLS that matters for that observation:

* :mod:`repro.tls.records` — record framing (content type, version, length),
  serialization and parsing of the 5-byte header;
* :mod:`repro.tls.ciphers` — ciphertext expansion per cipher suite (nonce,
  authentication tag, padding), i.e. the plaintext-to-record-length function;
* :mod:`repro.tls.handshake` — the handshake records at connection start, so
  captured traces begin the way real ones do;
* :mod:`repro.tls.session` — a send-side session that turns application
  payloads into records, optionally fragmenting at the 16 KiB plaintext limit.

Nothing here performs real cryptography: payload bytes are passed through a
keyed stream-cipher stand-in purely so ciphertext bytes look uniformly random
in captures; the security-relevant property being studied (length leakage) is
preserved exactly.
"""

from repro.tls.records import (
    MAX_PLAINTEXT_FRAGMENT,
    RECORD_HEADER_LENGTH,
    ContentType,
    TLSRecord,
    parse_records,
)
from repro.tls.ciphers import CipherSpec, CIPHER_SUITES, cipher_by_name
from repro.tls.handshake import simulate_handshake
from repro.tls.session import TLSSession

__all__ = [
    "MAX_PLAINTEXT_FRAGMENT",
    "RECORD_HEADER_LENGTH",
    "ContentType",
    "TLSRecord",
    "parse_records",
    "CipherSpec",
    "CIPHER_SUITES",
    "cipher_by_name",
    "simulate_handshake",
    "TLSSession",
]
