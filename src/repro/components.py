"""Declarative component specs: names + params as first-class wire citizens.

The arena sweeps defenses and classifiers across processes and machines, so
both must serialise exactly like job specs do: a component is described by a
spec dict ``{"component": kind, "name": ..., "params": {...}, "schema": 1}``
with sorted keys, and a :class:`ComponentRegistry` maps that description to a
constructed instance.  ``from_spec(spec(x))`` round-trips byte-identically
because the canonical spec records exactly the params the caller supplied
(defaults are neither merged in nor dropped).

Malformed input fails loudly and names the offending field: an unregistered
name lists the registered ones, an unknown param names it and the accepted
params, a wrong-typed param names the param and both types, and a malformed
spec dict names the spec field that is missing or wrong.
"""

from __future__ import annotations

import inspect
from typing import Callable, Mapping

from repro.exceptions import ComponentError

#: Version stamped into every component spec.  Bump on incompatible change;
#: consumers must refuse versions they do not speak.
COMPONENT_SCHEMA_VERSION = 1

#: Spec fields every component spec carries, and nothing else.
_SPEC_FIELDS = ("component", "name", "params", "schema")


def component_instance_name(spec: Mapping[str, object]) -> str:
    """Unique, parameter-bearing display name for a component spec.

    ``pad-to-multiple`` with ``{"block_bytes": 64}`` becomes
    ``"pad-to-multiple(block_bytes=64)"``; a parameterless component keeps
    its bare registry name.  Params are sorted, so the name is stable no
    matter how the spec was built.
    """
    name = spec["name"]
    params = spec.get("params") or {}
    if not params:
        return str(name)
    inner = ",".join(f"{key}={params[key]}" for key in sorted(params))
    return f"{name}({inner})"


def _annotation_name(parameter: inspect.Parameter) -> str:
    annotation = parameter.annotation
    if annotation is inspect.Parameter.empty:
        return ""
    if isinstance(annotation, str):
        return annotation
    return getattr(annotation, "__name__", str(annotation))


def _check_param_type(kind: str, name: str, param: str, expected: str, value: object) -> None:
    """Validate one param value against its factory annotation.

    Only the simple scalar annotations are enforced (``int`` / ``float`` /
    ``bool`` / ``str``); anything fancier is the factory's own job to
    validate.  ``bool`` is deliberately not an acceptable ``int``/``float``
    even though Python subclasses it — ``{"k": true}`` is a spec bug.
    """
    ok = True
    if expected == "bool":
        ok = isinstance(value, bool)
    elif expected == "int":
        ok = isinstance(value, int) and not isinstance(value, bool)
    elif expected == "float":
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    elif expected == "str":
        ok = isinstance(value, str)
    if not ok:
        raise ComponentError(
            f"{kind} {name!r} param {param!r} must be {expected}, "
            f"got {type(value).__name__} {value!r}"
        )


class ComponentRegistry:
    """Maps stable names + params dicts to constructed component instances.

    One registry per component kind (``"defense"``, ``"classifier"``);
    the kind is stamped into every spec so a defense spec handed to the
    classifier registry fails by name instead of constructing nonsense.
    """

    def __init__(self, kind: str, base_type: type) -> None:
        self._kind = kind
        self._base_type = base_type
        self._factories: dict[str, Callable[..., object]] = {}

    @property
    def kind(self) -> str:
        """The component kind stamped into specs (e.g. ``"defense"``)."""
        return self._kind

    def register(self, name: str, factory: Callable[..., object]) -> None:
        """Register a factory (usually the class itself) under a stable name."""
        if name in self._factories:
            raise ComponentError(f"{self._kind} {name!r} is already registered")
        self._factories[name] = factory

    def names(self) -> tuple[str, ...]:
        """The registered names, sorted."""
        return tuple(sorted(self._factories))

    def _factory_for(self, name: object) -> Callable[..., object]:
        if not isinstance(name, str) or name not in self._factories:
            registered = ", ".join(self.names())
            raise ComponentError(
                f"unknown {self._kind} {name!r}; registered {self._kind}s: {registered}"
            )
        return self._factories[name]

    def build(self, name: str, params: Mapping[str, object] | None = None) -> object:
        """Construct a component from its registry name and a params dict.

        Params are validated against the factory signature — unknown or
        wrong-typed params and missing required ones fail by name before the
        factory runs — and the canonical spec is stamped onto the instance so
        :meth:`spec` can round-trip it.
        """
        factory = self._factory_for(name)
        params = dict(params or {})
        signature = inspect.signature(factory)
        accepted = {
            parameter.name: parameter
            for parameter in signature.parameters.values()
            if parameter.kind
            in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
        }
        unknown = sorted(set(params) - set(accepted))
        if unknown:
            raise ComponentError(
                f"{self._kind} {name!r} got unknown param(s) {unknown}; "
                f"accepted params: {sorted(accepted)}"
            )
        missing = sorted(
            parameter.name
            for parameter in accepted.values()
            if parameter.default is inspect.Parameter.empty
            and parameter.name not in params
        )
        if missing:
            raise ComponentError(
                f"{self._kind} {name!r} is missing required param(s) {missing}"
            )
        for param_name in sorted(params):
            expected = _annotation_name(accepted[param_name])
            if expected:
                _check_param_type(self._kind, name, param_name, expected, params[param_name])
        instance = factory(**params)
        if not isinstance(instance, self._base_type):
            raise ComponentError(
                f"{self._kind} {name!r} factory returned {type(instance).__name__}, "
                f"not a {self._base_type.__name__}"
            )
        instance._component_spec = {
            "component": self._kind,
            "name": name,
            "params": {key: params[key] for key in sorted(params)},
            "schema": COMPONENT_SCHEMA_VERSION,
        }
        return instance

    def spec(self, instance: object) -> dict[str, object]:
        """The canonical spec dict of a registry-built instance.

        Only instances constructed through :meth:`build` / :meth:`from_spec`
        carry a spec; a directly-constructed instance fails loudly so sweep
        code cannot silently bypass the registry.
        """
        stamped = getattr(instance, "_component_spec", None)
        if stamped is None or stamped.get("component") != self._kind:
            raise ComponentError(
                f"{type(instance).__name__} instance was not built by the "
                f"{self._kind} registry; construct it via build() or from_spec()"
            )
        return {
            "component": stamped["component"],
            "name": stamped["name"],
            "params": dict(stamped["params"]),
            "schema": stamped["schema"],
        }

    def from_spec(self, data: object) -> object:
        """Inverse of :meth:`spec`: validate a spec dict and build it."""
        if not isinstance(data, Mapping):
            raise ComponentError(
                f"{self._kind} spec must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - set(_SPEC_FIELDS))
        if unknown:
            raise ComponentError(f"{self._kind} spec has unknown field(s) {unknown}")
        missing = sorted(field for field in _SPEC_FIELDS if field not in data)
        if missing:
            raise ComponentError(f"{self._kind} spec is missing field(s) {missing}")
        schema = data["schema"]
        if schema != COMPONENT_SCHEMA_VERSION:
            raise ComponentError(
                f"unsupported component spec field 'schema': expected "
                f"{COMPONENT_SCHEMA_VERSION}, got {schema!r}"
            )
        component = data["component"]
        if component != self._kind:
            raise ComponentError(
                f"spec field 'component' is {component!r}, "
                f"but this is the {self._kind!r} registry"
            )
        params = data["params"]
        if not isinstance(params, Mapping):
            raise ComponentError(
                f"{self._kind} spec field 'params' must be a mapping, "
                f"got {type(params).__name__}"
            )
        name = data["name"]
        self._factory_for(name)
        return self.build(name, params)
