"""Residual timing/behaviour side-channel analysis.

The paper's countermeasure discussion warns that hiding record *lengths* may
not be enough: "there could be timing side-channels that may still exist even
after this fix".  This module demonstrates one such channel that none of the
record-length defences touch:

* an ordinary client request is followed, within about an RTT, by a large
  downlink burst (the requested media chunk);
* a state report is followed only by a tiny acknowledgement.

So the *pattern* "uplink record with no downlink burst behind it" marks the
state reports regardless of their (padded, split or compressed) lengths, and
two such records close together mark a non-default choice.  The
:class:`TimingOnlyAttack` decodes choices from that signal alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.features import ClientRecord
from repro.core.inference import ChoiceEvent, InferredChoices
from repro.exceptions import DefenseError
from repro.net.capture import CapturedTrace


@dataclass(frozen=True)
class TimingOnlyAttack:
    """Choice recovery from request/response behaviour, ignoring record lengths.

    Parameters
    ----------
    response_window_seconds:
        How long after an uplink record to look for the downlink response.
        The window only needs to cover a few round-trip times: a chunk
        request is answered within one RTT, whereas the content prefetched
        after a state report only starts arriving hundreds of milliseconds
        later, so a short window keeps the two distinguishable.
    burst_threshold_bytes:
        Downlink volume below which the uplink record is considered
        "unanswered" (i.e. a state report rather than a chunk request).
    grouping_window_seconds:
        Two unanswered uplink records within this window are treated as the
        type-1/type-2 pair of a single non-default choice.
    ignore_initial_seconds:
        Records this close to the start of the capture are skipped: session
        start-up (handshake, the first low-quality chunks) does not follow
        the steady-state request/response pattern the heuristic relies on.
    """

    response_window_seconds: float = 0.15
    burst_threshold_bytes: int = 4000
    grouping_window_seconds: float = 12.0
    ignore_initial_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.response_window_seconds <= 0:
            raise DefenseError("response window must be positive")
        if self.burst_threshold_bytes <= 0:
            raise DefenseError("burst threshold must be positive")
        if self.grouping_window_seconds <= 0:
            raise DefenseError("grouping window must be positive")
        if self.ignore_initial_seconds < 0:
            raise DefenseError("initial ignore window must be non-negative")

    def unanswered_uplink_times(
        self, records: Sequence[ClientRecord], trace: CapturedTrace
    ) -> list[float]:
        """Timestamps of client records not followed by a media-sized response."""
        if not records:
            raise DefenseError("no client records supplied")
        downlink = sorted(trace.server_packets(), key=lambda packet: packet.timestamp)
        down_times = np.asarray([packet.timestamp for packet in downlink], dtype=float)
        down_sizes = np.asarray([packet.wire_length for packet in downlink], dtype=float)
        cumulative = np.concatenate([[0.0], np.cumsum(down_sizes)])
        capture_start = min(record.timestamp for record in records)
        times: list[float] = []
        for record in records:
            if not record.is_application_data:
                continue
            if record.timestamp - capture_start < self.ignore_initial_seconds:
                continue
            start = np.searchsorted(down_times, record.timestamp, side="left")
            end = np.searchsorted(
                down_times, record.timestamp + self.response_window_seconds, side="right"
            )
            window_bytes = float(cumulative[end] - cumulative[start])
            if window_bytes < self.burst_threshold_bytes:
                times.append(record.timestamp)
        return times

    def infer(
        self, records: Sequence[ClientRecord], trace: CapturedTrace
    ) -> InferredChoices:
        """Recover the choice sequence using only timing/behaviour."""
        times = sorted(self.unanswered_uplink_times(records, trace))
        events: list[ChoiceEvent] = []
        index = 0
        position = 0
        while position < len(times):
            start = times[position]
            group_end = position
            while (
                group_end + 1 < len(times)
                and times[group_end + 1] - start <= self.grouping_window_seconds
            ):
                group_end += 1
            group = times[position : group_end + 1]
            took_default = len(group) < 2
            events.append(
                ChoiceEvent(
                    index=index,
                    question_shown_at=start,
                    took_default=took_default,
                    type2_seen_at=None if took_default else group[-1],
                )
            )
            index += 1
            position = group_end + 1
        return InferredChoices(events=tuple(events))


def timing_question_recall(
    inferred: InferredChoices, true_question_times: Sequence[float], tolerance_seconds: float = 8.0
) -> float:
    """Fraction of actual questions the timing attack located (within a tolerance)."""
    if not true_question_times:
        raise DefenseError("no ground-truth question times supplied")
    if tolerance_seconds <= 0:
        raise DefenseError("tolerance must be positive")
    detected = [event.question_shown_at for event in inferred.events]
    found = 0
    for true_time in true_question_times:
        if any(abs(true_time - candidate) <= tolerance_seconds for candidate in detected):
            found += 1
    return found / len(true_question_times)
