"""Measuring how much each countermeasure actually buys.

The evaluation assumes an *adaptive* attacker: the fingerprinting step is
re-trained on defended traffic (a weaker, unaware attacker would do strictly
worse).  Because several defences make the type-1/type-2 bands collide —
which is precisely their goal — the adaptive attacker falls back from the
band rule to a k-NN classifier over the defended record lengths; when even
that cannot separate the classes, the recovered choices collapse to the
majority behaviour and accuracy drops toward chance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.classifier import MLRecordClassifier
from repro.core.evaluation import AttackEvaluation, evaluate_attack_result
from repro.core.features import ClientRecord, extract_client_records
from repro.core.inference import infer_choices
from repro.defenses.base import RecordDefense, apply_defense
from repro.defenses.timing import TimingOnlyAttack, timing_question_recall
from repro.exceptions import DefenseError
from repro.ml.knn import KNearestNeighbors
from repro.streaming.events import EventKind
from repro.streaming.session import SessionResult


@dataclass(frozen=True)
class DefenseEvaluation:
    """Scores of the attack (and the residual timing attack) under one defence.

    ``timing_question_recall`` measures the residual *timing* channel the
    paper warns about: the fraction of actual choice questions whose instant
    a record-length-blind attacker can still locate from request/response
    behaviour alone.  None of the record-length defences touch it.
    """

    defense_name: str
    choice_accuracy: float
    record_accuracy: float
    mean_overhead_bytes_per_session: float
    timing_attack_choice_accuracy: float
    timing_question_recall: float
    sessions_evaluated: int

    def as_row(self) -> dict[str, object]:
        """One row of the defence-ablation table."""
        return {
            "defense": self.defense_name,
            "choice_accuracy": round(self.choice_accuracy, 4),
            "record_accuracy": round(self.record_accuracy, 4),
            "overhead_bytes_per_session": round(self.mean_overhead_bytes_per_session, 1),
            "timing_attack_choice_accuracy": round(self.timing_attack_choice_accuracy, 4),
            "timing_question_recall": round(self.timing_question_recall, 4),
        }


def _choice_accuracy(evaluations: Sequence[AttackEvaluation]) -> float:
    total = sum(e.ground_truth_choices for e in evaluations)
    correct = sum(e.correct_choices for e in evaluations)
    return correct / total if total else 0.0


def timing_scores(
    session: SessionResult, defended: Sequence[ClientRecord]
) -> tuple[float, float]:
    """(choice accuracy, question recall) of the timing-only attack.

    Shared by the defence ablation and the arena's per-cell scoring: both
    must report the residual timing channel with identical arithmetic.
    """
    attack = TimingOnlyAttack()
    inferred = attack.infer(defended, session.trace)
    truth = session.path.default_pattern
    if not truth:
        return 0.0, 0.0
    correct = sum(
        1
        for index, actual in enumerate(truth)
        if index < len(inferred.default_pattern)
        and inferred.default_pattern[index] == actual
    )
    question_times = [
        event.timestamp
        for event in session.events
        if event.kind is EventKind.QUESTION_SHOWN
    ]
    recall = (
        timing_question_recall(inferred, question_times) if question_times else 0.0
    )
    return correct / len(truth), recall


def evaluate_defenses(
    defenses: Sequence[RecordDefense],
    train_sessions: Sequence[SessionResult],
    test_sessions: Sequence[SessionResult],
    include_undefended: bool = True,
) -> list[DefenseEvaluation]:
    """Evaluate each defence with an adaptive (re-trained) attacker.

    Returns one :class:`DefenseEvaluation` per defence, preceded (when
    ``include_undefended`` is true) by the no-defence reference row.
    """
    if not train_sessions or not test_sessions:
        raise DefenseError("both training and test session sets must be non-empty")

    train_records = [
        extract_client_records(session.trace, server_ip=session.trace.server_ip)
        for session in train_sessions
    ]
    test_records = [
        extract_client_records(session.trace, server_ip=session.trace.server_ip)
        for session in test_sessions
    ]

    def _evaluate(name: str, defense: RecordDefense | None) -> DefenseEvaluation:
        if defense is None:
            defended_train = [list(records) for records in train_records]
            defended_test = [list(records) for records in test_records]
        else:
            defended_train = [apply_defense(defense, records) for records in train_records]
            defended_test = [apply_defense(defense, records) for records in test_records]
        classifier = MLRecordClassifier(KNearestNeighbors(k=7))
        flat_train: list[ClientRecord] = [
            record for records in defended_train for record in records
        ]
        classifier.fit(flat_train)
        evaluations: list[AttackEvaluation] = []
        overheads: list[float] = []
        timing_accuracies: list[float] = []
        timing_recalls: list[float] = []
        for session, original, defended in zip(test_sessions, test_records, defended_test):
            labels = classifier.classify(defended)
            inferred = infer_choices(defended, labels)
            evaluations.append(
                evaluate_attack_result(
                    records=defended,
                    predicted_labels=labels,
                    inferred=inferred,
                    ground_truth_path=session.path,
                )
            )
            if defense is not None:
                overheads.append(float(defense.overhead_bytes(original, defended)))
            else:
                overheads.append(0.0)
            timing_accuracy, recall = timing_scores(session, defended)
            timing_accuracies.append(timing_accuracy)
            timing_recalls.append(recall)
        return DefenseEvaluation(
            defense_name=name,
            choice_accuracy=_choice_accuracy(evaluations),
            record_accuracy=sum(e.record_accuracy for e in evaluations) / len(evaluations),
            mean_overhead_bytes_per_session=sum(overheads) / len(overheads),
            timing_attack_choice_accuracy=sum(timing_accuracies) / len(timing_accuracies),
            timing_question_recall=sum(timing_recalls) / len(timing_recalls),
            sessions_evaluated=len(test_sessions),
        )

    results: list[DefenseEvaluation] = []
    if include_undefended:
        results.append(_evaluate("no defense", None))
    for defense in defenses:
        results.append(_evaluate(defense.instance_name, defense))
    return results
