"""The defense registry: stable names + params dicts → :class:`RecordDefense`.

Sweep cells, job specs and the coordinator wire format never hold defense
*instances* — they hold specs (``defense_spec``) and rebuild instances on the
other side (``defense_from_spec``), exactly like job specs round-trip through
``job_from_dict``.  See :mod:`repro.components` for the spec grammar.
"""

from __future__ import annotations

from typing import Mapping

from repro.components import ComponentRegistry
from repro.defenses.base import RecordDefense
from repro.defenses.compression import CompressStateReports
from repro.defenses.padding import PadToConstant, PadToMultiple
from repro.defenses.splitting import SplitRecords

#: The registry of every sweepable defense.
DEFENSE_REGISTRY = ComponentRegistry("defense", RecordDefense)
DEFENSE_REGISTRY.register("pad-to-multiple", PadToMultiple)
DEFENSE_REGISTRY.register("pad-to-constant", PadToConstant)
DEFENSE_REGISTRY.register("split-records", SplitRecords)
DEFENSE_REGISTRY.register("compress-state-reports", CompressStateReports)


def defense_names() -> tuple[str, ...]:
    """The registered defense names, sorted."""
    return DEFENSE_REGISTRY.names()


def build_defense(
    name: str, params: Mapping[str, object] | None = None
) -> RecordDefense:
    """Construct a defense from its registry name and a params dict."""
    defense = DEFENSE_REGISTRY.build(name, params)
    assert isinstance(defense, RecordDefense)
    return defense


def defense_spec(defense: RecordDefense) -> dict[str, object]:
    """The canonical, wire-ready spec dict of a registry-built defense."""
    return DEFENSE_REGISTRY.spec(defense)


def defense_from_spec(data: object) -> RecordDefense:
    """Rebuild a defense from its spec dict (inverse of :func:`defense_spec`)."""
    defense = DEFENSE_REGISTRY.from_spec(data)
    assert isinstance(defense, RecordDefense)
    return defense
