"""Splitting defence: send the JSON state report as several smaller records."""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.core.features import ClientRecord
from repro.defenses.base import RecordDefense
from repro.exceptions import DefenseError
from repro.tls.records import RECORD_HEADER_LENGTH


class SplitRecords(RecordDefense):
    """Split large client application records into ``parts`` smaller ones.

    Each part carries roughly ``1/parts`` of the original payload plus its own
    record header and AEAD overhead, so the defence costs a few tens of bytes
    per split while pushing the fragments' lengths into the range occupied by
    ordinary requests.
    """

    def __init__(
        self,
        parts: int = 3,
        min_length_to_split: int = 1800,
        per_part_overhead: int = RECORD_HEADER_LENGTH + 24,
    ) -> None:
        if parts < 2:
            raise DefenseError(f"splitting needs at least 2 parts, got {parts}")
        if min_length_to_split <= 0:
            raise DefenseError("minimum split length must be positive")
        if per_part_overhead < 0:
            raise DefenseError("per-part overhead must be non-negative")
        self._parts = parts
        self._min_length = min_length_to_split
        self._overhead = per_part_overhead
        self._instance_name = f"split-into-{parts}"

    @property
    def parts(self) -> int:
        """How many records each large report becomes."""
        return self._parts

    def transform(self, records: Sequence[ClientRecord]) -> list[ClientRecord]:
        defended: list[ClientRecord] = []
        for record in records:
            if not record.is_application_data or record.wire_length < self._min_length:
                defended.append(record)
                continue
            payload = record.wire_length - self._overhead
            base = payload // self._parts
            remainder = payload - base * self._parts
            for part in range(self._parts):
                part_payload = base + (1 if part < remainder else 0)
                # All parts keep the original timestamp: the split records go
                # out back to back, and keeping the time untouched preserves
                # the capture's ordering invariants.
                defended.append(
                    replace(record, wire_length=part_payload + self._overhead)
                )
        return defended
