"""The defence interface: a transformation of the observable record sequence.

A deployed countermeasure would change what the client's TLS stack puts on
the wire; from the eavesdropper's perspective that is exactly a change to the
sequence of (timestamp, record length) observations.  Modelling defences as
:class:`RecordDefense` transformations of :class:`~repro.core.features.ClientRecord`
sequences therefore captures their entire effect on the attack, while keeping
ground-truth labels attached so the defended traffic can still be scored.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from typing import Sequence

from repro.core.features import ClientRecord
from repro.exceptions import DefenseError


class RecordDefense(ABC):
    """A transformation applied to the client-side record sequence."""

    #: Legacy display name set by subclass constructors; superseded by the
    #: registry-derived :attr:`instance_name` for registry-built instances.
    _instance_name: str | None = None

    @property
    def instance_name(self) -> str:
        """Unique, parameter-bearing name used in evaluation tables.

        Registry-built instances derive it from their component spec (e.g.
        ``"pad-to-multiple(block_bytes=64)"``), so two differently-tuned
        instances of the same class can never collide in a table.  Directly
        constructed instances fall back to the legacy constructor-set name.
        """
        spec = getattr(self, "_component_spec", None)
        if spec is not None:
            from repro.components import component_instance_name

            return component_instance_name(spec)
        if self._instance_name is not None:
            return self._instance_name
        return "defense"

    @property
    def name(self) -> str:
        """Deprecated alias of :attr:`instance_name`; removed next release."""
        warnings.warn(
            "RecordDefense.name is deprecated; use RecordDefense.instance_name",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.instance_name

    @abstractmethod
    def transform(self, records: Sequence[ClientRecord]) -> list[ClientRecord]:
        """Return the record sequence as it would appear with the defence deployed."""

    def overhead_bytes(
        self, original: Sequence[ClientRecord], defended: Sequence[ClientRecord]
    ) -> int:
        """Extra bytes on the wire caused by the defence (can be negative)."""
        return sum(r.wire_length for r in defended) - sum(r.wire_length for r in original)


def apply_defense(
    defense: RecordDefense, records: Sequence[ClientRecord]
) -> list[ClientRecord]:
    """Apply a defence and sanity-check the result."""
    if not records:
        raise DefenseError("cannot defend an empty record sequence")
    defended = defense.transform(records)
    if not defended:
        raise DefenseError(
            f"defence {defense.instance_name!r} produced an empty record sequence"
        )
    timestamps = [record.timestamp for record in defended]
    if timestamps != sorted(timestamps):
        raise DefenseError(
            f"defence {defense.instance_name!r} broke record time ordering"
        )
    return defended
