"""Countermeasures against the record-length side-channel.

Section VI of the paper sketches the obvious fixes — split the JSON state
report across records, or pad/compress it so its length stops being
distinctive — and warns that a timing side-channel may survive them.  This
package implements those defences as transformations of the observable
client-record sequence, plus an evaluation harness measuring how much each
defence actually degrades the attack and a residual-timing analysis.
"""

from repro.defenses.padding import PadToConstant, PadToMultiple
from repro.defenses.splitting import SplitRecords
from repro.defenses.compression import CompressStateReports
from repro.defenses.base import RecordDefense, apply_defense
from repro.defenses.timing import TimingOnlyAttack, timing_question_recall
from repro.defenses.evaluation import DefenseEvaluation, evaluate_defenses, timing_scores
from repro.defenses.registry import (
    DEFENSE_REGISTRY,
    build_defense,
    defense_from_spec,
    defense_names,
    defense_spec,
)

__all__ = [
    "CompressStateReports",
    "DEFENSE_REGISTRY",
    "DefenseEvaluation",
    "PadToConstant",
    "PadToMultiple",
    "RecordDefense",
    "SplitRecords",
    "TimingOnlyAttack",
    "apply_defense",
    "build_defense",
    "defense_from_spec",
    "defense_names",
    "defense_spec",
    "evaluate_defenses",
    "timing_question_recall",
    "timing_scores",
]
