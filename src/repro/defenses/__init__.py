"""Countermeasures against the record-length side-channel.

Section VI of the paper sketches the obvious fixes — split the JSON state
report across records, or pad/compress it so its length stops being
distinctive — and warns that a timing side-channel may survive them.  This
package implements those defences as transformations of the observable
client-record sequence, plus an evaluation harness measuring how much each
defence actually degrades the attack and a residual-timing analysis.
"""

from repro.defenses.padding import PadToConstant, PadToMultiple
from repro.defenses.splitting import SplitRecords
from repro.defenses.compression import CompressStateReports
from repro.defenses.base import RecordDefense, apply_defense
from repro.defenses.timing import TimingOnlyAttack, timing_question_recall
from repro.defenses.evaluation import DefenseEvaluation, evaluate_defenses

__all__ = [
    "PadToConstant",
    "PadToMultiple",
    "SplitRecords",
    "CompressStateReports",
    "RecordDefense",
    "apply_defense",
    "TimingOnlyAttack",
    "timing_question_recall",
    "DefenseEvaluation",
    "evaluate_defenses",
]
