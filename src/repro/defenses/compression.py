"""Compression defence: shrink the JSON reports before encryption.

Compressing the state report both reduces its size and — because compressed
size depends on content — adds variance, which can smear the two JSON bands
into the range of other client traffic.  The model applies a content-dependent
compression ratio to records in the state-report size range.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.core.features import ClientRecord
from repro.defenses.base import RecordDefense
from repro.exceptions import DefenseError
from repro.utils.rng import RandomSource


class CompressStateReports(RecordDefense):
    """Apply a lossless-compression size model to large client records.

    Parameters
    ----------
    mean_ratio:
        Average compressed/original size ratio for the JSON reports (they are
        highly compressible: mostly ASCII keys and repeated structure).
    ratio_jitter:
        Half-width of the uniform jitter applied to the ratio per record,
        modelling content-dependence of the compressor output.
    min_length_to_compress:
        Records smaller than this are left alone (compressing a 200-byte
        request saves nothing once headers are accounted for).
    seed:
        Seed of the jitter stream, so defended traces are reproducible.
    """

    def __init__(
        self,
        mean_ratio: float = 0.35,
        ratio_jitter: float = 0.08,
        min_length_to_compress: int = 1800,
        seed: int = 7,
    ) -> None:
        if not 0.0 < mean_ratio <= 1.0:
            raise DefenseError("mean compression ratio must be in (0, 1]")
        if ratio_jitter < 0 or mean_ratio - ratio_jitter <= 0:
            raise DefenseError("ratio jitter must keep the ratio positive")
        if min_length_to_compress <= 0:
            raise DefenseError("minimum compressible length must be positive")
        self._mean_ratio = mean_ratio
        self._jitter = ratio_jitter
        self._min_length = min_length_to_compress
        self._rng = RandomSource(seed, ("compression-defense",))
        self._instance_name = f"compress-ratio-{mean_ratio:.2f}"

    def transform(self, records: Sequence[ClientRecord]) -> list[ClientRecord]:
        defended: list[ClientRecord] = []
        for index, record in enumerate(records):
            if not record.is_application_data or record.wire_length < self._min_length:
                defended.append(record)
                continue
            ratio = self._mean_ratio + self._rng.child(index).uniform(
                -self._jitter, self._jitter
            )
            compressed = max(64, int(round(record.wire_length * ratio)))
            defended.append(replace(record, wire_length=compressed))
        return defended
