"""Padding defences: make record lengths uninformative by rounding them up."""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.core.features import ClientRecord
from repro.defenses.base import RecordDefense
from repro.exceptions import DefenseError


class PadToMultiple(RecordDefense):
    """Pad every client application record up to a multiple of ``block_bytes``.

    Small blocks leave the JSON bands distinguishable (they map to distinct
    multiples); large blocks merge them with other traffic at the cost of
    padding overhead.  The defence ablation benchmark sweeps the block size.
    """

    def __init__(self, block_bytes: int) -> None:
        if block_bytes <= 0:
            raise DefenseError(f"block size must be positive, got {block_bytes}")
        self._block = block_bytes
        self._instance_name = f"pad-to-multiple-{block_bytes}"

    @property
    def block_bytes(self) -> int:
        """The padding granularity."""
        return self._block

    def _padded_length(self, length: int) -> int:
        remainder = length % self._block
        if remainder == 0:
            return length
        return length + (self._block - remainder)

    def transform(self, records: Sequence[ClientRecord]) -> list[ClientRecord]:
        return [
            replace(record, wire_length=self._padded_length(record.wire_length))
            if record.is_application_data
            else record
            for record in records
        ]


class PadToConstant(RecordDefense):
    """Pad every client application record up to one constant size.

    Records already larger than the constant are left unchanged (they would
    otherwise have to be split, which is the job of
    :class:`~repro.defenses.splitting.SplitRecords`).
    """

    def __init__(self, target_bytes: int = 4096) -> None:
        if target_bytes <= 0:
            raise DefenseError(f"target size must be positive, got {target_bytes}")
        self._target = target_bytes
        self._instance_name = f"pad-to-constant-{target_bytes}"

    @property
    def target_bytes(self) -> int:
        """The constant record size."""
        return self._target

    def transform(self, records: Sequence[ClientRecord]) -> list[ClientRecord]:
        return [
            replace(record, wire_length=max(record.wire_length, self._target))
            if record.is_application_data
            else record
            for record in records
        ]
