"""The multi-source watch fleet: many capture boxes, one attack service.

``repro watch --source A --source B …`` scales the PR 5 single-directory
watcher to a fleet of capture sources.  Each source is a drop directory
(optionally watched recursively) with its own :class:`CaptureWatcher`;
arrivals from every source funnel through one :class:`BoundedIngestQueue`
into one :class:`~repro.ingest.service.StreamingAttackService`, and every
verdict is stamped with the source that produced it.

Three properties drive the design:

* **Determinism (the PR 5 wall, multiplied).**  Sources are processed in
  *canonical order* — sorted by their attribution label — and within a
  source captures keep the watcher's name order.  Offers enter the queue in
  that order, the queue is FIFO, and parked overflow is promoted in the
  same order, so the global processing order is canonical under any queue
  bound or worker count.  A multi-source ``--once`` run therefore writes a
  results log byte-identical to N serial single-source runs concatenated in
  canonical source order, and a kill/restart converges on the same bytes
  (the killed run wrote a canonical prefix; the restart appends the
  canonical suffix).

* **Bounded memory.**  The queue holds at most ``queue_high`` pending
  captures; arrivals beyond the bound park in per-source pending sets (a
  name each, not a buffer) and are promoted once the depth drains to
  ``queue_low``.  Entering saturation fires ``on_saturated`` exactly once
  per episode so backpressure is observable, never silent.

* **Hot reload, never mid-attack.**  When ``reload_library`` names a
  staging path, its content fingerprint is checked between batches; a
  change swaps the service's library atomically between captures and fires
  ``on_reloaded``.  Corrupt staged bytes are reported and ignored — the old
  library keeps serving.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Protocol, Sequence

from repro.core.fingerprint import FingerprintLibrary
from repro.exceptions import IngestError, ReproError
from repro.ingest.log import CaptureVerdict
from repro.ingest.watcher import DEFAULT_QUIET_SECONDS, CaptureWatcher

#: Default bounded-queue watermarks: the queue never holds more than
#: ``DEFAULT_QUEUE_HIGH`` pending captures, and parked arrivals are promoted
#: once it drains to ``DEFAULT_QUEUE_LOW``.
DEFAULT_QUEUE_HIGH = 256
DEFAULT_QUEUE_LOW = 128


@dataclass(frozen=True)
class FleetSource:
    """One capture source: the label verdicts carry and the directory."""

    label: str
    directory: Path


def validate_sources(
    sources: Sequence[str | Path],
    resolve: Callable[[str | Path], Path] = Path,
) -> tuple[FleetSource, ...]:
    """Resolve, validate and canonically order the fleet's capture sources.

    Fails loudly — naming ``--source`` — on an empty list, a missing
    directory, the same directory given twice, or one source nested inside
    another (a recursive fleet would attribute the nested captures to both).
    Returns the sources sorted by label: the canonical order every fleet
    run, serial reference, and merged log agrees on.  ``resolve`` anchors
    relative paths (the runner passes its workspace's resolver); the
    attribution label is always the ``--source`` string as given.
    """
    if not sources:
        raise IngestError("at least one --source directory is required")
    seen_labels: set[str] = set()
    resolved: list[tuple[FleetSource, Path]] = []
    for raw in sources:
        label = str(raw)
        directory = resolve(raw)
        if not directory.is_dir():
            raise IngestError(
                f"capture source {label} does not exist "
                "(--source must name an existing directory)"
            )
        if label in seen_labels:
            raise IngestError(f"duplicate --source directory {label}")
        seen_labels.add(label)
        real = directory.resolve()
        for other, other_real in resolved:
            if real == other_real:
                raise IngestError(
                    f"duplicate --source directory {label} "
                    f"(resolves to the same directory as {other.label})"
                )
            if real.is_relative_to(other_real) or other_real.is_relative_to(real):
                inner, outer = (
                    (label, other.label)
                    if real.is_relative_to(other_real)
                    else (other.label, label)
                )
                raise IngestError(
                    f"--source directories overlap: {inner} is inside {outer} "
                    "(captures there would be attributed to both sources)"
                )
        resolved.append((FleetSource(label=label, directory=directory), real))
    return tuple(sorted((source for source, _ in resolved), key=lambda s: s.label))


def validate_watermarks(high: int, low: int) -> None:
    """Queue watermark sanity, shared by the CLI spec and the queue itself."""
    if high < 1:
        raise IngestError(
            f"--queue-high must be a positive capture count, got {high}"
        )
    if low < 0:
        raise IngestError(f"--queue-low must be >= 0, got {low}")
    if high <= low:
        raise IngestError(
            f"--queue-high ({high}) must be greater than --queue-low ({low}) "
            "— the queue must drain below the low watermark before parked "
            "captures are promoted"
        )


class BoundedIngestQueue:
    """A FIFO capture queue with high/low watermarks and per-source parking.

    At most ``high_watermark`` captures are pending at once.  Offers beyond
    the bound *park*: the capture's path joins its source's parked set (an
    entry per capture, not a buffer — memory stays O(names)) and is promoted
    back into the pending queue, in canonical ``(source, path)`` order, once
    a drain brings the depth down to ``low_watermark``.  The first park of a
    saturation episode fires ``on_saturated(source, depth)``.

    Determinism: offers arrive in canonical order, the pending queue is
    FIFO, and promotion re-inserts parked captures in canonical order — so
    the order captures *leave* the queue is independent of where the bound
    happened to cut.
    """

    def __init__(
        self,
        high_watermark: int = DEFAULT_QUEUE_HIGH,
        low_watermark: int = DEFAULT_QUEUE_LOW,
        on_saturated: Callable[[str, int], None] | None = None,
    ) -> None:
        validate_watermarks(high_watermark, low_watermark)
        self._high = high_watermark
        self._low = low_watermark
        self._on_saturated = on_saturated
        self._pending: deque[tuple[str, Path]] = deque()
        self._parked: dict[str, deque[Path]] = {}
        self._seen: set[tuple[str, str]] = set()
        self._saturated = False
        self._peak_depth = 0
        self._saturation_events = 0

    @property
    def high_watermark(self) -> int:
        return self._high

    @property
    def low_watermark(self) -> int:
        return self._low

    @property
    def peak_depth(self) -> int:
        """The deepest the pending queue has ever been (≤ high watermark)."""
        return self._peak_depth

    @property
    def parked_count(self) -> int:
        """Captures currently parked beyond the bound, across all sources."""
        return sum(len(parked) for parked in self._parked.values())

    @property
    def saturation_events(self) -> int:
        """How many saturation episodes the queue has entered."""
        return self._saturation_events

    @property
    def saturated(self) -> bool:
        """Whether the queue is currently holding parked overflow."""
        return self._saturated

    def __len__(self) -> int:
        return len(self._pending)

    def offer(self, source: str, paths: Iterable[Path]) -> list[Path]:
        """Enqueue one source's new arrivals; returns the accepted ones.

        Dedup key is ``(source, path)`` — each capture enters the fleet
        exactly once per process however many scans re-report it.
        """
        accepted: list[Path] = []
        for path in sorted(Path(path) for path in paths):
            key = (source, str(path))
            if key in self._seen:
                continue
            self._seen.add(key)
            accepted.append(path)
            # Once anything is parked, every new arrival parks too — letting
            # it jump into the pending queue would overtake older parked
            # captures and break FIFO (and with it, canonical order).
            if not self._parked and len(self._pending) < self._high:
                self._pending.append((source, path))
                self._peak_depth = max(self._peak_depth, len(self._pending))
            else:
                self._parked.setdefault(source, deque()).append(path)
                if not self._saturated:
                    self._saturated = True
                    self._saturation_events += 1
                    if self._on_saturated is not None:
                        self._on_saturated(source, len(self._pending))
        return accepted

    def drain_next_batch(self) -> tuple[str, list[Path]] | None:
        """Pop the longest same-source prefix of the queue, then refill.

        Returns ``(source, paths)`` or ``None`` when nothing is pending.
        Batches are same-source because the attack service attributes one
        batch to one source; the FIFO prefix rule keeps canonical order.
        """
        if not self._pending:
            self._refill()
            if not self._pending:
                return None
        source, first = self._pending.popleft()
        batch = [first]
        while self._pending and self._pending[0][0] == source:
            batch.append(self._pending.popleft()[1])
        self._refill()
        return source, batch

    def _refill(self) -> None:
        """Promote parked captures once the depth has drained far enough."""
        if not self._parked or len(self._pending) > self._low:
            return
        while len(self._pending) < self._high and self._parked:
            source = min(self._parked)  # canonical order across sources
            parked = self._parked[source]
            self._pending.append((source, parked.popleft()))
            if not parked:
                del self._parked[source]
        self._peak_depth = max(self._peak_depth, len(self._pending))
        if not self._parked:
            self._saturated = False


class LibraryReloadWatcher:
    """Watches a staged fingerprint-library file for content changes.

    :meth:`poll` fingerprints the staged bytes; when the content has changed
    since the last successful load it parses a fresh
    :class:`FingerprintLibrary` and returns it (or reports the failure and
    keeps serving the old one — a half-written or corrupt stage must never
    take the fleet down).  The content check means a ``touch`` with
    identical bytes is a no-op: reloads are keyed by fingerprint, not mtime.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        library, fingerprint = self._load()  # startup: fail loudly
        self._library = library
        self._fingerprint = fingerprint
        self._bad_fingerprint: str | None = None

    @property
    def path(self) -> Path:
        return self._path

    @property
    def library(self) -> FingerprintLibrary:
        """The most recently loaded (valid) library."""
        return self._library

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the library currently in service."""
        return self._fingerprint

    def _read(self) -> bytes:
        try:
            return self._path.read_bytes()
        except OSError as error:
            raise IngestError(
                f"cannot read --reload-library {self._path}: {error}"
            ) from error

    def _load(self) -> tuple[FingerprintLibrary, str]:
        raw = self._read()
        fingerprint = hashlib.sha256(raw).hexdigest()
        try:
            library = FingerprintLibrary.load(self._path)
        except ReproError as error:
            raise IngestError(
                f"--reload-library {self._path} is not a loadable fingerprint "
                f"library: {error}"
            ) from error
        return library, fingerprint

    def poll(
        self, on_error: Callable[[ReproError], None] | None = None
    ) -> FingerprintLibrary | None:
        """Return a freshly staged library, or ``None`` if nothing changed.

        A staged file whose bytes fail to parse is reported through
        ``on_error`` once per distinct content (no warning storms while a
        writer is mid-copy) and otherwise ignored.
        """
        try:
            raw = self._read()
        except IngestError as error:
            # The stage was deleted or is mid-replace: keep the old library.
            if on_error is not None and self._bad_fingerprint != "<unreadable>":
                self._bad_fingerprint = "<unreadable>"
                on_error(error)
            return None
        fingerprint = hashlib.sha256(raw).hexdigest()
        if fingerprint in (self._fingerprint, self._bad_fingerprint):
            return None
        try:
            library = FingerprintLibrary.load(self._path)
        except ReproError as error:
            self._bad_fingerprint = fingerprint
            if on_error is not None:
                on_error(
                    IngestError(
                        f"staged library {self._path} is corrupt; keeping the "
                        f"current library: {error}"
                    )
                )
            return None
        self._library = library
        self._fingerprint = fingerprint
        self._bad_fingerprint = None
        return library


class AttackServiceLike(Protocol):
    """What the fleet needs from its attack service (duck-typed for tests)."""

    def process(
        self,
        paths: Iterable[str | Path],
        on_verdict: Callable[[CaptureVerdict, object], None] | None = None,
        on_skip: Callable[[Path, str], None] | None = None,
        source: str | None = None,
    ) -> list[CaptureVerdict]: ...

    def replace_library(self, library: FingerprintLibrary) -> None: ...


class FleetWatchService:
    """Drives N capture sources through one attack service, in order.

    The fleet owns the watchers, the bounded queue and the reload watcher;
    the attack itself is delegated to ``service`` (anything satisfying
    :class:`AttackServiceLike` — the stress harness substitutes a recording
    stub to flood the queue without attacking real pcaps).
    """

    def __init__(
        self,
        service: AttackServiceLike,
        sources: Sequence[FleetSource],
        recursive: bool = False,
        queue_high: int = DEFAULT_QUEUE_HIGH,
        queue_low: int = DEFAULT_QUEUE_LOW,
        reload_watcher: LibraryReloadWatcher | None = None,
        quiet_seconds: float = DEFAULT_QUIET_SECONDS,
        clock: Callable[[], float] = time.time,
        on_saturated: Callable[[str, int], None] | None = None,
        on_reloaded: Callable[[str, str], None] | None = None,
        on_arrival: Callable[[str, Path], None] | None = None,
    ) -> None:
        self._service = service
        self._sources = tuple(sources)
        self._watchers = [
            (
                source,
                CaptureWatcher(
                    source.directory,
                    recursive=recursive,
                    quiet_seconds=quiet_seconds,
                    clock=clock,
                ),
            )
            for source in self._sources
        ]
        self._queue = BoundedIngestQueue(
            high_watermark=queue_high,
            low_watermark=queue_low,
            on_saturated=on_saturated,
        )
        self._reload = reload_watcher
        self._on_reloaded = on_reloaded
        self._on_arrival = on_arrival

    @property
    def queue(self) -> BoundedIngestQueue:
        """The fleet's bounded queue (metrics reads its gauges)."""
        return self._queue

    @property
    def sources(self) -> tuple[FleetSource, ...]:
        """The fleet's sources, in canonical order."""
        return self._sources

    def _maybe_reload(
        self, on_error: Callable[[ReproError], None] | None
    ) -> None:
        """Swap in a freshly staged library — between batches, never mid-attack."""
        if self._reload is None:
            return
        library = self._reload.poll(on_error=on_error)
        if library is not None:
            self._service.replace_library(library)
            if self._on_reloaded is not None:
                self._on_reloaded(
                    str(self._reload.path), self._reload.fingerprint
                )

    def run(
        self,
        follow: bool = False,
        poll_interval: float = 0.5,
        on_verdict: Callable[[CaptureVerdict, object], None] | None = None,
        on_skip: Callable[[Path, str], None] | None = None,
        on_error: Callable[[ReproError], None] | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> list[CaptureVerdict]:
        """Drain every source, optionally following them for new arrivals.

        The loop structure mirrors the single-source service: scan every
        source (canonical order), offer arrivals into the bounded queue,
        drain same-source batches through ``service.process`` (with the
        hot-reload check between batches), then poll again.  One-shot mode
        (``follow=False``) performs a single quiescent pass over every
        source and drains the queue to empty — parked overflow included —
        before returning.

        A batch failure kills a one-shot run (the caller asked for exactly
        this drain) but only warns — via ``on_error`` — in follow mode; the
        failed batch's unlogged captures are re-examined on restart, exactly
        as in the single-source loop.
        """
        fresh: list[CaptureVerdict] = []
        while True:
            for source, watcher in self._watchers:
                found = watcher.scan(assume_quiescent=not follow)
                accepted = self._queue.offer(source.label, found)
                if self._on_arrival is not None:
                    for path in accepted:
                        self._on_arrival(source.label, path)
            while True:
                batch = self._queue.drain_next_batch()
                if batch is None:
                    break
                self._maybe_reload(on_error)
                label, paths = batch
                try:
                    fresh.extend(
                        self._service.process(
                            paths,
                            on_verdict=on_verdict,
                            on_skip=on_skip,
                            source=label,
                        )
                    )
                except ReproError as error:
                    if not follow:
                        raise
                    if on_error is not None:
                        on_error(error)
            if not follow:
                return fresh
            if should_stop is not None and should_stop():
                return fresh
            time.sleep(poll_interval)
