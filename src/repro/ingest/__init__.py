"""Live capture ingest: tail a pcap drop directory and attack as captures land.

The online front end the paper's threat model implies — an eavesdropper
classifies a viewer's choices as the encrypted traffic arrives, not from an
archived corpus.  :class:`CaptureWatcher` detects *finished* captures,
:class:`IngestQueue` deduplicates and orders arrivals,
:class:`StreamingAttackService` attacks them through the engine's streaming
fan-out and appends durable verdicts to a resumable :class:`ResultsLog`.
Surfaced on the command line as ``repro watch``.
"""

from repro.ingest.log import (
    RESULTS_LOG_VERSION,
    CaptureVerdict,
    ResultsLog,
    capture_fingerprint,
)
from repro.ingest.service import (
    SKIP_ALREADY_ATTACKED,
    SKIP_UNREADABLE,
    StreamingAttackService,
)
from repro.ingest.tasks import (
    DEFAULT_CLIENT_IP,
    build_pcap_task,
    entry_environment,
    entry_truth,
    metadata_entries_near,
)
from repro.ingest.watcher import (
    CAPTURE_PATTERN,
    INPROGRESS_SUFFIX,
    CaptureWatcher,
    IngestQueue,
)

__all__ = [
    "CAPTURE_PATTERN",
    "CaptureVerdict",
    "CaptureWatcher",
    "DEFAULT_CLIENT_IP",
    "INPROGRESS_SUFFIX",
    "IngestQueue",
    "RESULTS_LOG_VERSION",
    "ResultsLog",
    "SKIP_ALREADY_ATTACKED",
    "SKIP_UNREADABLE",
    "StreamingAttackService",
    "build_pcap_task",
    "capture_fingerprint",
    "entry_environment",
    "entry_truth",
    "metadata_entries_near",
]
