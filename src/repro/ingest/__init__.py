"""Live capture ingest: tail pcap drop directories and attack as captures land.

The online front end the paper's threat model implies — an eavesdropper
classifies a viewer's choices as the encrypted traffic arrives, not from an
archived corpus.  :class:`CaptureWatcher` detects *finished* captures,
:class:`IngestQueue` deduplicates and orders arrivals,
:class:`StreamingAttackService` attacks them through the engine's streaming
fan-out and appends durable verdicts to a resumable :class:`ResultsLog`.

The fleet layer scales that to many capture boxes at once:
:class:`FleetWatchService` multiplexes N sources (validated and canonically
ordered by :func:`validate_sources`) through a :class:`BoundedIngestQueue`
with explicit backpressure, hot-reloads the fingerprint library via
:class:`LibraryReloadWatcher`, and publishes :class:`IngestMetrics` over a
:class:`MetricsServer` ``/metrics`` endpoint.  Surfaced on the command line
as ``repro watch`` (one positional directory, or ``--source`` repeated).
"""

from repro.ingest.fleet import (
    DEFAULT_QUEUE_HIGH,
    DEFAULT_QUEUE_LOW,
    BoundedIngestQueue,
    FleetSource,
    FleetWatchService,
    LibraryReloadWatcher,
    validate_sources,
    validate_watermarks,
)
from repro.ingest.log import (
    RESULTS_LOG_VERSION,
    CaptureVerdict,
    ResultsLog,
    canonical_log_bytes,
    capture_fingerprint,
    merge_results_logs,
)
from repro.ingest.metrics import METRICS_PATH, IngestMetrics, MetricsServer
from repro.ingest.service import (
    SKIP_ALREADY_ATTACKED,
    SKIP_UNREADABLE,
    StreamingAttackService,
)
from repro.ingest.tasks import (
    DEFAULT_CLIENT_IP,
    build_pcap_task,
    entry_environment,
    entry_truth,
    metadata_entries_near,
)
from repro.ingest.watcher import (
    CAPTURE_PATTERN,
    DEFAULT_QUIET_SECONDS,
    INPROGRESS_SUFFIX,
    CaptureWatcher,
    IngestQueue,
)

__all__ = [
    "BoundedIngestQueue",
    "CAPTURE_PATTERN",
    "CaptureVerdict",
    "CaptureWatcher",
    "DEFAULT_CLIENT_IP",
    "DEFAULT_QUEUE_HIGH",
    "DEFAULT_QUEUE_LOW",
    "DEFAULT_QUIET_SECONDS",
    "FleetSource",
    "FleetWatchService",
    "INPROGRESS_SUFFIX",
    "IngestMetrics",
    "IngestQueue",
    "LibraryReloadWatcher",
    "METRICS_PATH",
    "MetricsServer",
    "RESULTS_LOG_VERSION",
    "ResultsLog",
    "SKIP_ALREADY_ATTACKED",
    "SKIP_UNREADABLE",
    "StreamingAttackService",
    "build_pcap_task",
    "canonical_log_bytes",
    "capture_fingerprint",
    "entry_environment",
    "entry_truth",
    "merge_results_logs",
    "metadata_entries_near",
    "validate_sources",
    "validate_watermarks",
]
