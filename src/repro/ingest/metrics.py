"""Observability for the watch fleet: latency metrics and ``/metrics``.

:class:`IngestMetrics` is a thread-safe gauge/counter board the fleet loop
feeds as captures arrive and verdicts land; :class:`MetricsServer` exposes
its snapshot as JSON over the same stdlib-HTTP idiom
:mod:`repro.coordinator.service` uses for the fleet coordinator's wire API —
a ``ThreadingHTTPServer`` with daemon threads, served from a daemon thread,
so a watch process gains observability without an event loop or a new
dependency.

The snapshot reports arrival→verdict latency percentiles (p50/p90/p99),
queue depth/peak/parked gauges with the configured watermarks, saturation
and reload counters, and the per-source aggregate-accuracy table.  All
numbers are observational — nothing here participates in the byte-identity
contract, which is why wall-clock time is allowed in this module and nowhere
near the results log.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.utils.stats import mean, percentile

#: Path the metrics endpoint answers on.
METRICS_PATH = "/metrics"


class IngestMetrics:
    """Thread-safe counters and gauges for one fleet run."""

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._arrivals: dict[tuple[str, str], float] = {}
        self._latencies: list[float] = []
        self._verdicts = 0
        self._skips = 0
        self._saturations = 0
        self._reloads = 0
        self._queue_depth = 0
        self._queue_parked = 0
        self._queue_peak = 0
        self._high_watermark: int | None = None
        self._low_watermark: int | None = None
        self._source_rows: list[dict[str, object]] = []

    def record_arrival(self, source: str, capture: str) -> None:
        """A capture entered the fleet queue; the latency clock starts."""
        with self._lock:
            self._arrivals[(source, capture)] = self._clock()

    def record_verdict(self, source: str, capture: str) -> None:
        """A verdict landed; closes the capture's arrival→verdict window."""
        now = self._clock()
        with self._lock:
            self._verdicts += 1
            arrived = self._arrivals.pop((source, capture), None)
            if arrived is not None:
                self._latencies.append(now - arrived)

    def record_skip(self) -> None:
        with self._lock:
            self._skips += 1

    def record_saturation(self) -> None:
        with self._lock:
            self._saturations += 1

    def record_reload(self) -> None:
        with self._lock:
            self._reloads += 1

    def set_queue_gauges(
        self,
        depth: int,
        parked: int,
        peak: int,
        high_watermark: int,
        low_watermark: int,
    ) -> None:
        with self._lock:
            self._queue_depth = depth
            self._queue_parked = parked
            self._queue_peak = peak
            self._high_watermark = high_watermark
            self._low_watermark = low_watermark

    def set_source_rows(self, rows: list[dict[str, object]]) -> None:
        """Publish the per-source aggregate-accuracy table."""
        with self._lock:
            self._source_rows = [dict(row) for row in rows]

    def snapshot(self) -> dict[str, object]:
        """One consistent JSON-friendly view of everything above."""
        with self._lock:
            latencies = list(self._latencies)
            payload: dict[str, object] = {
                "verdicts": self._verdicts,
                "skips": self._skips,
                "latency_s": (
                    {
                        "count": len(latencies),
                        "mean": mean(latencies),
                        "p50": percentile(latencies, 50),
                        "p90": percentile(latencies, 90),
                        "p99": percentile(latencies, 99),
                    }
                    if latencies
                    else {"count": 0}
                ),
                "queue": {
                    "depth": self._queue_depth,
                    "parked": self._queue_parked,
                    "peak_depth": self._queue_peak,
                    "high_watermark": self._high_watermark,
                    "low_watermark": self._low_watermark,
                    "saturation_events": self._saturations,
                },
                "library_reloads": self._reloads,
                "sources": [dict(row) for row in self._source_rows],
            }
        return payload


class MetricsServer:
    """Serves one :class:`IngestMetrics` snapshot as ``GET /metrics`` JSON."""

    def __init__(
        self,
        metrics: IngestMetrics,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._metrics = metrics
        self._host = host
        self._port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> tuple[str, int]:
        """Bind the endpoint and serve it from a daemon thread."""
        handler = _build_handler(self._metrics)
        self._server = ThreadingHTTPServer((self._host, self._port), handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-ingest-metrics",
            daemon=True,
        )
        self._thread.start()
        return self._host, self._server.server_address[1]

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def _build_handler(metrics: IngestMetrics) -> type[BaseHTTPRequestHandler]:
    """A request handler bound to one metrics board."""

    class Handler(BaseHTTPRequestHandler):
        # The event bus is the watch process's narration channel; the
        # default per-request stderr log would drown it.
        def log_message(self, *args: object) -> None:
            pass

        def do_GET(self) -> None:
            if self.path != METRICS_PATH:
                body = json.dumps(
                    {
                        "error": (
                            f"unknown metrics endpoint GET {self.path} "
                            f"(endpoints: GET {METRICS_PATH})"
                        )
                    }
                ).encode("utf-8")
                self._respond(404, body)
                return
            body = json.dumps(metrics.snapshot(), sort_keys=True).encode("utf-8")
            self._respond(200, body)

        def _respond(self, status: int, body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

    return Handler
