"""Turning a capture file into an attackable :class:`PcapAttackTask`.

A capture that sits next to (or inside) a generated dataset inherits the
dataset's recorded addresses, environment and ground truth from
``metadata.json``; a bare capture falls back to explicit overrides.  These
helpers used to live inside the CLI's ``attack`` command — they are shared
here so the batch attack path and the live ingest service resolve captures
through exactly one code path.
"""

from __future__ import annotations

from pathlib import Path

from repro.client.profiles import OperationalCondition
from repro.core.pipeline import PcapAttackTask
from repro.dataset.format import METADATA_FILENAME, load_dataset_metadata
from repro.exceptions import DatasetError, IngestError

#: Viewer address assumed when neither overrides nor dataset metadata name one.
DEFAULT_CLIENT_IP = "192.168.1.23"


def metadata_entries_near(directory: str | Path) -> dict[str, dict]:
    """Dataset metadata entries keyed by pcap filename, if a dataset is near.

    Looks for ``metadata.json`` in ``directory`` and its parent, covering
    both a dataset directory itself and its ``traces/`` subdirectory.  A
    capture with an entry inherits its recorded addresses, environment and
    ground truth; captures without one fall back to explicit overrides.
    """
    directory = Path(directory)
    for candidate in (directory, directory.parent):
        if not (candidate / METADATA_FILENAME).exists():
            continue
        try:
            metadata = load_dataset_metadata(candidate)
        except DatasetError:
            continue
        return {
            Path(str(entry["trace_file"])).name: entry
            for entry in metadata["entries"]
            if "trace_file" in entry
        }
    return {}


def entry_environment(entry: dict | None) -> str | None:
    """The fingerprint key a metadata entry records, if any.

    A malformed entry raises :class:`IngestError` rather than a bare
    ``KeyError`` — the live ingest service skips such captures and keeps
    running instead of dying on foreign metadata.
    """
    if entry is None:
        return None
    try:
        condition = OperationalCondition.from_dict(entry["viewer"]["condition"])
    except (KeyError, TypeError) as error:
        raise IngestError(
            f"metadata entry records no usable viewer condition: {error!r}"
        ) from error
    return condition.fingerprint_key


def entry_truth(entry: dict | None) -> tuple[bool, ...] | None:
    """The ground-truth choice pattern a metadata entry records, if any.

    Raises :class:`IngestError` on a malformed entry, like
    :func:`entry_environment`.
    """
    if entry is None:
        return None
    try:
        return tuple(bool(choice["took_default"]) for choice in entry["choices"])
    except (KeyError, TypeError) as error:
        raise IngestError(
            f"metadata entry records no usable ground-truth choices: {error!r}"
        ) from error


def build_pcap_task(
    pcap: str | Path,
    entry: dict | None,
    environment: str | None = None,
    client_ip: str | None = None,
    server_ip: str | None = None,
) -> PcapAttackTask:
    """Resolve one capture into an attack task.

    Explicit arguments win over the metadata entry's recorded values; the
    client address falls back to :data:`DEFAULT_CLIENT_IP`.  A capture whose
    environment cannot be determined from either source raises
    :class:`IngestError` — the attack has no fingerprint to classify with.
    """
    pcap = Path(pcap)
    resolved_environment = environment or entry_environment(entry)
    if resolved_environment is None:
        raise IngestError(
            f"cannot determine the environment of {pcap}: pass --environment "
            "or attack captures that sit next to their dataset metadata.json"
        )
    resolved_client_ip = client_ip or (entry or {}).get("client_ip") or DEFAULT_CLIENT_IP
    resolved_server_ip = server_ip or (entry or {}).get("server_ip")
    return PcapAttackTask(
        path=str(pcap),
        condition_key=resolved_environment,
        client_ip=str(resolved_client_ip),
        server_ip=str(resolved_server_ip) if resolved_server_ip is not None else None,
    )
