"""The streaming attack service: captures in, verdicts out.

:class:`StreamingAttackService` is the shared engine behind the online
(``repro watch``) and offline (``repro attack`` over a directory) paths.
Both hand it capture files; it fingerprints each one, skips what the results
log already knows, resolves the rest into
:class:`~repro.core.pipeline.PcapAttackTask`\\ s, streams them through
:meth:`WhiteMirrorAttack.iter_attack_pcaps` (the engine's bounded-window
``imap``, so ``--workers N`` parses and attacks captures in parallel while
results come back in order), and appends one durable verdict line per
capture to the :class:`~repro.ingest.log.ResultsLog`.

Because the two paths share this one code path and the log is deterministic,
``repro watch --once`` over a drop directory and ``repro attack
--results-log`` over the same pcaps produce **byte-identical** logs — the
equivalence CI's ``watch-smoke`` job pins.

Restarting the service over an existing log resumes it: previously attacked
captures are recognised by content fingerprint and skipped, a truncated
trailing line (crash mid-append) is repaired on load, and an in-flight
capture that never finished landing is simply re-offered by the watcher once
it completes — so a kill-and-restart cycle converges on exactly one verdict
per capture.

The service never prints: everything it observes surfaces through the
``on_verdict``/``on_skip``/``on_error`` callbacks, which the job runner
(:class:`repro.jobs.runner.JobRunner`) adapts onto the structured event
bus — each callback becomes a ``verdict``/``capture-skipped``/``warning``
:class:`~repro.jobs.events.JobEvent`, so the same run narrates to a
terminal, a JSONL pipeline, or a coordinator's feed depending only on the
attached sinks.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.fingerprint import FingerprintLibrary
from repro.core.pipeline import AttackResult, PcapAttackTask, WhiteMirrorAttack
from repro.dataset.collection import default_study_script
from repro.dataset.format import METADATA_FILENAME
from repro.exceptions import IngestError, ReproError
from repro.ingest.log import CaptureVerdict, ResultsLog, capture_fingerprint
from repro.ingest.tasks import build_pcap_task, entry_truth, metadata_entries_near
from repro.ingest.watcher import CaptureWatcher, IngestQueue
from repro.narrative.graph import StoryGraph

#: Why the service passed over a capture without attacking it.  Resolution
#: failures (unknown environment, malformed metadata entry) are reported
#: with the raised error's own message instead of a constant.
SKIP_ALREADY_ATTACKED = "already attacked (content fingerprint in the results log)"
SKIP_UNREADABLE = "capture unreadable (deleted or rotated away mid-scan?)"

#: Callback signatures: a verdict with its full attack result, and a skip
#: with its reason.
VerdictCallback = Callable[[CaptureVerdict, AttackResult], None]
SkipCallback = Callable[[Path, str], None]


class StreamingAttackService:
    """Attack captures as they arrive, logging one durable verdict each.

    Parameters
    ----------
    library:
        The trained fingerprint library to classify with.
    log_path:
        Where the append-only JSONL results log lives.  ``None`` disables
        persistence (verdicts are still computed and reported) — the offline
        path uses this when no ``--results-log`` is requested.
    graph:
        Story graph for path reconstruction; defaults to the study script.
    workers:
        Engine worker processes for the capture fan-out
        (:class:`~repro.engine.executor.BatchExecutor` semantics).
    environment / client_ip / server_ip:
        Overrides applied to every capture, winning over dataset metadata.
    """

    def __init__(
        self,
        library: FingerprintLibrary,
        log_path: str | Path | None,
        graph: StoryGraph | None = None,
        workers: int | None = None,
        environment: str | None = None,
        client_ip: str | None = None,
        server_ip: str | None = None,
    ) -> None:
        self._graph = graph or default_study_script()
        self._attack = WhiteMirrorAttack(graph=self._graph, library=library)
        self._workers = workers
        self._environment = environment
        self._client_ip = client_ip
        self._server_ip = server_ip
        self._log = ResultsLog(log_path) if log_path is not None else None
        #: Verdicts known so far — the log's contents plus this run's work.
        self._verdicts: list[CaptureVerdict] = (
            self._log.load() if self._log is not None else []
        )
        #: Resume identity: dedup is per (source, content fingerprint), so a
        #: fleet watching two sources that happen to hold identical bytes
        #: attacks the content once *per source* — exactly what N serial
        #: single-source runs would do, preserving the concatenation
        #: contract.  Single-directory runs use ``source=None``.
        self._attacked: set[tuple[str | None, str]] = {
            (verdict.source, verdict.fingerprint) for verdict in self._verdicts
        }
        #: Metadata entries per capture directory, keyed by the mtimes of the
        #: candidate metadata.json files so a follow-mode service does not
        #: re-parse a large index on every arrival (and still notices edits).
        self._entries_cache: dict[
            Path, tuple[tuple[int, ...], dict[str, dict]]
        ] = {}

    @property
    def library(self) -> FingerprintLibrary:
        """The fingerprint library the service classifies with."""
        return self._attack.library

    def replace_library(self, library: FingerprintLibrary) -> None:
        """Swap in a new fingerprint library between batches (hot reload).

        The caller (the fleet's reload watcher) guarantees the swap happens
        only between :meth:`process` calls, never mid-attack; nothing else
        about the service — verdicts, resume state, metadata caches — is
        touched, so captures in flight before and after the swap keep their
        exactly-once guarantee.
        """
        self._attack = WhiteMirrorAttack(graph=self._graph, library=library)

    @property
    def log_path(self) -> Path | None:
        """Where verdicts are persisted, if anywhere."""
        return self._log.path if self._log is not None else None

    @property
    def verdicts(self) -> tuple[CaptureVerdict, ...]:
        """Every verdict known to the service (resumed and fresh), in order."""
        return tuple(self._verdicts)

    def _entries_for(self, directory: Path) -> dict[str, dict]:
        """Cached :func:`metadata_entries_near`, invalidated by file mtime."""
        stamps = []
        for candidate in (directory, directory.parent):
            try:
                stamps.append((candidate / METADATA_FILENAME).stat().st_mtime_ns)
            except OSError:
                stamps.append(-1)
        stamp = tuple(stamps)
        cached = self._entries_cache.get(directory)
        if cached is not None and cached[0] == stamp:
            return cached[1]
        entries = metadata_entries_near(directory)
        self._entries_cache[directory] = (stamp, entries)
        return entries

    # -- one batch ---------------------------------------------------------

    def process(
        self,
        paths: Iterable[str | Path],
        on_verdict: VerdictCallback | None = None,
        on_skip: SkipCallback | None = None,
        source: str | None = None,
    ) -> list[CaptureVerdict]:
        """Attack a batch of captures; returns the fresh verdicts in order.

        Captures are fingerprinted (and resume skips settled) up front —
        hashing is cheap and the fresh count decides serial vs pool — while
        metadata resolution and task building stream lazily against the
        attacking of earlier captures (the engine's bounded-window
        streaming).  Each verdict is appended to the results log *before*
        the next one is reported — a crash mid-batch loses at most the
        capture whose line was being written.

        Skips (already-attacked content, unknown environment, an
        environment the library has no fingerprint for, a capture deleted
        between scan and read) are reported through ``on_skip`` and never
        logged, so they are re-examined — cheaply — on the next batch or
        restart.  Content dedup applies only when a results log is
        configured: without one there is no resume state to protect, and a
        batch caller expects every named capture attacked.

        ``source`` stamps per-source attribution into every verdict (fleet
        mode) and scopes the content dedup to that source; ``None`` keeps
        the historical single-directory behaviour and log bytes.
        """
        # Hashing is cheap against attacking, so the resume skips are settled
        # up front: a follow-mode poll that re-reports N attacked captures
        # plus one new arrival must route the single fresh capture through
        # the serial path, not spawn a pool for it.
        candidates: list[tuple[Path, str]] = []
        for raw_path in paths:
            path = Path(raw_path)
            try:
                fingerprint = capture_fingerprint(path)
            except IngestError:
                # The follow-mode service must outlive a capture that a
                # foreign writer rotated away between scan and read.
                if on_skip is not None:
                    on_skip(path, SKIP_UNREADABLE)
                continue
            if self._log is not None and (source, fingerprint) in self._attacked:
                if on_skip is not None:
                    on_skip(path, SKIP_ALREADY_ATTACKED)
                continue
            candidates.append((path, fingerprint))
        workers = self._workers if len(candidates) > 1 else None
        pending: list[tuple[Path, str, PcapAttackTask, tuple[bool, ...] | None]] = []
        # Dedup within the batch at *generation* time: deciding against the
        # result-time ``self._attacked`` set would race the parallel pull-
        # ahead window (a duplicate's task can be submitted before the
        # original's verdict lands), making serial and parallel logs differ.
        batch_fingerprints: set[str] = set()

        def tasks() -> Iterator[PcapAttackTask]:
            for path, fingerprint in candidates:
                if self._log is not None and fingerprint in batch_fingerprints:
                    if on_skip is not None:
                        on_skip(path, SKIP_ALREADY_ATTACKED)
                    continue
                entry = self._entries_for(path.parent).get(path.name)
                try:
                    task = build_pcap_task(
                        path,
                        entry,
                        environment=self._environment,
                        client_ip=self._client_ip,
                        server_ip=self._server_ip,
                    )
                    truth = entry_truth(entry)
                except IngestError as error:
                    # Undeterminable environment or a malformed metadata
                    # entry: skip loudly; a long-running watch must outlive
                    # foreign metadata just like foreign captures.
                    if on_skip is not None:
                        on_skip(path, str(error))
                    continue
                if task.condition_key not in self.library:
                    if on_skip is not None:
                        on_skip(
                            path,
                            f"environment {task.condition_key} not in the "
                            "fingerprint library",
                        )
                    continue
                batch_fingerprints.add(fingerprint)
                pending.append((path, fingerprint, task, truth))
                yield task

        fresh: list[CaptureVerdict] = []
        for result in self._attack.iter_attack_pcaps(tasks(), workers=workers):
            # imap preserves input order, so the front of ``pending`` is
            # always the capture this result belongs to.
            path, fingerprint, task, truth = pending.pop(0)
            verdict = CaptureVerdict(
                capture=path.name,
                fingerprint=fingerprint,
                condition_key=task.condition_key,
                client_ip=task.client_ip,
                server_ip=task.server_ip,
                pattern=result.recovered_pattern,
                truth=truth,
                source=source,
            )
            if self._log is not None:
                self._log.append(verdict)
            self._attacked.add((source, fingerprint))
            self._verdicts.append(verdict)
            fresh.append(verdict)
            if on_verdict is not None:
                on_verdict(verdict, result)
        return fresh

    # -- the watch loop ----------------------------------------------------

    def run(
        self,
        directory: str | Path,
        follow: bool = False,
        poll_interval: float = 0.5,
        on_verdict: VerdictCallback | None = None,
        on_skip: SkipCallback | None = None,
        on_error: Callable[[ReproError], None] | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> list[CaptureVerdict]:
        """Drain a drop directory, optionally following it for new arrivals.

        One-shot mode (``follow=False``) performs a single quiescent scan —
        every unmarked capture currently in the directory is trusted as
        finished — and returns after attacking them, in name order: exactly
        the batch path's behaviour, which is what makes the two logs
        byte-identical.  Follow mode polls every ``poll_interval`` seconds,
        applying the watcher's finish detection, until ``should_stop``
        returns true (or forever — ``repro watch`` runs until interrupted).

        A batch that fails mid-attack (e.g. a corrupt capture) kills a
        one-shot run — the caller asked for exactly that batch — but must
        not kill a long-running follow loop: the error is reported through
        ``on_error`` and the loop continues with the next poll.  The failed
        batch's unlogged captures are not retried by this process (a corrupt
        capture would loop forever); they are re-examined on restart, since
        only logged verdicts are skipped.

        Returns the fresh verdicts from this call.
        """
        watcher = CaptureWatcher(directory)
        queue = IngestQueue()
        fresh: list[CaptureVerdict] = []
        while True:
            queue.offer(watcher.scan(assume_quiescent=not follow))
            batch = queue.drain()
            if batch:
                try:
                    fresh.extend(
                        self.process(batch, on_verdict=on_verdict, on_skip=on_skip)
                    )
                except ReproError as error:
                    if not follow:
                        raise
                    if on_error is not None:
                        on_error(error)
            if not follow:
                return fresh
            if should_stop is not None and should_stop():
                return fresh
            time.sleep(poll_interval)

    # -- aggregates --------------------------------------------------------

    def aggregate_rows(self) -> list[dict[str, object]]:
        """The running aggregate-accuracy table, one row per environment.

        Aggregates cover *every* verdict the service knows — including ones
        resumed from the log — so a restarted watcher's table continues
        where the killed one left off.  A ``total`` row closes the table.
        """
        per_environment: dict[str, list[CaptureVerdict]] = {}
        for verdict in self._verdicts:
            per_environment.setdefault(verdict.condition_key, []).append(verdict)
        rows: list[dict[str, object]] = []
        for key in sorted(per_environment):
            rows.append(self._aggregate_row(key, per_environment[key]))
        if len(rows) != 1:
            rows.append(self._aggregate_row("total", self._verdicts))
        return rows

    def aggregate_rows_by_source(self) -> list[dict[str, object]]:
        """Per-source aggregate accuracy, for the fleet's ``/metrics`` view.

        One row per attributed source (sorted), with sourceless verdicts —
        a resumed single-directory log, say — grouped under ``"(unsourced)"``
        so no verdict silently drops out of the table.
        """
        per_source: dict[str, list[CaptureVerdict]] = {}
        for verdict in self._verdicts:
            label = verdict.source if verdict.source is not None else "(unsourced)"
            per_source.setdefault(label, []).append(verdict)
        rows = []
        for label in sorted(per_source):
            row = self._aggregate_row(label, per_source[label])
            row["source"] = row.pop("environment")
            rows.append(row)
        return rows

    @staticmethod
    def _aggregate_row(
        label: str, verdicts: Sequence[CaptureVerdict]
    ) -> dict[str, object]:
        questions = sum(verdict.question_count for verdict in verdicts)
        correct = sum(verdict.correct_questions for verdict in verdicts)
        return {
            "environment": label,
            "captures": len(verdicts),
            "choices": sum(verdict.choice_count for verdict in verdicts),
            "accuracy": (
                f"{correct}/{questions} ({correct / questions:.1%})"
                if questions
                else "n/a (no ground truth)"
            ),
        }
