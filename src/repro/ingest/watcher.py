"""Detecting finished captures in a live pcap drop directory.

The online attack's front door: an eavesdropper's capture box writes one pcap
per observed viewing session into a drop directory, and the attacker's
machine tails that directory, attacking each capture as soon as it is
*finished* — not while it is still being written.

Two finish signals are understood:

* **The marker/atomic-rename convention** (the one
  :class:`repro.dataset.format.DatasetWriter` and
  :meth:`repro.net.capture.CapturedTrace.to_pcap_atomic` use): a cooperative
  writer stages the capture under ``<name>.pcap.inprogress`` and renames it
  to ``<name>.pcap`` only once complete.  A ``*.pcap`` whose marker name was
  observed to disappear is trusted immediately — the rename *is* the
  completion signal.
* **The stable-stat fallback** for foreign writers (``tcpdump -w``, an rsync
  without ``--delay-updates``) that grow the final name in place: a capture
  only counts as finished once its size and mtime are unchanged between two
  consecutive scans **and** its mtime is at least ``quiet_seconds`` old.
  The age requirement closes the burst-writer race: ``tcpdump -w`` flushes
  in buffered bursts, so a capture can look stable across two fast polls and
  then grow again — two matching stats alone are not a completion signal.

:class:`IngestQueue` sits behind the watcher and gives the attack service a
deduplicated, deterministically-ordered stream of arrivals: a capture is
handed out exactly once per process however many scans re-report it, in
first-seen order with name ties broken alphabetically inside a scan batch.
"""

from __future__ import annotations

import time
from collections import deque
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.dataset.format import INPROGRESS_FILENAME
from repro.exceptions import IngestError

#: Suffix a cooperative writer stages an unfinished capture under
#: (``foo.pcap`` is written as ``foo.pcap.inprogress`` and renamed when
#: done) — the per-file form of the dataset writer's directory marker.
INPROGRESS_SUFFIX = INPROGRESS_FILENAME

#: Default filename pattern the watcher considers a capture.
CAPTURE_PATTERN = "*.pcap"

#: How old (seconds since mtime) an unmarked capture must be before the
#: stable-stat fallback trusts it.  One second comfortably outlasts the
#: buffered flush cadence of ``tcpdump -w`` while keeping follow-mode
#: latency interactive.
DEFAULT_QUIET_SECONDS = 1.0


class CaptureWatcher:
    """Reports captures in a drop directory once they have finished landing.

    The watcher is a polling scanner with memory: each :meth:`scan` looks at
    the directory once, compares what it sees with the previous scan, and
    returns the captures that have *become* finished since — each exactly
    once, sorted by name.  It holds no file handles and never reads capture
    bytes, so scanning a directory of thousands of pcaps costs one
    ``stat()`` per unfinished candidate.
    """

    def __init__(
        self,
        directory: str | Path,
        pattern: str = CAPTURE_PATTERN,
        recursive: bool = False,
        quiet_seconds: float = DEFAULT_QUIET_SECONDS,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._directory = Path(directory)
        if not self._directory.is_dir():
            raise IngestError(
                f"capture drop directory {self._directory} does not exist "
                "(create it before watching, or point at a dataset's traces/)"
            )
        self._pattern = pattern
        self._recursive = recursive
        self._quiet_seconds = quiet_seconds
        self._clock = clock
        #: Captures already reported as finished (by directory-relative key).
        self._reported: set[str] = set()
        #: Last-seen (size, mtime_ns) of not-yet-finished candidates.
        self._stats: dict[str, tuple[int, int]] = {}
        #: Capture keys whose ``.inprogress`` marker has been observed —
        #: when the marker disappears the rename convention vouches for the
        #: capture and the stability wait is skipped.
        self._marked: set[str] = set()

    @property
    def directory(self) -> Path:
        """The drop directory being watched."""
        return self._directory

    def _key(self, path: Path) -> str:
        # Relative-to-the-root keys so recursive watching distinguishes
        # ``a/x.pcap`` from ``b/x.pcap``; in flat mode the key is the name.
        return path.relative_to(self._directory).as_posix()

    def _glob(self, pattern: str) -> Iterable[Path]:
        if self._recursive:
            return self._directory.glob(f"**/{pattern}")
        return self._directory.glob(pattern)

    def scan(self, assume_quiescent: bool = False) -> list[Path]:
        """One poll of the drop directory; returns newly finished captures.

        ``assume_quiescent`` trusts every unmarked capture immediately — the
        one-shot drain mode (``repro watch --once``) where the caller asserts
        nothing is still being written.  Without it, an unmarked capture must
        either complete the marker/rename protocol or hold a stable size and
        mtime across two scans *and* carry an mtime at least
        ``quiet_seconds`` old before it is reported — a foreign writer that
        flushes in bursts can look stable between two fast polls and then
        grow again, so recent modification alone vetoes the report.
        """
        finished: list[Path] = []
        present_markers: set[str] = set()
        for marker in sorted(self._glob(self._pattern + INPROGRESS_SUFFIX)):
            name = self._key(marker)[: -len(INPROGRESS_SUFFIX)]
            present_markers.add(name)
            self._marked.add(name)
        for path in sorted(self._glob(self._pattern)):
            name = self._key(path)
            if name in self._reported or not path.is_file():
                continue
            if name in present_markers:
                # The writer is mid-copy under the marker protocol; the
                # capture at the final name (if any) is not this session's
                # finished artefact yet.
                continue
            if assume_quiescent or name in self._marked:
                self._report(name, finished, path)
                continue
            try:
                stat = path.stat()
            except OSError:
                continue  # raced a writer's rename/delete; next scan decides
            signature = (stat.st_size, stat.st_mtime_ns)
            quiet = (
                self._clock() - stat.st_mtime_ns / 1e9 >= self._quiet_seconds
            )
            if self._stats.get(name) == signature and quiet:
                self._report(name, finished, path)
            else:
                self._stats[name] = signature
        return finished

    def _report(self, name: str, finished: list[Path], path: Path) -> None:
        self._reported.add(name)
        self._stats.pop(name, None)
        self._marked.discard(name)
        finished.append(path)


class IngestQueue:
    """Deduplicated, ordered queue of finished capture arrivals.

    Sits between the watcher and the attack service: :meth:`offer` absorbs a
    scan's findings (dropping anything already enqueued or already handed
    out), :meth:`drain` yields the pending captures in arrival order.  The
    dedup key is the capture *name* — content-level dedup (the same bytes
    under a new name) is the results log's job, which fingerprints content.
    """

    def __init__(self) -> None:
        self._pending: deque[Path] = deque()
        self._seen: set[str] = set()

    def offer(self, paths: Iterable[Path]) -> list[Path]:
        """Enqueue new arrivals; returns the ones actually accepted."""
        accepted: list[Path] = []
        for path in sorted(Path(path) for path in paths):
            if path.name in self._seen:
                continue
            self._seen.add(path.name)
            self._pending.append(path)
            accepted.append(path)
        return accepted

    def drain(self) -> list[Path]:
        """Remove and return every pending capture, in arrival order."""
        drained = list(self._pending)
        self._pending.clear()
        return drained

    def __len__(self) -> int:
        return len(self._pending)

    def __iter__(self) -> Iterator[Path]:
        return iter(self._pending)
