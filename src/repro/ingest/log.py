"""The append-only, resumable results log of the capture-ingest service.

One JSON line per attacked capture, written append-only so the online and
offline attack paths produce the same artefact: a directory drained by
``repro watch --once`` and the same directory attacked in batch by ``repro
attack --results-log`` yield byte-identical logs.  Determinism rules:

* a line records only what the attack derived from the capture and its
  metadata — never a wall-clock timestamp;
* lines are serialised with sorted keys and compact separators;
* captures are processed in name order within a batch, so identical inputs
  append identical lines in an identical order.

Crash safety mirrors the dataset writer's story at line granularity: each
verdict is appended as **one** ``write`` of the full line (flushed and
fsynced before the service considers the capture attacked), so a crash can
leave at most one truncated *trailing* line behind.  :meth:`ResultsLog.load`
repairs exactly that — the partial tail is cut back to the last complete
line — and the capture whose verdict was lost is simply re-attacked on
restart, keyed by content fingerprint, so a kill-and-restart cycle converges
on exactly one verdict per capture: no duplicates, no gaps.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.exceptions import IngestError

#: Format version stamped into every log line.
RESULTS_LOG_VERSION = 1


def capture_fingerprint(path: str | Path) -> str:
    """Content fingerprint (SHA-256 hex digest) of a capture file.

    The identity the results log dedupes on: a restart must skip captures it
    already attacked even if they were re-dropped under a new name, and must
    *not* skip a new capture that reuses an old name.
    """
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                digest.update(block)
    except OSError as error:
        raise IngestError(f"cannot fingerprint capture {path}: {error}") from error
    return digest.hexdigest()


@dataclass(frozen=True)
class CaptureVerdict:
    """What the attack concluded about one capture — one results-log line."""

    capture: str
    fingerprint: str
    condition_key: str
    client_ip: str
    server_ip: str | None
    pattern: tuple[bool, ...]
    truth: tuple[bool, ...] | None
    #: Which capture source produced this verdict (multi-source fleet mode);
    #: ``None`` for single-directory runs, whose log lines must stay
    #: byte-identical to the pre-fleet format.
    source: str | None = None

    @property
    def choice_count(self) -> int:
        """How many choices the attack recovered from the capture."""
        return len(self.pattern)

    @property
    def question_count(self) -> int:
        """Ground-truth questions available for scoring (0 without truth)."""
        return len(self.truth) if self.truth is not None else 0

    @property
    def correct_questions(self) -> int:
        """Ground-truth questions whose recovered choice is correct."""
        if self.truth is None:
            return 0
        return sum(
            1
            for index, expected in enumerate(self.truth)
            if index < len(self.pattern) and self.pattern[index] == expected
        )

    def as_record(self) -> dict[str, object]:
        """JSON-friendly form (the log line's payload).

        The ``source`` key appears only when attribution is set: a
        single-directory run's lines carry exactly the historical fields, so
        the pre-fleet byte-identity contracts survive unchanged.
        """
        record: dict[str, object] = {
            "version": RESULTS_LOG_VERSION,
            "capture": self.capture,
            "fingerprint": self.fingerprint,
            "environment": self.condition_key,
            "client_ip": self.client_ip,
            "server_ip": self.server_ip,
            "pattern": list(self.pattern),
            "truth": None if self.truth is None else list(self.truth),
        }
        if self.source is not None:
            record["source"] = self.source
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "CaptureVerdict":
        """Inverse of :meth:`as_record`; validates shape and version."""
        if not isinstance(record, Mapping):
            raise IngestError(
                f"results-log line must be a JSON object, got "
                f"{type(record).__name__}"
            )
        for key in ("version", "capture", "fingerprint", "environment", "pattern"):
            if key not in record:
                raise IngestError(
                    f"results-log line is missing the {key!r} field"
                )
        if record["version"] != RESULTS_LOG_VERSION:
            raise IngestError(
                f"unsupported results-log line version {record['version']}"
            )
        truth = record.get("truth")
        return cls(
            capture=str(record["capture"]),
            fingerprint=str(record["fingerprint"]),
            condition_key=str(record["environment"]),
            client_ip=str(record.get("client_ip", "")),
            server_ip=(
                None if record.get("server_ip") is None else str(record["server_ip"])
            ),
            pattern=tuple(bool(choice) for choice in record["pattern"]),  # type: ignore[union-attr]
            truth=(
                None if truth is None else tuple(bool(choice) for choice in truth)  # type: ignore[union-attr]
            ),
            source=(
                None if record.get("source") is None else str(record["source"])
            ),
        )


class ResultsLog:
    """Append-only JSONL verdict log with crash repair on load."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        # Fail before any capture is attacked, not after the first verdict
        # tries to append into a directory that was never there.
        if not self._path.parent.is_dir():
            raise IngestError(
                f"results log directory {self._path.parent} does not exist"
            )

    @property
    def path(self) -> Path:
        """Where the log lives."""
        return self._path

    def load(self, repair: bool = True) -> list[CaptureVerdict]:
        """Read every verdict; a missing log is an empty one.

        A truncated trailing line — the debris of a crash mid-append — is
        cut off the file when ``repair`` is on (the default), so the capture
        it described is re-attacked rather than half-remembered.  Any
        *terminated* line that fails to parse — the tail included — cannot
        come from the append-only writer (each append persists as a prefix
        of one write whose final byte is the terminator) and raises instead
        of being silently dropped.
        """
        try:
            raw = self._path.read_bytes()
        except FileNotFoundError:
            return []
        except OSError as error:
            raise IngestError(f"cannot read results log: {error}") from error
        verdicts, consumed = parse_results_log_bytes(raw, self._path)
        if consumed < len(raw):
            if not repair:
                raise IngestError(
                    f"results log {self._path} ends in a partial line "
                    f"(crash during append?); load with repair=True to "
                    "truncate it"
                )
            with open(self._path, "rb+") as handle:
                handle.truncate(consumed)
                handle.flush()
                os.fsync(handle.fileno())
        return verdicts

    def append(self, verdict: CaptureVerdict) -> None:
        """Durably append one verdict as a single line write.

        The line — terminator included — goes to the OS in one ``write`` and
        is fsynced before returning, so the log on disk is always a sequence
        of complete lines plus at most one truncated tail.
        """
        line = verdict_line(verdict)
        try:
            with open(self._path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as error:
            raise IngestError(
                f"cannot append to results log {self._path}: {error}"
            ) from error


def verdict_line(verdict: CaptureVerdict) -> str:
    """The exact bytes (as text) one verdict occupies in a results log."""
    return (
        json.dumps(verdict.as_record(), sort_keys=True, separators=(",", ":"))
        + "\n"
    )


def parse_results_log_bytes(
    raw: bytes, path: str | Path = "<bytes>"
) -> tuple[list[CaptureVerdict], int]:
    """Parse results-log bytes with the crash-repair semantics of ``load``.

    Returns ``(verdicts, consumed)`` where ``consumed`` is the byte offset
    of the last complete line's terminator — anything beyond it is an
    unterminated trailing partial line (crash debris).  A *terminated* line
    that fails to parse raises, exactly as :meth:`ResultsLog.load` does,
    because the append-only writer cannot produce one.
    """
    verdicts: list[CaptureVerdict] = []
    consumed = 0
    offset = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline == -1:
            break  # trailing partial line: no terminator made it to disk
        line = raw[offset:newline]
        try:
            verdicts.append(CaptureVerdict.from_record(json.loads(line)))
        except (json.JSONDecodeError, IngestError) as error:
            raise IngestError(
                f"results log {path} is corrupt at byte {offset} "
                f"(not crash debris — a crash can only leave an "
                f"*unterminated* final line): {error}"
            ) from error
        offset = newline + 1
        consumed = offset
    return verdicts, consumed


def canonical_verdict_key(verdict: CaptureVerdict) -> tuple[str, str, str]:
    """The canonical results-log ordering: source, then capture, then content.

    Sourceless (single-directory) verdicts sort as the empty source.  Within
    one source a ``--once`` drain attacks captures in name order and logs at
    most one verdict per content fingerprint, so sorting a source's verdicts
    by this key reproduces the order a serial single-source run wrote them
    in — which is what makes merge canonicalization agree with the
    concatenated serial reference.
    """
    return (verdict.source or "", verdict.capture, verdict.fingerprint)


def canonical_log_bytes(verdicts: Iterable[CaptureVerdict]) -> bytes:
    """Canonical serialisation of a verdict set, independent of arrival order.

    Deduplicates on ``(source, fingerprint)`` — the same identity the
    streaming service resumes on — then sorts by
    :func:`canonical_verdict_key` and serialises each verdict exactly as
    :meth:`ResultsLog.append` would.
    """
    unique: dict[tuple[str | None, str], CaptureVerdict] = {}
    for verdict in verdicts:
        unique.setdefault((verdict.source, verdict.fingerprint), verdict)
    ordered = sorted(unique.values(), key=canonical_verdict_key)
    return "".join(verdict_line(verdict) for verdict in ordered).encode("utf-8")


def merge_results_logs(
    segments: Sequence[str | Path], output: str | Path | None = None
) -> bytes:
    """Merge per-source results-log segments into one canonical log.

    Each segment is parsed with :func:`parse_results_log_bytes`, so a torn
    trailing line in any segment — the debris of a killed writer — is
    dropped exactly as :meth:`ResultsLog.load` would repair it, while
    terminated garbage anywhere raises.  The merged verdict set is
    canonicalised with :func:`canonical_log_bytes`; the segments themselves
    are never modified.  When ``output`` is given the canonical bytes are
    also written there (atomically, via a temp file and rename).
    """
    verdicts: list[CaptureVerdict] = []
    for segment in segments:
        segment_path = Path(segment)
        try:
            raw = segment_path.read_bytes()
        except FileNotFoundError:
            continue  # a source that never produced a verdict has no segment
        except OSError as error:
            raise IngestError(
                f"cannot read results-log segment {segment_path}: {error}"
            ) from error
        parsed, _ = parse_results_log_bytes(raw, segment_path)
        verdicts.extend(parsed)
    merged = canonical_log_bytes(verdicts)
    if output is not None:
        destination = Path(output)
        staging = destination.with_name(destination.name + ".tmp")
        try:
            staging.write_bytes(merged)
            os.replace(staging, destination)
        except OSError as error:
            raise IngestError(
                f"cannot write merged results log {destination}: {error}"
            ) from error
    return merged
