"""The append-only, resumable results log of the capture-ingest service.

One JSON line per attacked capture, written append-only so the online and
offline attack paths produce the same artefact: a directory drained by
``repro watch --once`` and the same directory attacked in batch by ``repro
attack --results-log`` yield byte-identical logs.  Determinism rules:

* a line records only what the attack derived from the capture and its
  metadata — never a wall-clock timestamp;
* lines are serialised with sorted keys and compact separators;
* captures are processed in name order within a batch, so identical inputs
  append identical lines in an identical order.

Crash safety mirrors the dataset writer's story at line granularity: each
verdict is appended as **one** ``write`` of the full line (flushed and
fsynced before the service considers the capture attacked), so a crash can
leave at most one truncated *trailing* line behind.  :meth:`ResultsLog.load`
repairs exactly that — the partial tail is cut back to the last complete
line — and the capture whose verdict was lost is simply re-attacked on
restart, keyed by content fingerprint, so a kill-and-restart cycle converges
on exactly one verdict per capture: no duplicates, no gaps.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.exceptions import IngestError

#: Format version stamped into every log line.
RESULTS_LOG_VERSION = 1


def capture_fingerprint(path: str | Path) -> str:
    """Content fingerprint (SHA-256 hex digest) of a capture file.

    The identity the results log dedupes on: a restart must skip captures it
    already attacked even if they were re-dropped under a new name, and must
    *not* skip a new capture that reuses an old name.
    """
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                digest.update(block)
    except OSError as error:
        raise IngestError(f"cannot fingerprint capture {path}: {error}") from error
    return digest.hexdigest()


@dataclass(frozen=True)
class CaptureVerdict:
    """What the attack concluded about one capture — one results-log line."""

    capture: str
    fingerprint: str
    condition_key: str
    client_ip: str
    server_ip: str | None
    pattern: tuple[bool, ...]
    truth: tuple[bool, ...] | None

    @property
    def choice_count(self) -> int:
        """How many choices the attack recovered from the capture."""
        return len(self.pattern)

    @property
    def question_count(self) -> int:
        """Ground-truth questions available for scoring (0 without truth)."""
        return len(self.truth) if self.truth is not None else 0

    @property
    def correct_questions(self) -> int:
        """Ground-truth questions whose recovered choice is correct."""
        if self.truth is None:
            return 0
        return sum(
            1
            for index, expected in enumerate(self.truth)
            if index < len(self.pattern) and self.pattern[index] == expected
        )

    def as_record(self) -> dict[str, object]:
        """JSON-friendly form (the log line's payload)."""
        return {
            "version": RESULTS_LOG_VERSION,
            "capture": self.capture,
            "fingerprint": self.fingerprint,
            "environment": self.condition_key,
            "client_ip": self.client_ip,
            "server_ip": self.server_ip,
            "pattern": list(self.pattern),
            "truth": None if self.truth is None else list(self.truth),
        }

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "CaptureVerdict":
        """Inverse of :meth:`as_record`; validates shape and version."""
        if not isinstance(record, Mapping):
            raise IngestError(
                f"results-log line must be a JSON object, got "
                f"{type(record).__name__}"
            )
        for key in ("version", "capture", "fingerprint", "environment", "pattern"):
            if key not in record:
                raise IngestError(
                    f"results-log line is missing the {key!r} field"
                )
        if record["version"] != RESULTS_LOG_VERSION:
            raise IngestError(
                f"unsupported results-log line version {record['version']}"
            )
        truth = record.get("truth")
        return cls(
            capture=str(record["capture"]),
            fingerprint=str(record["fingerprint"]),
            condition_key=str(record["environment"]),
            client_ip=str(record.get("client_ip", "")),
            server_ip=(
                None if record.get("server_ip") is None else str(record["server_ip"])
            ),
            pattern=tuple(bool(choice) for choice in record["pattern"]),  # type: ignore[union-attr]
            truth=(
                None if truth is None else tuple(bool(choice) for choice in truth)  # type: ignore[union-attr]
            ),
        )


class ResultsLog:
    """Append-only JSONL verdict log with crash repair on load."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        # Fail before any capture is attacked, not after the first verdict
        # tries to append into a directory that was never there.
        if not self._path.parent.is_dir():
            raise IngestError(
                f"results log directory {self._path.parent} does not exist"
            )

    @property
    def path(self) -> Path:
        """Where the log lives."""
        return self._path

    def load(self, repair: bool = True) -> list[CaptureVerdict]:
        """Read every verdict; a missing log is an empty one.

        A truncated trailing line — the debris of a crash mid-append — is
        cut off the file when ``repair`` is on (the default), so the capture
        it described is re-attacked rather than half-remembered.  Any
        *terminated* line that fails to parse — the tail included — cannot
        come from the append-only writer (each append persists as a prefix
        of one write whose final byte is the terminator) and raises instead
        of being silently dropped.
        """
        try:
            raw = self._path.read_bytes()
        except FileNotFoundError:
            return []
        except OSError as error:
            raise IngestError(f"cannot read results log: {error}") from error
        verdicts: list[CaptureVerdict] = []
        consumed = 0
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline == -1:
                break  # trailing partial line: no terminator made it to disk
            line = raw[offset:newline]
            try:
                verdicts.append(CaptureVerdict.from_record(json.loads(line)))
            except (json.JSONDecodeError, IngestError) as error:
                raise IngestError(
                    f"results log {self._path} is corrupt at byte {offset} "
                    f"(not crash debris — a crash can only leave an "
                    f"*unterminated* final line): {error}"
                ) from error
            offset = newline + 1
            consumed = offset
        if consumed < len(raw):
            if not repair:
                raise IngestError(
                    f"results log {self._path} ends in a partial line "
                    f"(crash during append?); load with repair=True to "
                    "truncate it"
                )
            with open(self._path, "rb+") as handle:
                handle.truncate(consumed)
                handle.flush()
                os.fsync(handle.fileno())
        return verdicts

    def append(self, verdict: CaptureVerdict) -> None:
        """Durably append one verdict as a single line write.

        The line — terminator included — goes to the OS in one ``write`` and
        is fsynced before returning, so the log on disk is always a sequence
        of complete lines plus at most one truncated tail.
        """
        line = (
            json.dumps(verdict.as_record(), sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        try:
            with open(self._path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as error:
            raise IngestError(
                f"cannot append to results log {self._path}: {error}"
            ) from error
