"""Network-condition models: latency, jitter, loss and cross traffic.

The dataset deliberately varies network conditions (Table I's "Traffic
Conditions" row: morning, noon, night) and connection media (wired,
wireless).  The conditions do two things to a capture:

* they perturb packet *timing* (base RTT, jitter, queueing during busy hours),
  which matters to the residual timing side-channel studied by the defence
  module; and
* they cause *retransmissions* and add unrelated *cross traffic* flows, which
  add noise the attack must tolerate.

Record lengths themselves are untouched — that invariance across conditions
is the paper's central observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.profiles import OperationalCondition
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomSource
from repro.utils.units import Bandwidth, mbps
from repro.utils.validation import ensure_probability


@dataclass(frozen=True)
class NetworkConditions:
    """Timing and loss parameters of the viewer's access network."""

    base_rtt_seconds: float
    jitter_seconds: float
    loss_probability: float
    downlink: Bandwidth
    uplink: Bandwidth
    cross_traffic_flow_rate_per_minute: float

    def __post_init__(self) -> None:
        if self.base_rtt_seconds <= 0:
            raise ConfigurationError("base RTT must be positive")
        if self.jitter_seconds < 0:
            raise ConfigurationError("jitter must be non-negative")
        ensure_probability(self.loss_probability, "loss_probability")
        if self.cross_traffic_flow_rate_per_minute < 0:
            raise ConfigurationError("cross traffic rate must be non-negative")

    def one_way_delay(self, rng: RandomSource) -> float:
        """Sample a one-way delay for a packet under these conditions."""
        half_rtt = self.base_rtt_seconds / 2.0
        return max(0.001, half_rtt + rng.normal(0.0, self.jitter_seconds / 2.0))

    def is_lost(self, rng: RandomSource) -> bool:
        """Sample whether a packet is lost (and will be retransmitted)."""
        return rng.bernoulli(self.loss_probability)

    def serialization_delay(self, num_bytes: int, uplink: bool) -> float:
        """Time to push ``num_bytes`` onto the wire in the given direction."""
        link = self.uplink if uplink else self.downlink
        return link.transfer_time(num_bytes)


_BASE_RTT = {"wired": 0.018, "wireless": 0.032}
_JITTER = {"wired": 0.002, "wireless": 0.008}
_LOSS = {
    ("wired", "morning"): 0.0005,
    ("wired", "noon"): 0.001,
    ("wired", "night"): 0.004,
    ("wireless", "morning"): 0.002,
    ("wireless", "noon"): 0.004,
    ("wireless", "night"): 0.012,
}
_DOWNLINK_MBPS = {"morning": 48.0, "noon": 40.0, "night": 22.0}
_CROSS_FLOWS_PER_MINUTE = {"morning": 1.5, "noon": 2.5, "night": 6.0}


def conditions_for(condition: OperationalCondition) -> NetworkConditions:
    """Derive :class:`NetworkConditions` from an operational condition."""
    connection = condition.connection_type
    traffic = condition.traffic_condition
    downlink = mbps(_DOWNLINK_MBPS[traffic] * (0.8 if connection == "wireless" else 1.0))
    uplink = mbps(max(4.0, downlink.megabits_per_second / 8.0))
    return NetworkConditions(
        base_rtt_seconds=_BASE_RTT[connection],
        jitter_seconds=_JITTER[connection],
        loss_probability=_LOSS[(connection, traffic)],
        downlink=downlink,
        uplink=uplink,
        cross_traffic_flow_rate_per_minute=_CROSS_FLOWS_PER_MINUTE[traffic],
    )
