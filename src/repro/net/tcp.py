"""TCP send-side behaviour: segmentation of TLS record streams into packets."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import PacketError
from repro.net.endpoints import FiveTuple
from repro.net.packet import Direction, Packet, push_flags


def segment_payload(payload: bytes, mss: int) -> list[bytes]:
    """Split an application byte string into <= ``mss``-byte TCP payloads."""
    if mss <= 0:
        raise PacketError(f"MSS must be positive, got {mss}")
    if not payload:
        return []
    return [payload[start : start + mss] for start in range(0, len(payload), mss)]


@dataclass
class TCPSender:
    """One direction of a TCP connection that the simulator writes into.

    The sender keeps sequence-number state so the emitted packets form a
    coherent TCP stream that pcap consumers (and our own flow reassembly)
    can follow.

    Parameters
    ----------
    five_tuple:
        The connection the sender belongs to.
    direction:
        Which way this sender transmits.
    mss:
        Maximum segment size for data packets.
    initial_sequence_number:
        Starting sequence number (kept small by default for readability in
        packet dumps).
    """

    five_tuple: FiveTuple
    direction: Direction
    mss: int = 1460
    initial_sequence_number: int = 1
    _next_sequence: int = field(init=False, repr=False)
    _peer_sequence: int = field(default=1, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise PacketError(f"MSS must be positive, got {self.mss}")
        if self.initial_sequence_number < 0:
            raise PacketError("initial sequence number must be non-negative")
        self._next_sequence = self.initial_sequence_number

    @property
    def next_sequence_number(self) -> int:
        """Sequence number the next data byte will carry."""
        return self._next_sequence

    def note_peer_progress(self, peer_next_sequence: int) -> None:
        """Record how far the other direction has advanced (for ACK fields)."""
        if peer_next_sequence < 0:
            raise PacketError("peer sequence must be non-negative")
        self._peer_sequence = peer_next_sequence

    def send(
        self,
        payload: bytes,
        timestamp: float,
        annotations: dict[str, object] | None = None,
    ) -> list[Packet]:
        """Segment ``payload`` into packets stamped at ``timestamp``.

        All segments of one application write share the same annotations; the
        capture layer later spaces their timestamps by serialization delay.
        """
        if not payload:
            raise PacketError("cannot send an empty payload")
        packets: list[Packet] = []
        for segment in segment_payload(payload, self.mss):
            packets.append(
                Packet(
                    timestamp=timestamp,
                    direction=self.direction,
                    five_tuple=self.five_tuple,
                    payload=segment,
                    sequence_number=self._next_sequence,
                    acknowledgment_number=self._peer_sequence,
                    flags=push_flags(),
                    annotations=dict(annotations or {}),
                )
            )
            self._next_sequence += len(segment)
        return packets

    def send_ack(self, timestamp: float) -> Packet:
        """Emit a bare ACK (no payload)."""
        return Packet(
            timestamp=timestamp,
            direction=self.direction,
            five_tuple=self.five_tuple,
            payload=b"",
            sequence_number=self._next_sequence,
            acknowledgment_number=self._peer_sequence,
        )
