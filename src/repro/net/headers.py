"""Binary construction and parsing of Ethernet, IPv4 and TCP headers.

The pcap files the library writes must be readable by standard tools
(tcpdump, Wireshark, scapy), so the headers are real wire-format headers with
valid checksums, not ad-hoc structs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.exceptions import PacketError

ETHERTYPE_IPV4 = 0x0800
IP_PROTO_TCP = 6

_ETH_STRUCT = struct.Struct("!6s6sH")
_IPV4_STRUCT = struct.Struct("!BBHHHBBH4s4s")
_TCP_STRUCT = struct.Struct("!HHIIBBHHH")

ETHERNET_HEADER_LENGTH = _ETH_STRUCT.size  # 14
IPV4_HEADER_LENGTH = _IPV4_STRUCT.size  # 20
TCP_HEADER_LENGTH = _TCP_STRUCT.size  # 20

TCP_FLAG_FIN = 0x01
TCP_FLAG_SYN = 0x02
TCP_FLAG_RST = 0x04
TCP_FLAG_PSH = 0x08
TCP_FLAG_ACK = 0x10


def checksum16(data: bytes) -> int:
    """RFC 1071 16-bit one's-complement checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def parse_ipv4(address: str) -> bytes:
    """Convert dotted-quad notation into 4 network-order bytes."""
    parts = address.split(".")
    if len(parts) != 4:
        raise PacketError(f"invalid IPv4 address {address!r}")
    try:
        values = [int(part) for part in parts]
    except ValueError:
        raise PacketError(f"invalid IPv4 address {address!r}") from None
    if any(not 0 <= value <= 255 for value in values):
        raise PacketError(f"invalid IPv4 address {address!r}")
    return bytes(values)


def format_ipv4(raw: bytes) -> str:
    """Convert 4 bytes into dotted-quad notation."""
    if len(raw) != 4:
        raise PacketError(f"IPv4 address must be 4 bytes, got {len(raw)}")
    return ".".join(str(byte) for byte in raw)


def parse_mac(address: str) -> bytes:
    """Convert ``aa:bb:cc:dd:ee:ff`` notation into 6 bytes."""
    parts = address.split(":")
    if len(parts) != 6:
        raise PacketError(f"invalid MAC address {address!r}")
    try:
        return bytes(int(part, 16) for part in parts)
    except ValueError:
        raise PacketError(f"invalid MAC address {address!r}") from None


@dataclass(frozen=True)
class EthernetHeader:
    """Ethernet II header."""

    destination_mac: str
    source_mac: str
    ethertype: int = ETHERTYPE_IPV4

    def serialize(self) -> bytes:
        """Encode the header into 14 wire bytes."""
        return _ETH_STRUCT.pack(
            parse_mac(self.destination_mac),
            parse_mac(self.source_mac),
            self.ethertype,
        )

    @classmethod
    def parse(cls, data: bytes) -> tuple["EthernetHeader", int]:
        """Decode a header from the start of ``data``; return it and its size."""
        if len(data) < ETHERNET_HEADER_LENGTH:
            raise PacketError("truncated Ethernet header")
        dst, src, ethertype = _ETH_STRUCT.unpack_from(data)
        to_str = lambda raw: ":".join(f"{byte:02x}" for byte in raw)  # noqa: E731
        return (
            cls(destination_mac=to_str(dst), source_mac=to_str(src), ethertype=ethertype),
            ETHERNET_HEADER_LENGTH,
        )


@dataclass(frozen=True)
class IPv4Header:
    """Minimal (option-less) IPv4 header."""

    source: str
    destination: str
    total_length: int
    identification: int = 0
    ttl: int = 64
    protocol: int = IP_PROTO_TCP

    def __post_init__(self) -> None:
        if not IPV4_HEADER_LENGTH <= self.total_length <= 0xFFFF:
            raise PacketError(f"invalid IPv4 total length {self.total_length}")
        if not 0 <= self.identification <= 0xFFFF:
            raise PacketError(f"invalid IPv4 identification {self.identification}")
        if not 0 < self.ttl <= 255:
            raise PacketError(f"invalid TTL {self.ttl}")

    def serialize(self) -> bytes:
        """Encode the header (with a correct checksum) into 20 wire bytes."""
        version_ihl = (4 << 4) | 5
        without_checksum = _IPV4_STRUCT.pack(
            version_ihl,
            0,
            self.total_length,
            self.identification,
            0x4000,  # don't fragment
            self.ttl,
            self.protocol,
            0,
            parse_ipv4(self.source),
            parse_ipv4(self.destination),
        )
        checksum = checksum16(without_checksum)
        return without_checksum[:10] + struct.pack("!H", checksum) + without_checksum[12:]

    @classmethod
    def parse(cls, data: bytes) -> tuple["IPv4Header", int]:
        """Decode a header from the start of ``data``; return it and its size."""
        if len(data) < IPV4_HEADER_LENGTH:
            raise PacketError("truncated IPv4 header")
        (
            version_ihl,
            _tos,
            total_length,
            identification,
            _flags,
            ttl,
            protocol,
            _checksum,
            source,
            destination,
        ) = _IPV4_STRUCT.unpack_from(data)
        if version_ihl >> 4 != 4:
            raise PacketError("not an IPv4 packet")
        header_length = (version_ihl & 0x0F) * 4
        if header_length < IPV4_HEADER_LENGTH:
            raise PacketError(f"implausible IPv4 header length {header_length}")
        return (
            cls(
                source=format_ipv4(source),
                destination=format_ipv4(destination),
                total_length=total_length,
                identification=identification,
                ttl=ttl,
                protocol=protocol,
            ),
            header_length,
        )


@dataclass(frozen=True)
class TCPHeader:
    """Minimal (option-less) TCP header."""

    source_port: int
    destination_port: int
    sequence_number: int
    acknowledgment_number: int
    flags: int
    window: int = 65_535

    def __post_init__(self) -> None:
        for name in ("source_port", "destination_port"):
            port = getattr(self, name)
            if not 0 < port <= 0xFFFF:
                raise PacketError(f"invalid {name} {port}")
        for name in ("sequence_number", "acknowledgment_number"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFFFFFFF:
                raise PacketError(f"invalid {name} {value}")
        if not 0 <= self.window <= 0xFFFF:
            raise PacketError(f"invalid window {self.window}")

    def serialize(self, source_ip: str, destination_ip: str, payload: bytes) -> bytes:
        """Encode the header with a valid checksum over the pseudo-header."""
        data_offset_flags = (5 << 12) | (self.flags & 0x3F)
        without_checksum = _TCP_STRUCT.pack(
            self.source_port,
            self.destination_port,
            self.sequence_number,
            self.acknowledgment_number,
            (data_offset_flags >> 8) & 0xFF,
            data_offset_flags & 0xFF,
            self.window,
            0,
            0,
        )
        pseudo = (
            parse_ipv4(source_ip)
            + parse_ipv4(destination_ip)
            + struct.pack("!BBH", 0, IP_PROTO_TCP, len(without_checksum) + len(payload))
        )
        checksum = checksum16(pseudo + without_checksum + payload)
        return without_checksum[:16] + struct.pack("!H", checksum) + without_checksum[18:]

    @classmethod
    def parse(cls, data: bytes) -> tuple["TCPHeader", int]:
        """Decode a header from the start of ``data``; return it and its size."""
        if len(data) < TCP_HEADER_LENGTH:
            raise PacketError("truncated TCP header")
        (
            source_port,
            destination_port,
            sequence_number,
            acknowledgment_number,
            offset_byte,
            flags_byte,
            window,
            _checksum,
            _urgent,
        ) = _TCP_STRUCT.unpack_from(data)
        header_length = (offset_byte >> 4) * 4
        if header_length < TCP_HEADER_LENGTH:
            raise PacketError(f"implausible TCP header length {header_length}")
        return (
            cls(
                source_port=source_port,
                destination_port=destination_port,
                sequence_number=sequence_number,
                acknowledgment_number=acknowledgment_number,
                flags=flags_byte & 0x3F,
                window=window,
            ),
            header_length,
        )
