"""The capture point: where the eavesdropper sits.

A :class:`CaptureSink` collects the packets the simulator emits, applies the
observable consequences of the network-condition model (serialization delays,
occasional retransmitted duplicates, cross-traffic flows to unrelated
servers), and produces a :class:`CapturedTrace` — the passive observer's view
of one viewing session.  Traces can be persisted to and restored from pcap.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.exceptions import PacketError
from repro.net.conditions import NetworkConditions
from repro.net.endpoints import Endpoint, FiveTuple
from repro.net.flow import FlowTable
from repro.net.packet import Direction, Packet
from repro.net.pcap import PcapReader, PcapWriter
from repro.net.tcp import TCPSender
from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class CapturedTrace:
    """Everything the eavesdropper recorded for one session."""

    packets: tuple[Packet, ...]
    client_ip: str
    server_ip: str

    def __post_init__(self) -> None:
        if not self.packets:
            raise PacketError("a captured trace must contain at least one packet")

    @property
    def packet_count(self) -> int:
        """Total packets in the trace."""
        return len(self.packets)

    @property
    def duration_seconds(self) -> float:
        """Time between the first and last captured packet."""
        timestamps = [packet.timestamp for packet in self.packets]
        return max(timestamps) - min(timestamps)

    def client_packets(self) -> list[Packet]:
        """Uplink packets in capture order."""
        return [p for p in self.packets if p.direction is Direction.CLIENT_TO_SERVER]

    def server_packets(self) -> list[Packet]:
        """Downlink packets in capture order."""
        return [p for p in self.packets if p.direction is Direction.SERVER_TO_CLIENT]

    def total_bytes(self) -> int:
        """Sum of frame lengths across the trace."""
        return sum(packet.wire_length for packet in self.packets)

    def flow_table(self) -> FlowTable:
        """Group the trace's packets into flows."""
        table = FlowTable()
        table.add_all(self.packets)
        return table

    def to_pcap(self, path: str | Path) -> int:
        """Write the trace to a pcap file; returns the packet count written."""
        ordered = sorted(self.packets, key=lambda packet: packet.timestamp)
        with PcapWriter(path) as writer:
            for packet in ordered:
                writer.write(packet.timestamp, packet.serialize_frame())
            return writer.packets_written

    def to_pcap_atomic(self, path: str | Path) -> int:
        """Publish the trace as a pcap that appears complete or not at all.

        The capture is first written next to its destination under the
        ``<name>.inprogress`` suffix — the same marker convention the dataset
        writer uses — and renamed into place only once every packet is on
        disk.  A capture-ingest watcher (:mod:`repro.ingest`) therefore never
        observes a truncated ``*.pcap``: the marker name says "still being
        written", the final name says "finished".  Returns the packet count.
        """
        path = Path(path)
        staging_path = path.with_name(path.name + ".inprogress")
        written = self.to_pcap(staging_path)
        # The data must be durable before the rename publishes the final
        # name: a rename can survive a power cut that the buffered packet
        # bytes did not, which would leave a truncated capture under the
        # very name the convention promises is complete.
        with open(staging_path, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(staging_path, path)
        return written

    @classmethod
    def from_pcap(
        cls, path: str | Path, client_ip: str, server_ip: str
    ) -> "CapturedTrace":
        """Rebuild a trace from a pcap file written by :meth:`to_pcap`.

        Ground-truth annotations are *not* recoverable from pcap — by design:
        the on-disk artefact contains only what a real capture would.
        """
        packets: list[Packet] = []
        for record in PcapReader(path).read():
            packet = Packet.parse_frame(record.frame, record.timestamp, client_ip)
            if packet is not None:
                packets.append(packet)
        if not packets:
            raise PacketError(f"pcap file {path} contained no parseable TCP packets")
        return cls(packets=tuple(packets), client_ip=client_ip, server_ip=server_ip)


class CaptureSink:
    """Collects simulator packets and applies capture-side noise.

    Parameters
    ----------
    conditions:
        The network conditions in force during the session.
    rng:
        Random source for retransmission/cross-traffic sampling.
    client_ip / server_ip:
        Addresses of the viewer's machine and the streaming server, used when
        synthesising cross-traffic flows and when exporting to pcap.
    """

    def __init__(
        self,
        conditions: NetworkConditions,
        rng: RandomSource,
        client_ip: str = "192.168.1.23",
        server_ip: str = "198.51.100.7",
    ) -> None:
        self._conditions = conditions
        self._rng = rng
        self._client_ip = client_ip
        self._server_ip = server_ip
        self._packets: list[Packet] = []

    @property
    def client_ip(self) -> str:
        """IP address of the viewer's machine."""
        return self._client_ip

    @property
    def server_ip(self) -> str:
        """IP address of the streaming server."""
        return self._server_ip

    def observe(self, packet: Packet) -> None:
        """Record one packet, possibly duplicating it as a retransmission."""
        self._packets.append(packet)
        if packet.payload and self._conditions.is_lost(self._rng):
            # The original made it to the capture point but was lost
            # downstream; the sender retransmits after roughly one RTT and the
            # duplicate is captured too.
            retransmit_delay = self._conditions.base_rtt_seconds * self._rng.uniform(1.0, 2.0)
            self._packets.append(
                packet.as_retransmission(packet.timestamp + retransmit_delay)
            )

    def observe_all(self, packets: Iterable[Packet]) -> None:
        """Record an iterable of packets."""
        for packet in packets:
            self.observe(packet)

    def add_cross_traffic(
        self,
        session_duration_seconds: float,
        rng: RandomSource | None = None,
    ) -> int:
        """Synthesise unrelated background flows over the session duration.

        Each cross-traffic flow is a short TLS-looking exchange with a
        different server (software updates, messaging apps, other tabs).  The
        attack must not be confused by them; they are *not* on the Netflix
        five-tuple, so correct flow selection filters them out.  Returns the
        number of cross-traffic packets added.
        """
        rng = rng or self._rng.child("cross-traffic")
        if session_duration_seconds < 0:
            raise PacketError("session duration must be non-negative")
        rate = self._conditions.cross_traffic_flow_rate_per_minute
        expected_flows = rate * session_duration_seconds / 60.0
        flow_count = rng.poisson(expected_flows) if expected_flows > 0 else 0
        added = 0
        for flow_index in range(flow_count):
            flow_rng = rng.child(flow_index)
            start = flow_rng.uniform(0.0, max(session_duration_seconds, 1e-3))
            remote = Endpoint(
                ip=f"203.0.113.{flow_rng.integer(1, 250)}",
                port=443,
            )
            local = Endpoint(ip=self._client_ip, port=flow_rng.integer(40_000, 60_000))
            five_tuple = FiveTuple(client=local, server=remote)
            uplink = TCPSender(five_tuple, Direction.CLIENT_TO_SERVER, mss=1460)
            downlink = TCPSender(five_tuple, Direction.SERVER_TO_CLIENT, mss=1460)
            exchanges = flow_rng.integer(2, 8)
            clock = start
            for _ in range(exchanges):
                request_size = flow_rng.integer(180, 1400)
                response_size = flow_rng.integer(400, 9000)
                request_payload = flow_rng.random_bytes(request_size)
                response_payload = flow_rng.random_bytes(response_size)
                for packet in uplink.send(request_payload, clock):
                    self._packets.append(packet)
                    added += 1
                clock += self._conditions.base_rtt_seconds
                for packet in downlink.send(response_payload, clock):
                    self._packets.append(packet)
                    added += 1
                clock += flow_rng.exponential(0.8)
        return added

    def trace(self) -> CapturedTrace:
        """Finalize the capture into an immutable trace, sorted by time."""
        ordered = tuple(sorted(self._packets, key=lambda packet: packet.timestamp))
        return CapturedTrace(
            packets=ordered, client_ip=self._client_ip, server_ip=self._server_ip
        )

    def __len__(self) -> int:
        return len(self._packets)
