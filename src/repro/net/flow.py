"""Flow bookkeeping and TCP stream reassembly.

The attack works per connection and per direction: it reassembles the
client-to-server byte stream of the TLS connection to Netflix and walks the
TLS record headers inside it.  :class:`Flow` provides that reassembly (with
retransmission suppression), and :class:`FlowTable` groups captured packets
into flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import PacketError
from repro.net.endpoints import FiveTuple
from repro.net.packet import Direction, Packet


@dataclass
class _DirectionalStream:
    """Payload bytes of one direction, keyed by sequence number."""

    segments: dict[int, bytes] = field(default_factory=dict)
    packet_count: int = 0
    retransmission_count: int = 0

    def add(self, packet: Packet) -> None:
        self.packet_count += 1
        if not packet.payload:
            return
        existing = self.segments.get(packet.sequence_number)
        if existing is not None:
            # Same sequence number seen twice: a retransmission (possibly a
            # shorter or longer overlap); keep the longer payload.
            self.retransmission_count += 1
            if len(packet.payload) <= len(existing):
                return
        self.segments[packet.sequence_number] = packet.payload

    def reassemble(self) -> bytes:
        """Concatenate payloads in sequence order, tolerating overlaps."""
        stream = bytearray()
        expected: int | None = None
        for sequence in sorted(self.segments):
            payload = self.segments[sequence]
            if expected is None:
                stream.extend(payload)
                expected = sequence + len(payload)
                continue
            if sequence >= expected:
                # A gap means bytes were never captured; the observer can only
                # concatenate what it saw (gaps are rare in our simulation and
                # correspond to captured-side loss).
                stream.extend(payload)
                expected = sequence + len(payload)
            else:
                overlap = expected - sequence
                if overlap < len(payload):
                    stream.extend(payload[overlap:])
                    expected = sequence + len(payload)
        return bytes(stream)


class Flow:
    """All packets of one TCP connection, split by direction."""

    def __init__(self, five_tuple: FiveTuple) -> None:
        self._five_tuple = five_tuple
        self._streams = {
            Direction.CLIENT_TO_SERVER: _DirectionalStream(),
            Direction.SERVER_TO_CLIENT: _DirectionalStream(),
        }
        self._packets: list[Packet] = []

    @property
    def five_tuple(self) -> FiveTuple:
        """The connection identifier."""
        return self._five_tuple

    @property
    def packets(self) -> tuple[Packet, ...]:
        """Every packet added to the flow, in arrival order."""
        return tuple(self._packets)

    def add(self, packet: Packet) -> None:
        """Add one packet to the flow."""
        if packet.five_tuple != self._five_tuple:
            raise PacketError(
                f"packet for {packet.five_tuple.key} added to flow {self._five_tuple.key}"
            )
        self._packets.append(packet)
        self._streams[packet.direction].add(packet)

    def packet_count(self, direction: Direction | None = None) -> int:
        """Number of packets, optionally restricted to one direction."""
        if direction is None:
            return len(self._packets)
        return self._streams[direction].packet_count

    def retransmission_count(self, direction: Direction) -> int:
        """Number of suppressed duplicate segments in one direction."""
        return self._streams[direction].retransmission_count

    def payload_bytes(self, direction: Direction) -> int:
        """Total distinct payload bytes observed in one direction."""
        return len(self.reassemble(direction))

    def reassemble(self, direction: Direction) -> bytes:
        """The reassembled byte stream of one direction."""
        return self._streams[direction].reassemble()

    def client_packets(self) -> list[Packet]:
        """Uplink packets in arrival order (what the attack inspects)."""
        return [
            packet
            for packet in self._packets
            if packet.direction is Direction.CLIENT_TO_SERVER
        ]

    def duration_seconds(self) -> float:
        """Time between the first and last packet of the flow."""
        if not self._packets:
            return 0.0
        timestamps = [packet.timestamp for packet in self._packets]
        return max(timestamps) - min(timestamps)


class FlowTable:
    """Groups packets into flows keyed by their five-tuple."""

    def __init__(self) -> None:
        self._flows: dict[str, Flow] = {}

    def add(self, packet: Packet) -> Flow:
        """Route one packet to its flow, creating the flow if needed."""
        key = packet.five_tuple.key
        flow = self._flows.get(key)
        if flow is None:
            flow = Flow(packet.five_tuple)
            self._flows[key] = flow
        flow.add(packet)
        return flow

    def add_all(self, packets: Iterable[Packet]) -> None:
        """Route an iterable of packets."""
        for packet in packets:
            self.add(packet)

    @property
    def flows(self) -> tuple[Flow, ...]:
        """All flows, in creation order."""
        return tuple(self._flows.values())

    def flow_for(self, five_tuple: FiveTuple) -> Flow:
        """Look up the flow for a connection."""
        try:
            return self._flows[five_tuple.key]
        except KeyError:
            raise PacketError(f"no flow for {five_tuple.key}") from None

    def largest_flow(self) -> Flow:
        """The flow carrying the most payload bytes (heuristically, the video).

        An eavesdropper who does not know which connection is the Netflix one
        can use this to find it: the streaming connection dwarfs everything
        else in a viewing session.
        """
        if not self._flows:
            raise PacketError("flow table is empty")
        return max(
            self._flows.values(),
            key=lambda flow: flow.payload_bytes(Direction.SERVER_TO_CLIENT),
        )

    def __len__(self) -> int:
        return len(self._flows)
