"""The packet abstraction shared by the simulator, the capture and the attack."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from repro.exceptions import PacketError
from repro.net.endpoints import Endpoint, FiveTuple
from repro.net.headers import (
    ETHERNET_HEADER_LENGTH,
    IPV4_HEADER_LENGTH,
    TCP_FLAG_ACK,
    TCP_FLAG_PSH,
    TCP_FLAG_SYN,
    TCP_HEADER_LENGTH,
    EthernetHeader,
    IPv4Header,
    TCPHeader,
)


class Direction(str, Enum):
    """Which way a packet travels relative to the viewer's machine."""

    CLIENT_TO_SERVER = "client_to_server"
    SERVER_TO_CLIENT = "server_to_client"

    @property
    def is_client(self) -> bool:
        """``True`` for uplink (client-originated) packets."""
        return self is Direction.CLIENT_TO_SERVER


_CLIENT_MAC = "02:00:00:00:00:01"
_SERVER_MAC = "02:00:00:00:00:02"


@dataclass(frozen=True)
class Packet:
    """One captured TCP segment.

    ``annotations`` carry simulator-side ground truth (e.g. which TLS record
    and which state message a segment belongs to); they are never serialized
    into the pcap and the attack never reads them — they exist so tests and
    evaluation code can compute accuracy.
    """

    timestamp: float
    direction: Direction
    five_tuple: FiveTuple
    payload: bytes
    sequence_number: int = 0
    acknowledgment_number: int = 0
    flags: int = TCP_FLAG_ACK
    is_retransmission: bool = False
    annotations: dict[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise PacketError(f"packet timestamp must be non-negative, got {self.timestamp}")
        if self.sequence_number < 0 or self.acknowledgment_number < 0:
            raise PacketError("sequence/acknowledgment numbers must be non-negative")

    @property
    def source(self) -> Endpoint:
        """The sending endpoint, derived from the direction."""
        if self.direction.is_client:
            return self.five_tuple.client
        return self.five_tuple.server

    @property
    def destination(self) -> Endpoint:
        """The receiving endpoint, derived from the direction."""
        if self.direction.is_client:
            return self.five_tuple.server
        return self.five_tuple.client

    @property
    def payload_length(self) -> int:
        """TCP payload bytes carried by the segment."""
        return len(self.payload)

    @property
    def wire_length(self) -> int:
        """Total frame length on the wire (Ethernet + IP + TCP + payload)."""
        return (
            ETHERNET_HEADER_LENGTH
            + IPV4_HEADER_LENGTH
            + TCP_HEADER_LENGTH
            + self.payload_length
        )

    def with_timestamp(self, timestamp: float) -> "Packet":
        """Copy of the packet stamped at a different time."""
        return replace(self, timestamp=timestamp)

    def as_retransmission(self, timestamp: float) -> "Packet":
        """Copy of the packet marked as a retransmission at a later time."""
        return replace(self, timestamp=timestamp, is_retransmission=True)

    def serialize_frame(self) -> bytes:
        """Full Ethernet frame bytes for pcap emission."""
        source = self.source
        destination = self.destination
        total_length = IPV4_HEADER_LENGTH + TCP_HEADER_LENGTH + self.payload_length
        if total_length > 0xFFFF:
            raise PacketError(
                f"IPv4 total length {total_length} exceeds 65535; "
                "segment the payload before building packets"
            )
        ethernet = EthernetHeader(
            destination_mac=_SERVER_MAC if self.direction.is_client else _CLIENT_MAC,
            source_mac=_CLIENT_MAC if self.direction.is_client else _SERVER_MAC,
        )
        ip_header = IPv4Header(
            source=source.ip,
            destination=destination.ip,
            total_length=total_length,
            identification=self.sequence_number & 0xFFFF,
        )
        tcp_header = TCPHeader(
            source_port=source.port,
            destination_port=destination.port,
            sequence_number=self.sequence_number & 0xFFFFFFFF,
            acknowledgment_number=self.acknowledgment_number & 0xFFFFFFFF,
            flags=self.flags,
        )
        return (
            ethernet.serialize()
            + ip_header.serialize()
            + tcp_header.serialize(source.ip, destination.ip, self.payload)
            + self.payload
        )

    @classmethod
    def parse_frame(
        cls,
        frame: bytes,
        timestamp: float,
        client_ip: str,
    ) -> Optional["Packet"]:
        """Rebuild a :class:`Packet` from raw frame bytes.

        Returns ``None`` for frames that are not IPv4/TCP.  ``client_ip``
        tells the parser which endpoint is the viewer's machine so it can
        recover the direction.
        """
        ethernet, eth_len = EthernetHeader.parse(frame)
        if ethernet.ethertype != 0x0800:
            return None
        ip_header, ip_len = IPv4Header.parse(frame[eth_len:])
        if ip_header.protocol != 6:
            return None
        tcp_offset = eth_len + ip_len
        tcp_header, tcp_len = TCPHeader.parse(frame[tcp_offset:])
        payload_start = tcp_offset + tcp_len
        payload_end = eth_len + ip_header.total_length
        payload = bytes(frame[payload_start:payload_end])
        from_client = ip_header.source == client_ip
        client = Endpoint(
            ip=ip_header.source if from_client else ip_header.destination,
            port=tcp_header.source_port if from_client else tcp_header.destination_port,
        )
        server = Endpoint(
            ip=ip_header.destination if from_client else ip_header.source,
            port=tcp_header.destination_port if from_client else tcp_header.source_port,
        )
        return cls(
            timestamp=timestamp,
            direction=Direction.CLIENT_TO_SERVER if from_client else Direction.SERVER_TO_CLIENT,
            five_tuple=FiveTuple(client=client, server=server),
            payload=payload,
            sequence_number=tcp_header.sequence_number,
            acknowledgment_number=tcp_header.acknowledgment_number,
            flags=tcp_header.flags,
        )


def syn_packet(five_tuple: FiveTuple, timestamp: float) -> Packet:
    """The client's SYN that opens a connection (no payload)."""
    return Packet(
        timestamp=timestamp,
        direction=Direction.CLIENT_TO_SERVER,
        five_tuple=five_tuple,
        payload=b"",
        flags=TCP_FLAG_SYN,
    )


def push_flags() -> int:
    """Flags for a data-bearing segment (PSH+ACK)."""
    return TCP_FLAG_PSH | TCP_FLAG_ACK
