"""Reading and writing pcap files (classic libpcap format, no dependencies).

The dataset stores each viewer's capture as a standard pcap so the traces can
be opened in Wireshark/tcpdump and so the attack consumes exactly what a real
eavesdropper would: frames and timestamps, nothing more.

Format reference: the classic 24-byte global header (magic 0xa1b2c3d4,
microsecond timestamps) followed by per-packet records of a 16-byte header
(seconds, microseconds, captured length, original length) and the frame bytes.
Both byte orders are accepted on read — a capture written on a big-endian
machine stores the magic byte-swapped relative to ours.

Reading is built for the attack's hot path: the file is memory-mapped once
and every packet header is decoded in a single vectorized numpy pass, so a
capture costs one sequential scan instead of a per-packet
``struct.unpack``/``bytes()`` copy loop.  Two views sit on top of that scan:

* :meth:`PcapReader.read` — the classic packet iterator, now yielding
  zero-copy :class:`PcapPacket` frames (memoryviews into the mapping).
* :meth:`PcapReader.read_columns` — the columnar fast path: one
  :class:`PcapColumns` holding timestamp/length arrays plus frame views,
  ready for the batch kernels in :mod:`repro.core.kernel`.

The mapping stays alive for as long as any view into it does (the columns,
a yielded frame, …) and is released by reference counting — no explicit
close, no dangling buffers.  Callers that need frames to outlive every view
use :func:`read_pcap`, which returns owned ``bytes`` copies.
"""

from __future__ import annotations

import mmap
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.exceptions import PcapError

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_PACKET_HEADER = struct.Struct("<IIII")


@dataclass(frozen=True)
class PcapPacket:
    """One packet record read from (or destined for) a pcap file.

    ``frame`` is a zero-copy memoryview into the reader's file mapping when
    the packet came from :class:`PcapReader`; :func:`read_pcap` converts it
    to owned ``bytes`` for callers that keep frames around.
    """

    timestamp: float
    frame: bytes | memoryview
    original_length: int | None = None

    @property
    def captured_length(self) -> int:
        """Bytes actually stored in the file."""
        return len(self.frame)


@dataclass(frozen=True)
class PcapColumns:
    """Columnar view of one pcap file: arrays for headers, views for frames.

    All arrays share the packet index; :meth:`frame` slices the underlying
    file mapping without copying.  The mapping is kept alive by ``data``
    (and by any frame view derived from it), so the columns can outlive the
    :class:`PcapReader` that produced them.
    """

    path: Path
    timestamps: np.ndarray = field(repr=False)
    captured_lengths: np.ndarray = field(repr=False)
    original_lengths: np.ndarray = field(repr=False)
    frame_offsets: np.ndarray = field(repr=False)
    data: memoryview = field(repr=False)

    @property
    def packet_count(self) -> int:
        """Number of packet records in the file."""
        return int(self.timestamps.size)

    def __len__(self) -> int:
        return self.packet_count

    def frame(self, index: int) -> memoryview:
        """Zero-copy view of packet ``index``'s captured frame bytes."""
        offset = int(self.frame_offsets[index])
        return self.data[offset : offset + int(self.captured_lengths[index])]

    def iter_packets(self) -> Iterator[PcapPacket]:
        """Yield :class:`PcapPacket` records (frames as zero-copy views)."""
        timestamps = self.timestamps.tolist()
        offsets = self.frame_offsets.tolist()
        captured = self.captured_lengths.tolist()
        originals = self.original_lengths.tolist()
        for timestamp, offset, length, original in zip(
            timestamps, offsets, captured, originals
        ):
            yield PcapPacket(
                timestamp=timestamp,
                frame=self.data[offset : offset + length],
                original_length=original,
            )


class PcapWriter:
    """Streaming pcap writer.

    Usage::

        with PcapWriter(path) as writer:
            writer.write(timestamp, frame_bytes)
    """

    def __init__(self, path: str | Path, snaplen: int = 65_535) -> None:
        if snaplen <= 0:
            raise PcapError(f"snaplen must be positive, got {snaplen}")
        self._path = Path(path)
        self._snaplen = snaplen
        self._handle = None
        self._count = 0

    def __enter__(self) -> "PcapWriter":
        self._handle = open(self._path, "wb")
        header = _GLOBAL_HEADER.pack(
            PCAP_MAGIC, 2, 4, 0, 0, self._snaplen, LINKTYPE_ETHERNET
        )
        self._handle.write(header)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @property
    def packets_written(self) -> int:
        """Number of packet records emitted so far."""
        return self._count

    def write(self, timestamp: float, frame: bytes) -> None:
        """Append one packet record."""
        if self._handle is None:
            raise PcapError("PcapWriter must be used as a context manager")
        if timestamp < 0:
            raise PcapError(f"timestamp must be non-negative, got {timestamp}")
        if not frame:
            raise PcapError("cannot write an empty frame")
        seconds = int(timestamp)
        microseconds = int(round((timestamp - seconds) * 1_000_000))
        if microseconds >= 1_000_000:
            seconds += 1
            microseconds -= 1_000_000
        captured = frame[: self._snaplen]
        self._handle.write(
            _PACKET_HEADER.pack(seconds, microseconds, len(captured), len(frame))
        )
        self._handle.write(captured)
        self._count += 1


class PcapReader:
    """Iterates over the packet records of a pcap file.

    The file is memory-mapped and all packet headers decode in one
    vectorized pass (:meth:`read_columns`); :meth:`read` is a thin iterator
    over those columns yielding zero-copy frames.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)

    def __iter__(self) -> Iterator[PcapPacket]:
        return self.read()

    def read_columns(self) -> PcapColumns:
        """Decode every packet header into columnar arrays in one pass.

        The sequential part of the scan is minimal by construction: packet
        records chain through their captured-length field, so one pass hops
        record to record reading only that field (validating truncation on
        the way); the remaining header fields then decode in a single
        vectorized gather over all records at once.
        """
        try:
            with open(self._path, "rb") as handle:
                try:
                    mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
                except ValueError:
                    # An empty file cannot be mapped — and is not a pcap.
                    raise PcapError(
                        f"{self._path} is too short to be a pcap file"
                    ) from None
        except OSError as error:
            raise PcapError(f"cannot read pcap file {self._path}: {error}") from error
        data = memoryview(mapped)
        size = len(data)
        if size < _GLOBAL_HEADER.size:
            raise PcapError(f"{self._path} is too short to be a pcap file")
        magic = struct.unpack_from("<I", data)[0]
        if magic == PCAP_MAGIC:
            byteorder, word_dtype = "little", "<u4"
        elif magic == PCAP_MAGIC_SWAPPED:
            byteorder, word_dtype = "big", ">u4"
        else:
            raise PcapError(f"{self._path} has unknown pcap magic {magic:#x}")
        linktype = int.from_bytes(data[20:24], byteorder)
        if linktype != LINKTYPE_ETHERNET:
            raise PcapError(f"unsupported link type {linktype}")
        # The record-to-record hop is the only sequential part of the scan;
        # keep its per-iteration cost minimal (one unpack_from, no slicing).
        header_offsets: list[int] = []
        append = header_offsets.append
        read_caplen = struct.Struct("<I" if byteorder == "little" else ">I").unpack_from
        header_size = _PACKET_HEADER.size
        offset = _GLOBAL_HEADER.size
        while size - offset >= header_size:
            (captured_length,) = read_caplen(data, offset + 8)
            next_offset = offset + header_size + captured_length
            if next_offset > size:
                raise PcapError(f"{self._path} ends with a truncated packet body")
            append(offset)
            offset = next_offset
        if offset != size:
            raise PcapError(f"{self._path} ends with a truncated packet header")
        offsets = np.asarray(header_offsets, dtype=np.int64)
        raw = np.frombuffer(data, dtype=np.uint8)
        fields = (
            raw[offsets[:, None] + np.arange(_PACKET_HEADER.size)]
            .view(word_dtype)
            .astype(np.int64)
        )
        timestamps = (
            fields[:, 0].astype(np.float64) + fields[:, 1].astype(np.float64) / 1e6
        )
        return PcapColumns(
            path=self._path,
            timestamps=timestamps,
            captured_lengths=fields[:, 2],
            original_lengths=fields[:, 3],
            frame_offsets=offsets + _PACKET_HEADER.size,
            data=data,
        )

    def read(self) -> Iterator[PcapPacket]:
        """Yield every packet record in file order.

        Frames are zero-copy views into one shared file mapping — iterating
        a capture holds one mapping, not the whole file plus a copy of every
        frame.  Copy a frame with ``bytes(packet.frame)`` to keep it after
        the last view is dropped.
        """
        yield from self.read_columns().iter_packets()


def write_pcap(path: str | Path, packets: Iterator[tuple[float, bytes]] | list[tuple[float, bytes]]) -> int:
    """Write ``(timestamp, frame)`` pairs to ``path``; return the packet count."""
    with PcapWriter(path) as writer:
        for timestamp, frame in packets:
            writer.write(timestamp, frame)
        return writer.packets_written


def read_pcap(path: str | Path) -> list[PcapPacket]:
    """Read a whole pcap file into memory (frames as owned ``bytes``)."""
    return [
        PcapPacket(
            timestamp=packet.timestamp,
            frame=bytes(packet.frame),
            original_length=packet.original_length,
        )
        for packet in PcapReader(path).read()
    ]


def read_pcap_columns(path: str | Path) -> PcapColumns:
    """Columnar fast path over a pcap file (see :meth:`PcapReader.read_columns`)."""
    return PcapReader(path).read_columns()
