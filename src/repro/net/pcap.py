"""Reading and writing pcap files (classic libpcap format, no dependencies).

The dataset stores each viewer's capture as a standard pcap so the traces can
be opened in Wireshark/tcpdump and so the attack consumes exactly what a real
eavesdropper would: frames and timestamps, nothing more.

Format reference: the classic 24-byte global header (magic 0xa1b2c3d4,
microsecond timestamps) followed by per-packet records of a 16-byte header
(seconds, microseconds, captured length, original length) and the frame bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.exceptions import PcapError

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_PACKET_HEADER = struct.Struct("<IIII")


@dataclass(frozen=True)
class PcapPacket:
    """One packet record read from (or destined for) a pcap file."""

    timestamp: float
    frame: bytes
    original_length: int | None = None

    @property
    def captured_length(self) -> int:
        """Bytes actually stored in the file."""
        return len(self.frame)


class PcapWriter:
    """Streaming pcap writer.

    Usage::

        with PcapWriter(path) as writer:
            writer.write(timestamp, frame_bytes)
    """

    def __init__(self, path: str | Path, snaplen: int = 65_535) -> None:
        if snaplen <= 0:
            raise PcapError(f"snaplen must be positive, got {snaplen}")
        self._path = Path(path)
        self._snaplen = snaplen
        self._handle = None
        self._count = 0

    def __enter__(self) -> "PcapWriter":
        self._handle = open(self._path, "wb")
        header = _GLOBAL_HEADER.pack(
            PCAP_MAGIC, 2, 4, 0, 0, self._snaplen, LINKTYPE_ETHERNET
        )
        self._handle.write(header)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @property
    def packets_written(self) -> int:
        """Number of packet records emitted so far."""
        return self._count

    def write(self, timestamp: float, frame: bytes) -> None:
        """Append one packet record."""
        if self._handle is None:
            raise PcapError("PcapWriter must be used as a context manager")
        if timestamp < 0:
            raise PcapError(f"timestamp must be non-negative, got {timestamp}")
        if not frame:
            raise PcapError("cannot write an empty frame")
        seconds = int(timestamp)
        microseconds = int(round((timestamp - seconds) * 1_000_000))
        if microseconds >= 1_000_000:
            seconds += 1
            microseconds -= 1_000_000
        captured = frame[: self._snaplen]
        self._handle.write(
            _PACKET_HEADER.pack(seconds, microseconds, len(captured), len(frame))
        )
        self._handle.write(captured)
        self._count += 1


class PcapReader:
    """Iterates over the packet records of a pcap file."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)

    def __iter__(self) -> Iterator[PcapPacket]:
        return self.read()

    def read(self) -> Iterator[PcapPacket]:
        """Yield every packet record in file order."""
        try:
            data = self._path.read_bytes()
        except OSError as error:
            raise PcapError(f"cannot read pcap file {self._path}: {error}") from error
        if len(data) < _GLOBAL_HEADER.size:
            raise PcapError(f"{self._path} is too short to be a pcap file")
        magic = struct.unpack_from("<I", data)[0]
        if magic == PCAP_MAGIC:
            endian = "<"
        elif magic == PCAP_MAGIC_SWAPPED:
            endian = ">"
        else:
            raise PcapError(f"{self._path} has unknown pcap magic {magic:#x}")
        global_header = struct.Struct(endian + "IHHiIII")
        packet_header = struct.Struct(endian + "IIII")
        (_, _major, _minor, _tz, _sigfigs, _snaplen, linktype) = global_header.unpack_from(data)
        if linktype != LINKTYPE_ETHERNET:
            raise PcapError(f"unsupported link type {linktype}")
        offset = global_header.size
        while offset < len(data):
            if len(data) - offset < packet_header.size:
                raise PcapError(f"{self._path} ends with a truncated packet header")
            seconds, microseconds, captured_length, original_length = packet_header.unpack_from(
                data, offset
            )
            offset += packet_header.size
            if len(data) - offset < captured_length:
                raise PcapError(f"{self._path} ends with a truncated packet body")
            frame = bytes(data[offset : offset + captured_length])
            offset += captured_length
            yield PcapPacket(
                timestamp=seconds + microseconds / 1_000_000,
                frame=frame,
                original_length=original_length,
            )


def write_pcap(path: str | Path, packets: Iterator[tuple[float, bytes]] | list[tuple[float, bytes]]) -> int:
    """Write ``(timestamp, frame)`` pairs to ``path``; return the packet count."""
    with PcapWriter(path) as writer:
        for timestamp, frame in packets:
            writer.write(timestamp, frame)
        return writer.packets_written


def read_pcap(path: str | Path) -> list[PcapPacket]:
    """Read a whole pcap file into memory."""
    return list(PcapReader(path).read())
