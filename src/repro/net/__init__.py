"""Packet-level substrate: headers, segmentation, flows, pcap and conditions.

Everything the eavesdropper can see lives here.  The streaming simulator
hands TLS record bytes to a :class:`~repro.net.tcp.TCPSender`, which segments
them into IPv4/TCP packets; a :class:`~repro.net.capture.CaptureSink`
timestamps them (after the network-condition model has had its say) and can
persist them as a standards-compliant pcap file that external tools can read.
"""

from repro.net.headers import (
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    checksum16,
    format_ipv4,
    parse_ipv4,
)
from repro.net.packet import Direction, Packet
from repro.net.endpoints import Endpoint, FiveTuple
from repro.net.tcp import TCPSender, segment_payload
from repro.net.flow import Flow, FlowTable
from repro.net.pcap import PcapReader, PcapWriter, read_pcap, write_pcap
from repro.net.conditions import NetworkConditions, conditions_for
from repro.net.capture import CaptureSink, CapturedTrace

__all__ = [
    "EthernetHeader",
    "IPv4Header",
    "TCPHeader",
    "checksum16",
    "format_ipv4",
    "parse_ipv4",
    "Direction",
    "Packet",
    "Endpoint",
    "FiveTuple",
    "TCPSender",
    "segment_payload",
    "Flow",
    "FlowTable",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
    "NetworkConditions",
    "conditions_for",
    "CaptureSink",
    "CapturedTrace",
]
