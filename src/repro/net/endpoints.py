"""Connection endpoints and five-tuples."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import PacketError
from repro.net.headers import parse_ipv4


@dataclass(frozen=True)
class Endpoint:
    """An (IP address, TCP port) pair."""

    ip: str
    port: int

    def __post_init__(self) -> None:
        parse_ipv4(self.ip)  # validates format
        if not 0 < self.port <= 0xFFFF:
            raise PacketError(f"invalid port {self.port}")

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"


@dataclass(frozen=True)
class FiveTuple:
    """The classic connection identifier (protocol is implicitly TCP)."""

    client: Endpoint
    server: Endpoint

    @property
    def key(self) -> str:
        """Canonical string form, client side first."""
        return f"{self.client}->{self.server}"

    def reversed(self) -> "FiveTuple":
        """The same connection viewed from the server side."""
        return FiveTuple(client=self.server, server=self.client)
