"""White Mirror reproduction library.

This package reproduces the system described in *"White Mirror: Leaking
Sensitive Information from Interactive Netflix Movies using Encrypted Traffic
Analysis"* (Mitra et al., 2019): an end-to-end pipeline that

1. simulates interactive (Bandersnatch-style) Netflix streaming sessions down
   to TLS records and captured packets (:mod:`repro.narrative`,
   :mod:`repro.media`, :mod:`repro.client`, :mod:`repro.tls`, :mod:`repro.net`,
   :mod:`repro.streaming`),
2. generates an IITM-Bandersnatch-style dataset of ``{encrypted trace,
   ground-truth choices}`` points (:mod:`repro.dataset`),
3. mounts the paper's passive traffic-analysis attack that recovers viewer
   choices from client-side SSL record lengths (:mod:`repro.core`), online —
   tailing a live capture drop directory (:mod:`repro.ingest`) — as well as
   over archived corpora, and
4. evaluates baselines, countermeasures and the paper's tables and figures
   (:mod:`repro.baselines`, :mod:`repro.defenses`, :mod:`repro.experiments`).

Quickstart
----------
>>> from repro import quick_attack_demo
>>> outcome = quick_attack_demo(seed=7)
>>> outcome["choice_accuracy"] >= 0.9
True

Import contract
---------------
Three layers are public API, re-exported here (or from their package)
and covered by the schema/wire versioning rules; everything else is
internal and may move between releases.

*Domain layer* — the attack itself: :class:`WhiteMirrorAttack`,
:class:`IITMBandersnatchDataset`, :func:`build_bandersnatch_script`,
:class:`SessionConfig`, :func:`simulate_session`.

*Component-spec layer* — declarative construction of the swappable
pieces: :data:`repro.defenses.DEFENSE_REGISTRY` and
:data:`repro.ml.CLASSIFIER_REGISTRY` map stable names plus params dicts
to instances, and every registry-built instance round-trips through
``spec()``/``from_spec()`` (sorted keys, ``"schema"``-stamped).  The
arena (``repro arena``, :mod:`repro.arena`) constructs every defense and
classifier it sweeps exclusively through these registries.

*Jobs layer* — programmatic runs, the same surface the CLI and the fleet
coordinator drive: build a spec dict, rebuild it with
:func:`job_from_dict` (the wire format ``repro serve`` leases to
``repro work`` pullers), execute it with :class:`JobRunner` against a
:class:`Workspace`, and read the :class:`JobResult`'s
content-fingerprinted artifacts.  Spec dicts carry ``"schema"``
(:data:`repro.jobs.SCHEMA_VERSION`), event lines carry ``"schema"``
(:data:`repro.jobs.EVENT_SCHEMA_VERSION`), and coordinator traffic
carries ``"wire"`` (:data:`repro.coordinator.WIRE_VERSION`); consumers
must refuse versions they do not speak, as every repro component does.
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.iitm import IITMBandersnatchDataset
from repro.jobs import JobResult, JobRunner, Workspace, job_from_dict
from repro.narrative.bandersnatch import build_bandersnatch_script
from repro.streaming.session import SessionConfig, simulate_session

__all__ = [
    "IITMBandersnatchDataset",
    "JobResult",
    "JobRunner",
    "SessionConfig",
    "WhiteMirrorAttack",
    "Workspace",
    "__version__",
    "build_bandersnatch_script",
    "job_from_dict",
    "quick_attack_demo",
    "simulate_session",
]


def quick_attack_demo(seed: int = 7, sessions: int = 3) -> dict[str, object]:
    """Tiny end-to-end demo: simulate, train, attack, score.

    Returns a dictionary with the recovered pattern of the last victim
    session, the ground truth and the aggregate choice accuracy.  Used by the
    README quickstart and the package doctests; for anything serious use
    :class:`repro.core.pipeline.WhiteMirrorAttack` directly.
    """
    from repro.client.profiles import figure2_conditions
    from repro.client.viewer import ViewerBehavior
    from repro.core.evaluation import aggregate_choice_accuracy
    from repro.utils.rng import derive_seed

    graph = build_bandersnatch_script(
        trunk_segment_minutes=1.5, branch_segment_minutes=1.0, ending_minutes=2.0
    )
    condition, _windows = figure2_conditions()
    behavior = ViewerBehavior("20-25", "undisclosed", "undisclosed", "happy")
    train = [
        simulate_session(graph, condition, behavior, seed=derive_seed(seed, "train", i))
        for i in range(2)
    ]
    victims = [
        simulate_session(graph, condition, behavior, seed=derive_seed(seed, "victim", i))
        for i in range(sessions)
    ]
    attack = WhiteMirrorAttack(graph=graph)
    attack.train(train)
    evaluations = attack.evaluate_sessions(victims)
    last = attack.attack_session(victims[-1])
    return {
        "choice_accuracy": aggregate_choice_accuracy(evaluations),
        "recovered_pattern": last.recovered_pattern,
        "ground_truth_pattern": victims[-1].ground_truth_pattern,
        "sessions_evaluated": len(victims),
    }
