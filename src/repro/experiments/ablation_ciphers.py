"""Ablation E: robustness of the side-channel to the negotiated cipher suite.

The record length visible on the wire is the plaintext size plus a
cipher-suite-dependent expansion.  The paper's captures all negotiated the
AEAD suites typical of Netflix-era stacks; this ablation asks two questions
the paper leaves open:

1. **Non-adaptive attacker** — fingerprints trained under AES-128-GCM (the
   calibration suite): do they still work when the victim's connection
   negotiates ChaCha20-Poly1305, TLS 1.3 AES-GCM, or an old CBC suite?
   AEAD suites differ by only a few bytes of overhead, so the (margin-widened)
   bands should still catch the reports; CBC's 16-byte padding quantisation
   shifts lengths further and should break a GCM-trained fingerprint.
2. **Adaptive attacker** — fingerprints re-trained per suite: the type-1 and
   type-2 payloads are ~800 bytes apart, so even CBC's quantisation cannot
   merge the bands and the attack should recover fully.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.profiles import OperationalCondition
from repro.client.viewer import ViewerBehavior
from repro.core.evaluation import aggregate_json_identification_accuracy, evaluate_attack_result
from repro.core.inference import infer_choices
from repro.core.pipeline import WhiteMirrorAttack
from repro.engine.cache import RecordCache
from repro.engine.executor import BatchExecutor
from repro.engine.plan import SessionPlan
from repro.exceptions import AttackError
from repro.narrative.bandersnatch import build_bandersnatch_script
from repro.narrative.graph import StoryGraph
from repro.streaming.session import SessionConfig, SessionResult
from repro.tls.ciphers import DEFAULT_CIPHER_SUITE
from repro.utils.rng import derive_seed

#: The suites swept by the ablation (calibration suite first).
ABLATION_CIPHER_SUITES: tuple[str, ...] = (
    "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
    "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
    "TLS_AES_128_GCM_SHA256",
    "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA",
)


@dataclass(frozen=True)
class CipherScore:
    """Scores for one victim cipher suite."""

    cipher_suite: str
    non_adaptive_accuracy: float
    adaptive_accuracy: float

    def as_row(self) -> dict[str, object]:
        """One row of the ablation table."""
        return {
            "victim_cipher_suite": self.cipher_suite,
            "gcm_trained_fingerprint": round(self.non_adaptive_accuracy, 4),
            "per_suite_fingerprint": round(self.adaptive_accuracy, 4),
        }


@dataclass(frozen=True)
class CipherAblationResult:
    """Outcome of the cipher-suite robustness sweep."""

    scores: list[CipherScore]
    condition_key: str
    sessions_per_suite: int

    def rows(self) -> list[dict[str, object]]:
        """Table rows, one per victim suite."""
        return [score.as_row() for score in self.scores]

    def score_for(self, cipher_suite: str) -> CipherScore:
        """Look up one suite's scores."""
        for score in self.scores:
            if score.cipher_suite == cipher_suite:
                return score
        raise AttackError(f"no score recorded for cipher suite {cipher_suite!r}")

    @property
    def aead_suites_survive_without_retraining(self) -> bool:
        """Whether AEAD suite changes leave the GCM-trained fingerprint working."""
        aead = [score for score in self.scores if "CBC" not in score.cipher_suite]
        return all(score.non_adaptive_accuracy >= 0.9 for score in aead)

    @property
    def cbc_breaks_without_retraining(self) -> bool:
        """Whether the CBC suite defeats the GCM-trained fingerprint."""
        return self.score_for("TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA").non_adaptive_accuracy <= 0.5

    @property
    def adaptive_attacker_always_wins(self) -> bool:
        """Whether per-suite re-training restores the attack for every suite."""
        return all(score.adaptive_accuracy >= 0.9 for score in self.scores)


def reproduce_cipher_ablation(
    sessions_per_suite: int = 3,
    training_sessions: int = 3,
    seed: int = 9,
    graph: StoryGraph | None = None,
    condition: OperationalCondition | None = None,
    workers: int | None = None,
) -> CipherAblationResult:
    """Sweep the victim's cipher suite against fixed and re-trained fingerprints."""
    if sessions_per_suite <= 0 or training_sessions <= 0:
        raise AttackError("session counts must be positive")
    graph = graph or build_bandersnatch_script(
        trunk_segment_minutes=1.5, branch_segment_minutes=1.0, ending_minutes=2.0
    )
    condition = condition or OperationalCondition(
        "linux", "desktop", "firefox", "wired", "noon"
    )
    behavior = ViewerBehavior("20-25", "male", "centrist", "happy")

    def _plans(cipher_suite: str, count: int, tag: str) -> list[SessionPlan]:
        config = SessionConfig(cipher_suite=cipher_suite, cross_traffic_enabled=False)
        return [
            SessionPlan(
                graph=graph,
                condition=condition,
                behavior=behavior,
                seed=derive_seed(seed, tag, cipher_suite, index),
                config=config,
                session_id=f"{tag}-{index}",
            )
            for index in range(count)
        ]

    # The whole suite sweep — GCM calibration, per-suite victims and
    # per-suite adaptive training — goes to the engine as one batch.
    batches: dict[str, list[SessionPlan]] = {
        "train-gcm": _plans(DEFAULT_CIPHER_SUITE, training_sessions, "cipher-train-gcm")
    }
    for cipher_suite in ABLATION_CIPHER_SUITES:
        batches[f"victim/{cipher_suite}"] = _plans(
            cipher_suite, sessions_per_suite, "cipher-victim"
        )
        batches[f"adaptive/{cipher_suite}"] = _plans(
            cipher_suite, training_sessions, "cipher-train-adaptive"
        )
    flat_plans = [plan for group in batches.values() for plan in group]
    flat_sessions = BatchExecutor(workers).execute(flat_plans)
    sessions_by_group: dict[str, list[SessionResult]] = {}
    cursor = 0
    for name, group in batches.items():
        sessions_by_group[name] = flat_sessions[cursor : cursor + len(group)]
        cursor += len(group)

    # One shared cache: each victim trace is extracted once even though both
    # the non-adaptive and the adaptive fingerprints attack it.
    cache = RecordCache()

    def _accuracy(attack: WhiteMirrorAttack, sessions: list[SessionResult]) -> float:
        fingerprint = attack.library.get(condition.fingerprint_key)
        evaluations = []
        for session in sessions:
            records = cache.records_for(session.trace, server_ip=session.trace.server_ip)
            labels = fingerprint.classify(records)
            inferred = infer_choices(records, labels)
            evaluations.append(
                evaluate_attack_result(
                    records=records,
                    predicted_labels=labels,
                    inferred=inferred,
                    ground_truth_path=session.path,
                )
            )
        return aggregate_json_identification_accuracy(evaluations)

    # Non-adaptive attacker: trained once under the calibration suite.
    gcm_attack = WhiteMirrorAttack(graph=graph, record_cache=cache)
    gcm_attack.train(sessions_by_group["train-gcm"])

    scores: list[CipherScore] = []
    for cipher_suite in ABLATION_CIPHER_SUITES:
        victims = sessions_by_group[f"victim/{cipher_suite}"]
        non_adaptive = _accuracy(gcm_attack, victims)
        adaptive_attack = WhiteMirrorAttack(graph=graph, record_cache=cache)
        adaptive_attack.train(sessions_by_group[f"adaptive/{cipher_suite}"])
        adaptive = _accuracy(adaptive_attack, victims)
        scores.append(
            CipherScore(
                cipher_suite=cipher_suite,
                non_adaptive_accuracy=non_adaptive,
                adaptive_accuracy=adaptive,
            )
        )
    return CipherAblationResult(
        scores=scores, condition_key=condition.key, sessions_per_suite=sessions_per_suite
    )
