"""Figure 1 reproduction: the streaming process of an interactive title.

Figure 1 of the paper illustrates one concrete interaction: Segment 0 plays,
question Q1 appears (a type-1 JSON is sent), the viewer takes the *default*
branch S1, streaming continues uninterrupted, Q2 appears (another type-1),
the viewer takes the *non-default* branch S2', so a type-2 JSON is sent and
the prefetched S2 chunks are discarded.

The reproduction drives the simulator through exactly that scenario (forced
choices: default, then non-default) and extracts the ordered protocol-level
event sequence so it can be compared against the paper's description.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.viewer import ViewerBehavior
from repro.client.profiles import OperationalCondition
from repro.engine.executor import BatchExecutor
from repro.engine.plan import SessionPlan
from repro.exceptions import StreamingError
from repro.narrative.bandersnatch import build_minimal_interactive_script
from repro.streaming.events import EventKind
from repro.streaming.session import SessionConfig, SessionResult


@dataclass(frozen=True)
class Figure1Result:
    """The reproduced streaming-process timeline."""

    session: SessionResult
    protocol_events: list[tuple[str, str]]

    @property
    def state_message_kinds(self) -> list[str]:
        """Kinds of the state messages sent, in order (paper: type1, type1, type2)."""
        return [kind for kind, _detail in self.protocol_events if kind in ("type1", "type2")]

    def matches_paper_description(self) -> bool:
        """Check the invariants Figure 1 describes.

        * two questions were shown, so exactly two type-1 reports were sent;
        * the first choice kept the default, so no type-2 followed Q1;
        * the second choice was non-default, so exactly one type-2 was sent
          and the prefetched default chunks were discarded.
        """
        kinds = self.state_message_kinds
        if kinds != ["type1", "type1", "type2"]:
            return False
        discard_events = [
            kind for kind, _detail in self.protocol_events if kind == "prefetch_discarded"
        ]
        return len(discard_events) == 1


_PROTOCOL_EVENT_KINDS = {
    EventKind.SEGMENT_STARTED: "segment_started",
    EventKind.QUESTION_SHOWN: "question_shown",
    EventKind.TYPE1_SENT: "type1",
    EventKind.TYPE2_SENT: "type2",
    EventKind.PREFETCH_STARTED: "prefetch_started",
    EventKind.PREFETCH_DISCARDED: "prefetch_discarded",
    EventKind.CHOICE_MADE: "choice_made",
    EventKind.SESSION_FINISHED: "session_finished",
}


def reproduce_figure1(seed: int = 1, condition: OperationalCondition | None = None) -> Figure1Result:
    """Simulate the Figure 1 scenario and return its protocol event timeline."""
    graph = build_minimal_interactive_script()
    condition = condition or OperationalCondition(
        "linux", "desktop", "firefox", "wired", "noon"
    )
    behavior = ViewerBehavior("20-25", "undisclosed", "undisclosed", "happy")
    plan = SessionPlan(
        graph=graph,
        condition=condition,
        behavior=behavior,
        seed=seed,
        config=SessionConfig(cross_traffic_enabled=False),
        forced_choices=(True, False),
        session_id="figure1-walkthrough",
    )
    (session,) = BatchExecutor().execute([plan])
    protocol_events: list[tuple[str, str]] = []
    for event in session.events:
        if event.kind in _PROTOCOL_EVENT_KINDS:
            detail = ""
            if "segment_id" in event.details:
                detail = str(event.details["segment_id"])
            elif "question_id" in event.details:
                detail = str(event.details["question_id"])
            protocol_events.append((_PROTOCOL_EVENT_KINDS[event.kind], detail))
    if not protocol_events:
        raise StreamingError("figure 1 reproduction produced no protocol events")
    return Figure1Result(session=session, protocol_events=protocol_events)
