"""Ablation D: do fingerprints transfer across client environments?

DESIGN.md design decision 2: Figure 2 shows different record-length bands for
Ubuntu and Windows, implying a fingerprint trained on one environment should
*not* work on another.  This ablation builds the full transfer matrix: train
the band fingerprint on environment A, attack sessions from environment B,
and report the JSON identification accuracy for every (A, B) pair.  The
diagonal should be near-perfect and the off-diagonal near zero — which is why
the attack calibrates per environment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.profiles import OperationalCondition
from repro.client.viewer import ViewerBehavior
from repro.core.evaluation import aggregate_json_identification_accuracy, evaluate_attack_result
from repro.core.inference import infer_choices
from repro.core.pipeline import WhiteMirrorAttack
from repro.engine.cache import RecordCache
from repro.engine.executor import BatchExecutor
from repro.engine.plan import SessionPlan
from repro.exceptions import AttackError
from repro.narrative.bandersnatch import build_bandersnatch_script
from repro.narrative.graph import StoryGraph
from repro.utils.rng import derive_seed

#: The environments included in the transfer matrix (one condition each).
DEFAULT_TRANSFER_CONDITIONS: tuple[OperationalCondition, ...] = (
    OperationalCondition("linux", "desktop", "firefox", "wired", "noon"),
    OperationalCondition("windows", "desktop", "firefox", "wired", "noon"),
    OperationalCondition("linux", "desktop", "chrome", "wired", "noon"),
    OperationalCondition("windows", "desktop", "chrome", "wired", "noon"),
)


@dataclass(frozen=True)
class TransferAblationResult:
    """The environment-transfer matrix."""

    environments: tuple[str, ...]
    matrix: dict[str, dict[str, float]]
    sessions_per_environment: int

    def accuracy(self, trained_on: str, attacked: str) -> float:
        """Accuracy of a fingerprint trained on one environment used on another."""
        try:
            return self.matrix[trained_on][attacked]
        except KeyError:
            raise AttackError(
                f"transfer matrix has no entry ({trained_on!r} -> {attacked!r})"
            ) from None

    def rows(self) -> list[dict[str, object]]:
        """Matrix rows: one per training environment."""
        rows = []
        for trained_on in self.environments:
            row: dict[str, object] = {"trained on \\ attacked": trained_on}
            for attacked in self.environments:
                row[attacked] = round(self.matrix[trained_on][attacked], 4)
            rows.append(row)
        return rows

    @property
    def mean_diagonal(self) -> float:
        """Average same-environment accuracy (should be ~1)."""
        return sum(self.matrix[env][env] for env in self.environments) / len(self.environments)

    @property
    def mean_off_diagonal(self) -> float:
        """Average cross-environment accuracy (should be ~0)."""
        values = [
            self.matrix[a][b]
            for a in self.environments
            for b in self.environments
            if a != b
        ]
        return sum(values) / len(values)

    @property
    def calibration_is_required(self) -> bool:
        """Whether per-environment calibration matters (diagonal >> off-diagonal)."""
        return self.mean_diagonal - self.mean_off_diagonal >= 0.5


def reproduce_transfer_ablation(
    sessions_per_environment: int = 3,
    training_sessions_per_environment: int = 2,
    seed: int = 8,
    graph: StoryGraph | None = None,
    conditions: tuple[OperationalCondition, ...] = DEFAULT_TRANSFER_CONDITIONS,
    workers: int | None = None,
) -> TransferAblationResult:
    """Build the fingerprint transfer matrix across client environments."""
    if sessions_per_environment <= 0 or training_sessions_per_environment <= 0:
        raise AttackError("session counts must be positive")
    graph = graph or build_bandersnatch_script(
        trunk_segment_minutes=1.5, branch_segment_minutes=1.0, ending_minutes=2.0
    )
    behavior = ViewerBehavior("20-25", "male", "centrist", "happy")

    def _plans(condition: OperationalCondition, count: int, tag: str) -> list[SessionPlan]:
        return [
            SessionPlan(
                graph=graph,
                condition=condition,
                behavior=behavior,
                seed=derive_seed(seed, tag, condition.key, index),
                session_id=f"{tag}-{condition.fingerprint_key}-{index}",
            )
            for index in range(count)
        ]

    # One engine batch for the whole grid: per-environment training sessions
    # followed by per-environment test sessions.
    train_plans = [
        plan
        for condition in conditions
        for plan in _plans(condition, training_sessions_per_environment, "transfer-train")
    ]
    test_plan_groups = [
        _plans(condition, sessions_per_environment, "transfer-test")
        for condition in conditions
    ]
    flat_test_plans = [plan for group in test_plan_groups for plan in group]
    sessions = BatchExecutor(workers).execute(train_plans + flat_test_plans)
    train_sessions_flat = sessions[: len(train_plans)]
    test_sessions_flat = sessions[len(train_plans) :]

    # A cache shared across every attack instance: each test trace is
    # extracted once, no matter how many fingerprints attack it.
    cache = RecordCache()

    # Train one attack per environment.
    attacks: dict[str, WhiteMirrorAttack] = {}
    for position, condition in enumerate(conditions):
        attack = WhiteMirrorAttack(graph=graph, record_cache=cache)
        attack.train(
            train_sessions_flat[
                position * training_sessions_per_environment : (position + 1)
                * training_sessions_per_environment
            ]
        )
        attacks[condition.fingerprint_key] = attack

    # Evaluate every (trained-on, attacked) pair.
    test_sessions = {
        condition.fingerprint_key: test_sessions_flat[
            position * sessions_per_environment : (position + 1) * sessions_per_environment
        ]
        for position, condition in enumerate(conditions)
    }
    environments = tuple(condition.fingerprint_key for condition in conditions)
    matrix: dict[str, dict[str, float]] = {}
    for trained_on in environments:
        attack = attacks[trained_on]
        fingerprint = attack.library.get(trained_on)
        matrix[trained_on] = {}
        for attacked in environments:
            evaluations = []
            for session in test_sessions[attacked]:
                records = cache.records_for(
                    session.trace, server_ip=session.trace.server_ip
                )
                labels = fingerprint.classify(records)
                inferred = infer_choices(records, labels)
                evaluations.append(
                    evaluate_attack_result(
                        records=records,
                        predicted_labels=labels,
                        inferred=inferred,
                        ground_truth_path=session.path,
                    )
                )
            matrix[trained_on][attacked] = aggregate_json_identification_accuracy(evaluations)
    return TransferAblationResult(
        environments=environments,
        matrix=matrix,
        sessions_per_environment=sessions_per_environment,
    )
