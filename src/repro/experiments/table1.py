"""Table I reproduction: the attribute space of the IITM-Bandersnatch dataset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.attributes import BEHAVIORAL_ATTRIBUTES, OPERATIONAL_ATTRIBUTES, table1_rows
from repro.dataset.population import attribute_marginals, generate_population
from repro.exceptions import DatasetError


@dataclass(frozen=True)
class Table1Result:
    """The reproduced Table I plus the observed population marginals."""

    rows: list[dict[str, str]]
    viewer_count: int
    observed_marginals: dict[str, dict[str, int]]

    @property
    def attribute_count(self) -> int:
        """Number of attribute rows in the table (paper: 9)."""
        return len(self.rows)

    def values_for(self, attribute: str) -> list[str]:
        """The value list reported for one attribute row."""
        for row in self.rows:
            if row["attribute"] == attribute:
                return [value.strip() for value in str(row["values"]).split(",")]
        raise DatasetError(f"Table I has no attribute {attribute!r}")

    def full_grid_covered(self) -> bool:
        """Whether every attribute value occurs at least once in the population.

        The paper stresses diversity of the dataset; with 100 sampled viewers
        every value of every Table I attribute should be represented.
        """
        expected = {**OPERATIONAL_ATTRIBUTES, **BEHAVIORAL_ATTRIBUTES}
        internal_keys = {
            "Operating System": "operating_system",
            "Platform": "platform",
            "Traffic Conditions": "traffic_condition",
            "Connection Type": "connection_type",
            "Browser": "browser",
            "Age-group": "age_group",
            "Gender": "gender",
            "Political Alignment": "political_alignment",
            "State of Mind": "state_of_mind",
        }
        for attribute, values in expected.items():
            observed = self.observed_marginals.get(internal_keys[attribute], {})
            for value in values:
                if observed.get(value, 0) == 0:
                    return False
        return True


def reproduce_table1(viewer_count: int = 100, seed: int = 0) -> Table1Result:
    """Generate the study population and reproduce Table I.

    Only the population (not the traffic) is needed for this table, so the
    runner is cheap even at the paper's full 100-viewer scale.
    """
    viewers = generate_population(viewer_count, seed=seed)
    return Table1Result(
        rows=table1_rows(),
        viewer_count=len(viewers),
        observed_marginals=attribute_marginals(viewers),
    )
