"""Ablation C: band rule vs. generic classifiers on record-type identification.

DESIGN.md design decision 1: the paper's technique amounts to an interval
(band) rule over record lengths.  Is the hand-built band structure essential,
or is the side-channel learnable by any off-the-shelf classifier fed raw
record lengths?  This ablation trains the interval rule and the four generic
from-scratch estimators on the same labelled sessions and compares their
record-type identification accuracy and the resulting choice recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.client.profiles import OperationalCondition
from repro.client.viewer import ViewerBehavior
from repro.core.classifier import MLRecordClassifier
from repro.core.evaluation import (
    aggregate_choice_accuracy,
    aggregate_json_identification_accuracy,
    evaluate_attack_result,
)
from repro.core.inference import infer_choices
from repro.core.pipeline import WhiteMirrorAttack
from repro.engine.cache import RecordCache
from repro.engine.executor import BatchExecutor
from repro.engine.plan import SessionPlan
from repro.exceptions import AttackError
from repro.ml.base import Classifier
from repro.ml.registry import build_classifier
from repro.narrative.bandersnatch import build_bandersnatch_script
from repro.narrative.graph import StoryGraph
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class ClassifierScore:
    """Scores of one classification strategy."""

    name: str
    json_identification_accuracy: float
    choice_accuracy: float

    def as_row(self) -> dict[str, object]:
        """One row of the ablation table."""
        return {
            "classifier": self.name,
            "json_identification_accuracy": round(self.json_identification_accuracy, 4),
            "choice_accuracy": round(self.choice_accuracy, 4),
        }


@dataclass(frozen=True)
class ClassifierAblationResult:
    """Outcome of the classifier comparison."""

    scores: list[ClassifierScore]
    condition_key: str
    test_sessions: int

    def rows(self) -> list[dict[str, object]]:
        """Table rows, one per classifier."""
        return [score.as_row() for score in self.scores]

    def score_for(self, name: str) -> ClassifierScore:
        """Look up one classifier's scores."""
        for score in self.scores:
            if score.name == name:
                return score
        raise AttackError(f"no score recorded for classifier {name!r}")

    @property
    def band_rule_score(self) -> ClassifierScore:
        """The paper's technique (per-environment band fingerprint)."""
        return self.score_for("band fingerprint (paper)")

    @property
    def nonlinear_strategies_work(self) -> bool:
        """Whether every non-linear strategy identifies the JSON types at >= 90 %.

        The state-report lengths sit *between* the lengths of other client
        traffic, so the decision regions are intervals: any estimator that can
        express an interval (the band rule, k-NN, naive Bayes, a tree) should
        succeed, while a linear model over the single raw length cannot.
        """
        return all(
            score.json_identification_accuracy >= 0.9
            for score in self.scores
            if score.name != "logistic regression"
        )

    @property
    def linear_model_fails(self) -> bool:
        """Whether plain logistic regression on the raw length stays below 50 %."""
        return self.score_for("logistic regression").json_identification_accuracy < 0.5


def _generic_estimators() -> dict[str, Callable[[], Classifier]]:
    """Display name → factory; every factory goes through the registry."""
    specs: dict[str, tuple[str, dict[str, object]]] = {
        "interval classifier": ("interval", {"margin": 8}),
        "k-nearest neighbours (k=7)": ("knn", {"k": 7}),
        "gaussian naive bayes": ("naive-bayes", {}),
        "decision tree (depth 8)": ("tree", {"max_depth": 8}),
        "logistic regression": ("logistic", {"iterations": 300}),
    }
    return {
        display: (lambda name=name, params=params: build_classifier(name, params))
        for display, (name, params) in specs.items()
    }


def reproduce_classifier_ablation(
    train_count: int = 4,
    test_count: int = 6,
    seed: int = 6,
    graph: StoryGraph | None = None,
    condition: OperationalCondition | None = None,
    workers: int | None = None,
) -> ClassifierAblationResult:
    """Compare the band rule with generic estimators on one environment."""
    if train_count <= 0 or test_count <= 0:
        raise AttackError("session counts must be positive")
    graph = graph or build_bandersnatch_script(
        trunk_segment_minutes=1.5, branch_segment_minutes=1.0, ending_minutes=2.0
    )
    condition = condition or OperationalCondition(
        "linux", "desktop", "firefox", "wired", "noon"
    )
    behaviors = [
        ViewerBehavior("20-25", "male", "centrist", "happy"),
        ViewerBehavior("25-30", "female", "liberal", "stressed"),
        ViewerBehavior(">30", "undisclosed", "undisclosed", "sad"),
    ]

    def _plans(count: int, tag: str) -> list[SessionPlan]:
        return [
            SessionPlan(
                graph=graph,
                condition=condition,
                behavior=behaviors[index % len(behaviors)],
                seed=derive_seed(seed, tag, index),
                session_id=f"{tag}-{index}",
            )
            for index in range(count)
        ]

    train_plans = _plans(train_count, "clf-train")
    test_plans = _plans(test_count, "clf-test")
    sessions = BatchExecutor(workers).execute(train_plans + test_plans)
    train_sessions = sessions[: len(train_plans)]
    test_sessions = sessions[len(train_plans) :]

    scores: list[ClassifierScore] = []

    # One extraction pass per trace serves the band rule, the generic
    # estimators' training data and every estimator's test classification.
    cache = RecordCache()

    # -- the paper's band rule -------------------------------------------------
    attack = WhiteMirrorAttack(graph=graph, record_cache=cache)
    attack.train(train_sessions)
    evaluations = attack.evaluate_sessions(test_sessions)
    scores.append(
        ClassifierScore(
            name="band fingerprint (paper)",
            json_identification_accuracy=aggregate_json_identification_accuracy(evaluations),
            choice_accuracy=aggregate_choice_accuracy(evaluations),
        )
    )

    # -- generic estimators over raw record lengths ------------------------------
    train_records = [
        record
        for session in train_sessions
        for record in cache.records_for(session.trace, server_ip=session.trace.server_ip)
    ]
    test_data = [
        (
            session,
            cache.records_for(session.trace, server_ip=session.trace.server_ip),
        )
        for session in test_sessions
    ]
    for name, factory in _generic_estimators().items():
        classifier = MLRecordClassifier(factory())
        classifier.fit(train_records)
        evaluations = []
        for session, records in test_data:
            labels = classifier.classify(records)
            inferred = infer_choices(records, labels)
            evaluations.append(
                evaluate_attack_result(
                    records=records,
                    predicted_labels=labels,
                    inferred=inferred,
                    ground_truth_path=session.path,
                )
            )
        scores.append(
            ClassifierScore(
                name=name,
                json_identification_accuracy=aggregate_json_identification_accuracy(evaluations),
                choice_accuracy=aggregate_choice_accuracy(evaluations),
            )
        )
    return ClassifierAblationResult(
        scores=scores, condition_key=condition.key, test_sessions=test_count
    )
