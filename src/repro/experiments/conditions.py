"""The operational conditions used by the Section V evaluation.

The paper evaluates on "10 different viewing sessions ... under different
combinations of operational and network conditions".  The exact ten
combinations are not listed, so the reproduction evaluates a representative
spread that covers both Figure 2 environments, both connection types and all
three traffic conditions — including the adversarial corner (wireless at
night) that defines the worst case.
"""

from __future__ import annotations

from repro.client.profiles import OperationalCondition


def headline_conditions() -> list[OperationalCondition]:
    """The condition spread used for the headline (96 %) reproduction."""
    return [
        OperationalCondition("linux", "desktop", "firefox", "wired", "morning"),
        OperationalCondition("linux", "desktop", "firefox", "wired", "noon"),
        OperationalCondition("linux", "desktop", "firefox", "wireless", "night"),
        OperationalCondition("windows", "desktop", "firefox", "wired", "noon"),
        OperationalCondition("windows", "laptop", "firefox", "wireless", "night"),
        OperationalCondition("windows", "desktop", "chrome", "wired", "morning"),
        OperationalCondition("mac", "laptop", "chrome", "wireless", "noon"),
        OperationalCondition("linux", "laptop", "chrome", "wireless", "night"),
    ]


def figure2_condition_names() -> dict[str, str]:
    """Human-readable names of the two Figure 2 conditions."""
    return {
        "linux/firefox": "(Desktop, Firefox, Ethernet, Ubuntu)",
        "windows/firefox": "(Desktop, Firefox, Ethernet, Windows)",
    }
