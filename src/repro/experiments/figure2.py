"""Figure 2 reproduction: SSL record-length distributions under two conditions.

Figure 2 plots, for (Desktop, Firefox, Ethernet, Ubuntu) and (Desktop,
Firefox, Ethernet, Windows), the percentage of client packets whose SSL
record length falls into each of five byte ranges, split into three
categories: packets carrying type-1 JSON, type-2 JSON and everything else.
The punchline is that the three categories occupy disjoint ranges, so record
length alone identifies the state reports.

The reproduction simulates several sessions under each condition, extracts
the client-side record lengths with their ground-truth categories and bins
them into the exact ranges printed on the paper's x-axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.profiles import OperationalCondition, figure2_conditions
from repro.client.viewer import ViewerBehavior
from repro.core.features import (
    LABEL_OTHER,
    LABEL_TYPE1,
    LABEL_TYPE2,
    extract_client_records,
)
from repro.engine.executor import BatchExecutor
from repro.engine.plan import SessionPlan
from repro.exceptions import AttackError
from repro.narrative.bandersnatch import build_bandersnatch_script
from repro.narrative.graph import StoryGraph
from repro.utils.histogram import Histogram, LengthBin, bins_from_edges
from repro.utils.rng import derive_seed

#: The exact bin edges printed on the paper's Figure 2 x-axes.
PAPER_BINS: dict[str, list[tuple[int | None, int | None]]] = {
    "linux/firefox": [
        (None, 2188),
        (2211, 2213),
        (2219, 2823),
        (2992, 3017),
        (4334, None),
    ],
    "windows/firefox": [
        (None, 2335),
        (2341, 2343),
        (2398, 3056),
        (3118, 3147),
        (3159, None),
    ],
}

#: Which bin (by index) each JSON type concentrates in, per the paper.
PAPER_DOMINANT_BIN_INDEX = {LABEL_TYPE1: 1, LABEL_TYPE2: 3}

CATEGORIES = (LABEL_TYPE1, LABEL_TYPE2, LABEL_OTHER)


def paper_bins_for(fingerprint_key: str) -> list[LengthBin]:
    """The Figure 2 bins of one condition as :class:`LengthBin` objects."""
    try:
        edges = PAPER_BINS[fingerprint_key]
    except KeyError:
        raise AttackError(
            f"Figure 2 publishes no bins for environment {fingerprint_key!r}"
        ) from None
    return bins_from_edges(edges)


@dataclass(frozen=True)
class ConditionDistribution:
    """The reproduced histogram for one operational condition."""

    condition: OperationalCondition
    histogram: Histogram
    records_observed: int

    def rows(self) -> list[dict[str, object]]:
        """The numeric rows behind one panel of Figure 2."""
        return self.histogram.as_table()

    def separation_holds(self) -> bool:
        """Check the paper's claim for this condition.

        The type-1 and type-2 records must concentrate (>= 95 %) in their
        designated narrow bins, and those two bins must hold (almost) no
        "other" records (< 5 % of them).
        """
        type1_percentages = self.histogram.percentages(LABEL_TYPE1)
        type2_percentages = self.histogram.percentages(LABEL_TYPE2)
        other_percentages = self.histogram.percentages(LABEL_OTHER)
        type1_bin = PAPER_DOMINANT_BIN_INDEX[LABEL_TYPE1]
        type2_bin = PAPER_DOMINANT_BIN_INDEX[LABEL_TYPE2]
        return (
            type1_percentages[type1_bin] >= 95.0
            and type2_percentages[type2_bin] >= 95.0
            and other_percentages[type1_bin] + other_percentages[type2_bin] < 5.0
        )


@dataclass(frozen=True)
class Figure2Result:
    """Both panels of the reproduced Figure 2."""

    distributions: list[ConditionDistribution]
    sessions_per_condition: int

    def panel_for(self, fingerprint_key: str) -> ConditionDistribution:
        """The panel of one condition (e.g. ``"linux/firefox"``)."""
        for distribution in self.distributions:
            if distribution.condition.fingerprint_key == fingerprint_key:
                return distribution
        raise AttackError(f"no panel for environment {fingerprint_key!r}")

    def separation_holds_everywhere(self) -> bool:
        """Whether the side-channel separation holds in every panel."""
        return all(d.separation_holds() for d in self.distributions)


def reproduce_figure2(
    sessions_per_condition: int = 4,
    seed: int = 2,
    graph: StoryGraph | None = None,
    workers: int | None = None,
) -> Figure2Result:
    """Simulate sessions under both Figure 2 conditions and bin the record lengths.

    The condition × session grid is submitted to the engine as one batch;
    ``workers`` selects serial or process-pool execution.
    """
    if sessions_per_condition <= 0:
        raise AttackError("need at least one session per condition")
    graph = graph or build_bandersnatch_script(
        trunk_segment_minutes=1.5, branch_segment_minutes=1.0, ending_minutes=2.0
    )
    behavior = ViewerBehavior("25-30", "female", "liberal", "happy")
    conditions = figure2_conditions()
    plans = [
        SessionPlan(
            graph=graph,
            condition=condition,
            behavior=behavior,
            seed=derive_seed(seed, "figure2", condition.key, index),
            session_id=f"figure2-{condition.fingerprint_key}-{index}",
        )
        for condition in conditions
        for index in range(sessions_per_condition)
    ]
    sessions = BatchExecutor(workers).execute(plans)
    distributions: list[ConditionDistribution] = []
    for position, condition in enumerate(conditions):
        bins = paper_bins_for(condition.fingerprint_key)
        histogram = Histogram(bins=bins, categories=CATEGORIES)
        observed = 0
        for session in sessions[
            position * sessions_per_condition : (position + 1) * sessions_per_condition
        ]:
            records = extract_client_records(
                session.trace, server_ip=session.trace.server_ip
            )
            for record in records:
                category = record.label if record.label in CATEGORIES else LABEL_OTHER
                histogram.observe(record.wire_length, category)
                observed += 1
        distributions.append(
            ConditionDistribution(
                condition=condition, histogram=histogram, records_observed=observed
            )
        )
    return Figure2Result(
        distributions=distributions, sessions_per_condition=sessions_per_condition
    )
