"""Ablation B: how much do the Section VI countermeasures help?"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.profiles import OperationalCondition
from repro.client.viewer import ViewerBehavior
from repro.defenses.base import RecordDefense
from repro.defenses.evaluation import DefenseEvaluation, evaluate_defenses
from repro.defenses.registry import build_defense
from repro.engine.executor import BatchExecutor
from repro.engine.plan import SessionPlan
from repro.exceptions import DefenseError
from repro.narrative.bandersnatch import build_bandersnatch_script
from repro.narrative.graph import StoryGraph
from repro.utils.rng import derive_seed


def standard_defense_suite() -> list[RecordDefense]:
    """The defence configurations the ablation sweeps.

    Ordered from weakest (coarse padding) to strongest (constant-size
    records), with splitting and compression in between — the two fixes the
    paper explicitly suggests.  Every instance is built through the defense
    registry, so its ``instance_name`` carries its parameters and its spec
    round-trips over the wire.
    """
    return [build_defense(name, params) for name, params in standard_defense_specs()]


def standard_defense_specs() -> list[tuple[str, dict[str, object]]]:
    """(registry name, params) pairs behind :func:`standard_defense_suite`."""
    return [
        ("pad-to-multiple", {"block_bytes": 64}),
        ("pad-to-multiple", {"block_bytes": 512}),
        ("pad-to-constant", {"target_bytes": 4096}),
        ("split-records", {"parts": 3}),
        ("compress-state-reports", {}),
    ]


@dataclass(frozen=True)
class DefenseAblationResult:
    """Outcome of the defence sweep."""

    evaluations: list[DefenseEvaluation]
    condition_key: str

    def rows(self) -> list[dict[str, object]]:
        """Table rows: one per defence configuration."""
        return [evaluation.as_row() for evaluation in self.evaluations]

    def evaluation_for(self, defense_name: str) -> DefenseEvaluation:
        """Look up one defence's scores."""
        for evaluation in self.evaluations:
            if evaluation.defense_name == defense_name:
                return evaluation
        raise DefenseError(f"no evaluation for defence {defense_name!r}")

    @property
    def undefended_accuracy(self) -> float:
        """Choice accuracy with no defence (the reference row)."""
        return self.evaluation_for("no defense").choice_accuracy

    @property
    def best_defense(self) -> DefenseEvaluation:
        """The defence that degrades choice accuracy the most."""
        candidates = [e for e in self.evaluations if e.defense_name != "no defense"]
        if not candidates:
            raise DefenseError("no defences were evaluated")
        return min(candidates, key=lambda evaluation: evaluation.choice_accuracy)

    @property
    def timing_channel_survives(self) -> bool:
        """Whether the residual timing channel persists under the best defence.

        The paper's warning is that "there could be timing side-channels that
        may still exist even after this fix": even with record lengths fully
        hidden, a timing-only observer can still locate most of the choice
        questions (question recall well above a coin flip).
        """
        return self.best_defense.timing_question_recall > 0.5


def reproduce_defense_ablation(
    train_count: int = 4,
    test_count: int = 4,
    seed: int = 5,
    graph: StoryGraph | None = None,
    condition: OperationalCondition | None = None,
    defenses: list[RecordDefense] | None = None,
    workers: int | None = None,
) -> DefenseAblationResult:
    """Evaluate the standard defence suite against an adaptive attacker."""
    if train_count <= 0 or test_count <= 0:
        raise DefenseError("session counts must be positive")
    graph = graph or build_bandersnatch_script(
        trunk_segment_minutes=1.5, branch_segment_minutes=1.0, ending_minutes=2.0
    )
    condition = condition or OperationalCondition(
        "linux", "desktop", "firefox", "wired", "noon"
    )
    behaviors = [
        ViewerBehavior("20-25", "male", "centrist", "happy"),
        ViewerBehavior("25-30", "female", "liberal", "stressed"),
    ]

    def _plans(count: int, tag: str) -> list[SessionPlan]:
        return [
            SessionPlan(
                graph=graph,
                condition=condition,
                behavior=behaviors[index % len(behaviors)],
                seed=derive_seed(seed, tag, index),
                session_id=f"{tag}-{index}",
            )
            for index in range(count)
        ]

    train_plans = _plans(train_count, "defense-train")
    test_plans = _plans(test_count, "defense-test")
    sessions = BatchExecutor(workers).execute(train_plans + test_plans)
    train_sessions = sessions[: len(train_plans)]
    test_sessions = sessions[len(train_plans) :]
    evaluations = evaluate_defenses(
        defenses if defenses is not None else standard_defense_suite(),
        train_sessions,
        test_sessions,
    )
    return DefenseAblationResult(evaluations=evaluations, condition_key=condition.key)
