"""Plain-text rendering of the reproduction results.

The benchmarks and the ``examples/`` scripts print their tables through these
helpers so that the output of ``pytest benchmarks/`` and of the examples
matches what EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import ReproError


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        raise ReproError("cannot format an empty table")
    columns = list(rows[0].keys())
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def render_experiment_report(
    table1_rows: Sequence[Mapping[str, object]] | None = None,
    figure1_events: Sequence[tuple[str, str]] | None = None,
    figure2_rows: Mapping[str, Sequence[Mapping[str, object]]] | None = None,
    headline_rows: Sequence[Mapping[str, object]] | None = None,
    baseline_rows: Sequence[Mapping[str, object]] | None = None,
    defense_rows: Sequence[Mapping[str, object]] | None = None,
) -> str:
    """Assemble a multi-section text report from whichever results are provided."""
    sections: list[str] = []
    if table1_rows:
        sections.append(format_table(table1_rows, "Table I — IITM-Bandersnatch attributes"))
    if figure1_events:
        lines = ["Figure 1 — streaming process walkthrough", "=" * 41]
        lines.extend(f"  {kind:<20s} {detail}" for kind, detail in figure1_events)
        sections.append("\n".join(lines))
    if figure2_rows:
        for condition_name, rows in figure2_rows.items():
            sections.append(
                format_table(rows, f"Figure 2 — SSL record lengths, {condition_name}")
            )
    if headline_rows:
        sections.append(format_table(headline_rows, "Section V — choice recovery accuracy"))
    if baseline_rows:
        sections.append(format_table(baseline_rows, "Ablation A — baselines vs White Mirror"))
    if defense_rows:
        sections.append(format_table(defense_rows, "Ablation B — countermeasures"))
    if not sections:
        raise ReproError("no results supplied to the report renderer")
    return "\n\n".join(sections)
