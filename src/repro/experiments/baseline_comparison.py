"""Ablation A: inter-video baselines cannot separate intra-video branches."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.comparison import ComparisonResult, run_comparison
from repro.client.profiles import OperationalCondition
from repro.client.viewer import ViewerBehavior
from repro.engine.executor import BatchExecutor
from repro.engine.plan import SessionPlan
from repro.exceptions import AttackError
from repro.narrative.bandersnatch import build_bandersnatch_script
from repro.narrative.graph import StoryGraph
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class BaselineComparisonResult:
    """Outcome of the baseline-vs-White-Mirror comparison."""

    comparison: ComparisonResult
    condition_key: str
    train_sessions: int
    test_sessions: int

    def rows(self) -> list[dict[str, object]]:
        """Table rows: one per technique."""
        return self.comparison.as_rows()

    @property
    def baselines_near_chance(self) -> bool:
        """Whether both baselines stay within 20 points of a coin flip."""
        return (
            abs(self.comparison.bitrate_baseline_accuracy - 0.5) <= 0.2
            and abs(self.comparison.burst_baseline_accuracy - 0.5) <= 0.2
        )


def reproduce_baseline_comparison(
    train_count: int = 6,
    test_count: int = 6,
    seed: int = 4,
    graph: StoryGraph | None = None,
    condition: OperationalCondition | None = None,
    workers: int | None = None,
) -> BaselineComparisonResult:
    """Run the intra-video branch identification task for every technique."""
    if train_count <= 0 or test_count <= 0:
        raise AttackError("session counts must be positive")
    graph = graph or build_bandersnatch_script(
        trunk_segment_minutes=1.5, branch_segment_minutes=1.0, ending_minutes=2.0
    )
    condition = condition or OperationalCondition(
        "linux", "desktop", "firefox", "wired", "noon"
    )
    behaviors = [
        ViewerBehavior("20-25", "male", "centrist", "happy"),
        ViewerBehavior("25-30", "female", "liberal", "stressed"),
        ViewerBehavior(">30", "undisclosed", "undisclosed", "sad"),
    ]

    def _plans(count: int, tag: str, offset: int) -> list[SessionPlan]:
        return [
            SessionPlan(
                graph=graph,
                condition=condition,
                behavior=behaviors[index % len(behaviors)],
                seed=derive_seed(seed, tag, index + offset),
                session_id=f"{tag}-{index}",
            )
            for index in range(count)
        ]

    train_plans = _plans(train_count, "baseline-train", 0)
    test_plans = _plans(test_count, "baseline-test", 1000)
    sessions = BatchExecutor(workers).execute(train_plans + test_plans)
    train_sessions = sessions[: len(train_plans)]
    test_sessions = sessions[len(train_plans) :]
    comparison = run_comparison(train_sessions, test_sessions, graph)
    return BaselineComparisonResult(
        comparison=comparison,
        condition_key=condition.key,
        train_sessions=train_count,
        test_sessions=test_count,
    )
