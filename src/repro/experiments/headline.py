"""Headline result reproduction: choices revealed ~96 % of the time (worst case).

Section V: "We conducted our preliminary experiments on the encrypted traffic
captured during 10 different viewing sessions ... This helped us to identify
the two types of JSON files with 96% accuracy and hence the choices made by
the viewers."

The reproduction trains the attack on a handful of labelled sessions per
environment, then evaluates choice recovery on ``sessions_per_condition``
held-out sessions under every condition in the evaluation spread, and reports
per-condition accuracy, the aggregate and — the paper's number — the worst
case across conditions.

:func:`reproduce_headline_from_dataset` is the scale-out variant: instead of
simulating its own condition grid it consumes a **sharded on-disk dataset**
directly, training incrementally shard by shard and streaming the evaluation,
so the same experiment runs over populations far larger than memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.client.profiles import OperationalCondition
from repro.client.viewer import ViewerBehavior
from repro.core.evaluation import (
    AttackEvaluation,
    aggregate_choice_accuracy,
    aggregate_json_identification_accuracy,
    worst_case_accuracy,
)
from repro.core.pipeline import WhiteMirrorAttack
from repro.dataset.collection import default_study_script
from repro.dataset.shards import ShardedDataset
from repro.engine.executor import BatchExecutor
from repro.engine.plan import SessionPlan
from repro.exceptions import AttackError
from repro.experiments.conditions import headline_conditions
from repro.narrative.bandersnatch import build_bandersnatch_script
from repro.narrative.graph import StoryGraph
from repro.utils.rng import derive_seed

#: The number the paper reports for the worst case.
PAPER_WORST_CASE_ACCURACY = 0.96

_BEHAVIOR_POOL = [
    ViewerBehavior("<20", "male", "liberal", "happy"),
    ViewerBehavior("20-25", "female", "centrist", "stressed"),
    ViewerBehavior("25-30", "male", "communist", "sad"),
    ViewerBehavior(">30", "female", "undisclosed", "happy"),
    ViewerBehavior("20-25", "undisclosed", "liberal", "stressed"),
]


def _accuracy_row(
    key_column: str,
    key: str,
    sessions: object,
    json_identification_accuracy: object,
    choice_accuracy: object,
    exact_paths_recovered: object,
) -> dict[str, object]:
    """One row of a headline table, keyed by condition or environment.

    Shared by the simulated-grid and dataset-driven result types so the two
    ``repro reproduce`` tables cannot drift apart column-wise.
    """
    return {
        key_column: key,
        "sessions": sessions,
        "json_identification_accuracy": json_identification_accuracy,
        "choice_accuracy": choice_accuracy,
        "exact_paths_recovered": exact_paths_recovered,
    }


@dataclass(frozen=True)
class ConditionAccuracy:
    """Accuracy of the attack under one operational condition."""

    condition: OperationalCondition
    sessions: int
    json_identification_accuracy: float
    choice_accuracy: float
    record_accuracy: float
    exact_paths_recovered: int

    def as_row(self) -> dict[str, object]:
        """One row of the headline table."""
        return _accuracy_row(
            "condition",
            self.condition.key,
            self.sessions,
            round(self.json_identification_accuracy, 4),
            round(self.choice_accuracy, 4),
            self.exact_paths_recovered,
        )


@dataclass(frozen=True)
class HeadlineResult:
    """The reproduced Section V result.

    The paper's 96 % refers to identifying the two JSON types; that is the
    number compared against :attr:`paper_worst_case_accuracy`.  The stricter
    per-choice accuracy is reported alongside.
    """

    per_condition: list[ConditionAccuracy]
    aggregate_json_identification_accuracy: float
    aggregate_choice_accuracy: float
    worst_case_condition: str
    worst_case_accuracy: float
    worst_case_choice_accuracy: float
    paper_worst_case_accuracy: float = PAPER_WORST_CASE_ACCURACY

    @property
    def worst_case_gap(self) -> float:
        """Absolute difference between reproduced and published worst case."""
        return abs(self.worst_case_accuracy - self.paper_worst_case_accuracy)

    def rows(self) -> list[dict[str, object]]:
        """All per-condition rows plus the summary rows."""
        rows = [entry.as_row() for entry in self.per_condition]
        rows.append(
            _accuracy_row(
                "condition",
                "AGGREGATE",
                sum(entry.sessions for entry in self.per_condition),
                round(self.aggregate_json_identification_accuracy, 4),
                round(self.aggregate_choice_accuracy, 4),
                sum(entry.exact_paths_recovered for entry in self.per_condition),
            )
        )
        rows.append(
            _accuracy_row(
                "condition",
                f"WORST CASE ({self.worst_case_condition})",
                "",
                round(self.worst_case_accuracy, 4),
                round(self.worst_case_choice_accuracy, 4),
                "",
            )
        )
        return rows


class _EnvironmentScore:
    """Streaming accumulator of one environment's evaluation sums.

    Holds only counters, so evaluating a million-session dataset keeps
    O(environments) state rather than a list of per-session evaluations.
    The derived accuracies match the list-based aggregation helpers exactly.
    """

    __slots__ = (
        "sessions",
        "ground_truth_choices",
        "correct_choices",
        "json_denominator",
        "correct_json_records",
        "record_accuracy_sum",
        "exact_paths",
    )

    def __init__(self) -> None:
        self.sessions = 0
        self.ground_truth_choices = 0
        self.correct_choices = 0
        self.json_denominator = 0
        self.correct_json_records = 0
        self.record_accuracy_sum = 0.0
        self.exact_paths = 0

    def add(self, evaluation: AttackEvaluation) -> None:
        self.sessions += 1
        self.ground_truth_choices += evaluation.ground_truth_choices
        self.correct_choices += evaluation.correct_choices
        self.json_denominator += (
            evaluation.true_json_records + evaluation.false_positive_json_records
        )
        self.correct_json_records += evaluation.correct_json_records
        self.record_accuracy_sum += evaluation.record_accuracy
        self.exact_paths += 1 if evaluation.exact_path_recovered else 0

    @property
    def choice_accuracy(self) -> float:
        if self.ground_truth_choices == 0:
            raise AttackError("environment has no ground-truth choices to score")
        return self.correct_choices / self.ground_truth_choices

    @property
    def json_identification_accuracy(self) -> float:
        if self.json_denominator == 0:
            raise AttackError("environment contains no state-report records to score")
        return self.correct_json_records / self.json_denominator


@dataclass(frozen=True)
class EnvironmentAccuracy:
    """Accuracy of the attack over one environment (OS × browser) of a dataset."""

    environment: str
    sessions: int
    json_identification_accuracy: float
    choice_accuracy: float
    record_accuracy: float
    exact_paths_recovered: int

    def as_row(self) -> dict[str, object]:
        """One row of the dataset headline table."""
        return _accuracy_row(
            "environment",
            self.environment,
            self.sessions,
            round(self.json_identification_accuracy, 4),
            round(self.choice_accuracy, 4),
            self.exact_paths_recovered,
        )


@dataclass(frozen=True)
class DatasetHeadlineResult:
    """The Section V result reproduced over a sharded on-disk dataset."""

    per_environment: list[EnvironmentAccuracy]
    aggregate_json_identification_accuracy: float
    aggregate_choice_accuracy: float
    worst_case_environment: str
    worst_case_accuracy: float
    worst_case_choice_accuracy: float
    training_sessions: int
    evaluated_sessions: int
    paper_worst_case_accuracy: float = PAPER_WORST_CASE_ACCURACY

    def rows(self) -> list[dict[str, object]]:
        """All per-environment rows plus the summary rows."""
        rows = [entry.as_row() for entry in self.per_environment]
        rows.append(
            _accuracy_row(
                "environment",
                "AGGREGATE",
                self.evaluated_sessions,
                round(self.aggregate_json_identification_accuracy, 4),
                round(self.aggregate_choice_accuracy, 4),
                sum(entry.exact_paths_recovered for entry in self.per_environment),
            )
        )
        rows.append(
            _accuracy_row(
                "environment",
                f"WORST CASE ({self.worst_case_environment})",
                "",
                round(self.worst_case_accuracy, 4),
                round(self.worst_case_choice_accuracy, 4),
                "",
            )
        )
        return rows


def reproduce_headline_from_dataset(
    dataset: ShardedDataset | str | Path,
    training_sessions_per_environment: int = 2,
    margin: int = 8,
    graph: StoryGraph | None = None,
    workers: int | None = None,
) -> DatasetHeadlineResult:
    """Run the Section V experiment over a sharded on-disk dataset.

    The calibration/evaluation split — each environment's first
    ``training_sessions_per_environment`` viewers (in viewer order)
    calibrate, the rest are attacked — is decided from the shard metadata
    alone (a viewer's environment is recorded there), so every session is
    re-simulated **exactly once**, in the pass that needs it:

    1. **Calibrate** — the calibration viewers' sessions are folded into the
       fingerprints shard by shard via
       :meth:`~repro.core.pipeline.WhiteMirrorAttack.train_incremental`;
    2. **Evaluate** — every remaining viewer's session is attacked and
       scored, the per-environment sums accumulating in O(environments)
       counters.

    Sessions are re-simulated from the shard metadata (the released pcaps
    carry no labels, by design), exactly as ``repro train`` does; simulation
    seeds derive from viewer ids alone, so a split run yields the same
    sessions an unsplit walk would.
    """
    if training_sessions_per_environment <= 0:
        raise AttackError("training session count must be positive")
    if not isinstance(dataset, ShardedDataset):
        dataset = ShardedDataset.load(dataset)
    graph = graph or default_study_script()

    # Pass 1: fold each environment's leading viewers into the fingerprints.
    # The calibration assignment is made inside the viewer filter, which the
    # iteration helper calls exactly once per viewer in dataset order while
    # rebuilding each shard's viewer list anyway — no separate metadata pass.
    calibration_ids: set[str] = set()
    seen: dict[str, int] = {}

    def assign_to_calibration(viewer) -> bool:
        key = viewer.condition.fingerprint_key
        seen[key] = seen.get(key, 0) + 1
        if seen[key] <= training_sessions_per_environment:
            calibration_ids.add(viewer.viewer_id)
            return True
        return False

    attack = WhiteMirrorAttack(graph=graph, band_margin=margin)
    attack.train_incremental(
        dataset.iter_shard_training_sessions(
            graph=graph, workers=workers, viewer_filter=assign_to_calibration
        )
    )

    # Pass 2: attack and score every held-out session, streaming.
    scores: dict[str, _EnvironmentScore] = {}
    for shard_sessions in dataset.iter_shard_training_sessions(
        graph=graph,
        workers=workers,
        viewer_filter=lambda viewer: viewer.viewer_id not in calibration_ids,
    ):
        for session in shard_sessions:
            key = session.condition.fingerprint_key
            evaluation = attack.attack_session(session).evaluate_against(session)
            scores.setdefault(key, _EnvironmentScore()).add(evaluation)
    if not scores:
        raise AttackError(
            "no sessions left to evaluate: every session was used for "
            "calibration (lower training_sessions_per_environment or use a "
            "larger dataset)"
        )

    per_environment = [
        EnvironmentAccuracy(
            environment=key,
            sessions=score.sessions,
            json_identification_accuracy=score.json_identification_accuracy,
            choice_accuracy=score.choice_accuracy,
            record_accuracy=score.record_accuracy_sum / score.sessions,
            exact_paths_recovered=score.exact_paths,
        )
        for key, score in sorted(scores.items())
    ]
    # Per-environment construction above already guarantees every summed
    # denominator is positive (the accuracy properties raise otherwise).
    total_choices = sum(score.ground_truth_choices for score in scores.values())
    total_correct = sum(score.correct_choices for score in scores.values())
    json_denominator = sum(score.json_denominator for score in scores.values())
    json_correct = sum(score.correct_json_records for score in scores.values())
    worst_environment, worst_accuracy = worst_case_accuracy(
        {entry.environment: entry.json_identification_accuracy for entry in per_environment}
    )
    return DatasetHeadlineResult(
        per_environment=per_environment,
        aggregate_json_identification_accuracy=json_correct / json_denominator,
        aggregate_choice_accuracy=total_correct / total_choices,
        worst_case_environment=worst_environment,
        worst_case_accuracy=worst_accuracy,
        worst_case_choice_accuracy=scores[worst_environment].choice_accuracy,
        training_sessions=len(calibration_ids),
        evaluated_sessions=sum(score.sessions for score in scores.values()),
    )


def _batch_plans(
    graph: StoryGraph,
    condition: OperationalCondition,
    count: int,
    seed: int,
    tag: str,
) -> list[SessionPlan]:
    """Plans for one condition's sessions (seeds independent of batch order)."""
    return [
        SessionPlan(
            graph=graph,
            condition=condition,
            behavior=_BEHAVIOR_POOL[index % len(_BEHAVIOR_POOL)],
            seed=derive_seed(seed, tag, condition.key, index),
            session_id=f"{tag}-{condition.key}-{index}",
        )
        for index in range(count)
    ]


def reproduce_headline(
    sessions_per_condition: int = 10,
    training_sessions_per_condition: int = 2,
    seed: int = 3,
    conditions: list[OperationalCondition] | None = None,
    graph: StoryGraph | None = None,
    workers: int | None = None,
) -> HeadlineResult:
    """Run the Section V experiment.

    ``sessions_per_condition`` defaults to the paper's 10 viewing sessions.
    The whole condition × session grid (training and test) is simulated as
    one engine batch; ``workers`` selects serial or process-pool execution
    and does not change the result.
    """
    if sessions_per_condition <= 0 or training_sessions_per_condition <= 0:
        raise AttackError("session counts must be positive")
    graph = graph or build_bandersnatch_script(
        trunk_segment_minutes=1.5, branch_segment_minutes=1.0, ending_minutes=2.0
    )
    conditions = conditions or headline_conditions()

    # One batch for the full grid: every condition's training sessions, then
    # every condition's test sessions, all seeded independently of order.
    train_plans: list[SessionPlan] = []
    for condition in conditions:
        train_plans.extend(
            _batch_plans(
                graph, condition, training_sessions_per_condition, seed, "headline-train"
            )
        )
    test_plans: list[SessionPlan] = []
    for condition in conditions:
        test_plans.extend(
            _batch_plans(
                graph, condition, sessions_per_condition, seed + 1, "headline-test"
            )
        )
    executor = BatchExecutor(workers)
    sessions = executor.execute(train_plans + test_plans)
    training = sessions[: len(train_plans)]
    test_sessions_flat = sessions[len(train_plans) :]

    attack = WhiteMirrorAttack(graph=graph)
    attack.train(training)

    per_condition: list[ConditionAccuracy] = []
    all_evaluations = []
    json_accuracy_by_condition: dict[str, float] = {}
    choice_accuracy_by_condition: dict[str, float] = {}
    for position, condition in enumerate(conditions):
        test_sessions = test_sessions_flat[
            position * sessions_per_condition : (position + 1) * sessions_per_condition
        ]
        evaluations = attack.evaluate_sessions(test_sessions)
        all_evaluations.extend(evaluations)
        json_accuracy = aggregate_json_identification_accuracy(evaluations)
        choice_accuracy = aggregate_choice_accuracy(evaluations)
        json_accuracy_by_condition[condition.key] = json_accuracy
        choice_accuracy_by_condition[condition.key] = choice_accuracy
        per_condition.append(
            ConditionAccuracy(
                condition=condition,
                sessions=len(test_sessions),
                json_identification_accuracy=json_accuracy,
                choice_accuracy=choice_accuracy,
                record_accuracy=sum(e.record_accuracy for e in evaluations)
                / len(evaluations),
                exact_paths_recovered=sum(
                    1 for e in evaluations if e.exact_path_recovered
                ),
            )
        )
    worst_condition, worst_accuracy = worst_case_accuracy(json_accuracy_by_condition)
    return HeadlineResult(
        per_condition=per_condition,
        aggregate_json_identification_accuracy=aggregate_json_identification_accuracy(
            all_evaluations
        ),
        aggregate_choice_accuracy=aggregate_choice_accuracy(all_evaluations),
        worst_case_condition=worst_condition,
        worst_case_accuracy=worst_accuracy,
        worst_case_choice_accuracy=choice_accuracy_by_condition[worst_condition],
    )
