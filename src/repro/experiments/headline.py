"""Headline result reproduction: choices revealed ~96 % of the time (worst case).

Section V: "We conducted our preliminary experiments on the encrypted traffic
captured during 10 different viewing sessions ... This helped us to identify
the two types of JSON files with 96% accuracy and hence the choices made by
the viewers."

The reproduction trains the attack on a handful of labelled sessions per
environment, then evaluates choice recovery on ``sessions_per_condition``
held-out sessions under every condition in the evaluation spread, and reports
per-condition accuracy, the aggregate and — the paper's number — the worst
case across conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.profiles import OperationalCondition
from repro.client.viewer import ViewerBehavior
from repro.core.evaluation import (
    aggregate_choice_accuracy,
    aggregate_json_identification_accuracy,
    worst_case_accuracy,
)
from repro.core.pipeline import WhiteMirrorAttack
from repro.engine.executor import BatchExecutor
from repro.engine.plan import SessionPlan
from repro.exceptions import AttackError
from repro.experiments.conditions import headline_conditions
from repro.narrative.bandersnatch import build_bandersnatch_script
from repro.narrative.graph import StoryGraph
from repro.utils.rng import derive_seed

#: The number the paper reports for the worst case.
PAPER_WORST_CASE_ACCURACY = 0.96

_BEHAVIOR_POOL = [
    ViewerBehavior("<20", "male", "liberal", "happy"),
    ViewerBehavior("20-25", "female", "centrist", "stressed"),
    ViewerBehavior("25-30", "male", "communist", "sad"),
    ViewerBehavior(">30", "female", "undisclosed", "happy"),
    ViewerBehavior("20-25", "undisclosed", "liberal", "stressed"),
]


@dataclass(frozen=True)
class ConditionAccuracy:
    """Accuracy of the attack under one operational condition."""

    condition: OperationalCondition
    sessions: int
    json_identification_accuracy: float
    choice_accuracy: float
    record_accuracy: float
    exact_paths_recovered: int

    def as_row(self) -> dict[str, object]:
        """One row of the headline table."""
        return {
            "condition": self.condition.key,
            "sessions": self.sessions,
            "json_identification_accuracy": round(self.json_identification_accuracy, 4),
            "choice_accuracy": round(self.choice_accuracy, 4),
            "exact_paths_recovered": self.exact_paths_recovered,
        }


@dataclass(frozen=True)
class HeadlineResult:
    """The reproduced Section V result.

    The paper's 96 % refers to identifying the two JSON types; that is the
    number compared against :attr:`paper_worst_case_accuracy`.  The stricter
    per-choice accuracy is reported alongside.
    """

    per_condition: list[ConditionAccuracy]
    aggregate_json_identification_accuracy: float
    aggregate_choice_accuracy: float
    worst_case_condition: str
    worst_case_accuracy: float
    worst_case_choice_accuracy: float
    paper_worst_case_accuracy: float = PAPER_WORST_CASE_ACCURACY

    @property
    def worst_case_gap(self) -> float:
        """Absolute difference between reproduced and published worst case."""
        return abs(self.worst_case_accuracy - self.paper_worst_case_accuracy)

    def rows(self) -> list[dict[str, object]]:
        """All per-condition rows plus the summary rows."""
        rows = [entry.as_row() for entry in self.per_condition]
        rows.append(
            {
                "condition": "AGGREGATE",
                "sessions": sum(entry.sessions for entry in self.per_condition),
                "json_identification_accuracy": round(
                    self.aggregate_json_identification_accuracy, 4
                ),
                "choice_accuracy": round(self.aggregate_choice_accuracy, 4),
                "exact_paths_recovered": sum(
                    entry.exact_paths_recovered for entry in self.per_condition
                ),
            }
        )
        rows.append(
            {
                "condition": f"WORST CASE ({self.worst_case_condition})",
                "sessions": "",
                "json_identification_accuracy": round(self.worst_case_accuracy, 4),
                "choice_accuracy": round(self.worst_case_choice_accuracy, 4),
                "exact_paths_recovered": "",
            }
        )
        return rows


def _batch_plans(
    graph: StoryGraph,
    condition: OperationalCondition,
    count: int,
    seed: int,
    tag: str,
) -> list[SessionPlan]:
    """Plans for one condition's sessions (seeds independent of batch order)."""
    return [
        SessionPlan(
            graph=graph,
            condition=condition,
            behavior=_BEHAVIOR_POOL[index % len(_BEHAVIOR_POOL)],
            seed=derive_seed(seed, tag, condition.key, index),
            session_id=f"{tag}-{condition.key}-{index}",
        )
        for index in range(count)
    ]


def reproduce_headline(
    sessions_per_condition: int = 10,
    training_sessions_per_condition: int = 2,
    seed: int = 3,
    conditions: list[OperationalCondition] | None = None,
    graph: StoryGraph | None = None,
    workers: int | None = None,
) -> HeadlineResult:
    """Run the Section V experiment.

    ``sessions_per_condition`` defaults to the paper's 10 viewing sessions.
    The whole condition × session grid (training and test) is simulated as
    one engine batch; ``workers`` selects serial or process-pool execution
    and does not change the result.
    """
    if sessions_per_condition <= 0 or training_sessions_per_condition <= 0:
        raise AttackError("session counts must be positive")
    graph = graph or build_bandersnatch_script(
        trunk_segment_minutes=1.5, branch_segment_minutes=1.0, ending_minutes=2.0
    )
    conditions = conditions or headline_conditions()

    # One batch for the full grid: every condition's training sessions, then
    # every condition's test sessions, all seeded independently of order.
    train_plans: list[SessionPlan] = []
    for condition in conditions:
        train_plans.extend(
            _batch_plans(
                graph, condition, training_sessions_per_condition, seed, "headline-train"
            )
        )
    test_plans: list[SessionPlan] = []
    for condition in conditions:
        test_plans.extend(
            _batch_plans(
                graph, condition, sessions_per_condition, seed + 1, "headline-test"
            )
        )
    executor = BatchExecutor(workers)
    sessions = executor.execute(train_plans + test_plans)
    training = sessions[: len(train_plans)]
    test_sessions_flat = sessions[len(train_plans) :]

    attack = WhiteMirrorAttack(graph=graph)
    attack.train(training)

    per_condition: list[ConditionAccuracy] = []
    all_evaluations = []
    json_accuracy_by_condition: dict[str, float] = {}
    choice_accuracy_by_condition: dict[str, float] = {}
    for position, condition in enumerate(conditions):
        test_sessions = test_sessions_flat[
            position * sessions_per_condition : (position + 1) * sessions_per_condition
        ]
        evaluations = attack.evaluate_sessions(test_sessions)
        all_evaluations.extend(evaluations)
        json_accuracy = aggregate_json_identification_accuracy(evaluations)
        choice_accuracy = aggregate_choice_accuracy(evaluations)
        json_accuracy_by_condition[condition.key] = json_accuracy
        choice_accuracy_by_condition[condition.key] = choice_accuracy
        per_condition.append(
            ConditionAccuracy(
                condition=condition,
                sessions=len(test_sessions),
                json_identification_accuracy=json_accuracy,
                choice_accuracy=choice_accuracy,
                record_accuracy=sum(e.record_accuracy for e in evaluations)
                / len(evaluations),
                exact_paths_recovered=sum(
                    1 for e in evaluations if e.exact_path_recovered
                ),
            )
        )
    worst_condition, worst_accuracy = worst_case_accuracy(json_accuracy_by_condition)
    return HeadlineResult(
        per_condition=per_condition,
        aggregate_json_identification_accuracy=aggregate_json_identification_accuracy(
            all_evaluations
        ),
        aggregate_choice_accuracy=aggregate_choice_accuracy(all_evaluations),
        worst_case_condition=worst_condition,
        worst_case_accuracy=worst_accuracy,
        worst_case_choice_accuracy=choice_accuracy_by_condition[worst_condition],
    )
