"""Reproduction harness: one runner per table/figure plus the ablations.

Each runner is a plain function returning a small result dataclass with the
numeric rows/series the corresponding paper artefact plots or tabulates, so
the benchmarks under ``benchmarks/`` and the report generator can share the
exact same code path.
"""

from repro.experiments.conditions import headline_conditions
from repro.experiments.table1 import Table1Result, reproduce_table1
from repro.experiments.figure1 import Figure1Result, reproduce_figure1
from repro.experiments.figure2 import Figure2Result, paper_bins_for, reproduce_figure2
from repro.experiments.headline import (
    DatasetHeadlineResult,
    EnvironmentAccuracy,
    HeadlineResult,
    reproduce_headline,
    reproduce_headline_from_dataset,
)
from repro.experiments.baseline_comparison import BaselineComparisonResult, reproduce_baseline_comparison
from repro.experiments.defense_ablation import DefenseAblationResult, reproduce_defense_ablation
from repro.experiments.ablation_classifiers import (
    ClassifierAblationResult,
    reproduce_classifier_ablation,
)
from repro.experiments.ablation_transfer import (
    TransferAblationResult,
    reproduce_transfer_ablation,
)
from repro.experiments.ablation_ciphers import (
    CipherAblationResult,
    reproduce_cipher_ablation,
)
from repro.experiments.report import format_table, render_experiment_report

__all__ = [
    "headline_conditions",
    "Table1Result",
    "reproduce_table1",
    "Figure1Result",
    "reproduce_figure1",
    "Figure2Result",
    "paper_bins_for",
    "reproduce_figure2",
    "HeadlineResult",
    "reproduce_headline",
    "DatasetHeadlineResult",
    "EnvironmentAccuracy",
    "reproduce_headline_from_dataset",
    "BaselineComparisonResult",
    "reproduce_baseline_comparison",
    "DefenseAblationResult",
    "reproduce_defense_ablation",
    "ClassifierAblationResult",
    "reproduce_classifier_ablation",
    "TransferAblationResult",
    "reproduce_transfer_ablation",
    "CipherAblationResult",
    "reproduce_cipher_ablation",
    "format_table",
    "render_experiment_report",
]
