"""Synthetic viewer population generation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.profiles import (
    BROWSERS,
    CONNECTION_TYPES,
    OPERATING_SYSTEMS,
    PLATFORMS,
    TRAFFIC_CONDITIONS,
    OperationalCondition,
)
from repro.client.viewer import (
    AGE_GROUPS,
    GENDERS,
    POLITICAL_ALIGNMENTS,
    STATES_OF_MIND,
    ViewerBehavior,
)
from repro.exceptions import DatasetError
from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class Viewer:
    """One participant of the study: identity, environment and behaviour."""

    viewer_id: str
    condition: OperationalCondition
    behavior: ViewerBehavior

    def __post_init__(self) -> None:
        if not self.viewer_id:
            raise DatasetError("viewer id must be non-empty")

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary used by the dataset metadata file."""
        return {
            "viewer_id": self.viewer_id,
            "condition": self.condition.as_dict(),
            "behavior": self.behavior.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Viewer":
        """Inverse of :meth:`as_dict`."""
        return cls(
            viewer_id=str(data["viewer_id"]),
            condition=OperationalCondition.from_dict(data["condition"]),  # type: ignore[arg-type]
            behavior=ViewerBehavior.from_dict(data["behavior"]),  # type: ignore[arg-type]
        )


def viewers_from_metadata_entries(
    entries: object, source: object
) -> list[Viewer]:
    """Rebuild the viewer list from a dataset's metadata entries.

    Shared by every consumer that re-simulates a saved dataset's sessions
    (``repro train``, shard-by-shard incremental training); a malformed
    entry raises a :class:`DatasetError` naming ``source`` rather than a
    bare ``KeyError``.
    """
    try:
        return [Viewer.from_dict(entry["viewer"]) for entry in entries]  # type: ignore[index, union-attr]
    except (KeyError, TypeError) as error:
        raise DatasetError(
            f"dataset metadata at {source} has a malformed viewer entry: "
            f"{error!r}"
        ) from error


#: Marginal distributions used when sampling viewers.  They are deliberately
#: non-uniform (most volunteers used wired desktops at noon, etc.) so the
#: dataset has realistic class imbalance, while every value keeps non-zero
#: probability so the full Table I grid is exercised.
_OS_WEIGHTS = {"windows": 0.5, "linux": 0.3, "mac": 0.2}
_PLATFORM_WEIGHTS = {"desktop": 0.55, "laptop": 0.45}
_BROWSER_WEIGHTS = {"chrome": 0.6, "firefox": 0.4}
_CONNECTION_WEIGHTS = {"wired": 0.55, "wireless": 0.45}
_TRAFFIC_WEIGHTS = {"morning": 0.3, "noon": 0.4, "night": 0.3}
_AGE_WEIGHTS = {"<20": 0.2, "20-25": 0.4, "25-30": 0.25, ">30": 0.15}
_GENDER_WEIGHTS = {"male": 0.55, "female": 0.4, "undisclosed": 0.05}
_POLITICS_WEIGHTS = {"liberal": 0.35, "centrist": 0.3, "communist": 0.15, "undisclosed": 0.2}
_MIND_WEIGHTS = {"happy": 0.45, "stressed": 0.3, "sad": 0.1, "undisclosed": 0.15}


def _sample_condition(rng: RandomSource) -> OperationalCondition:
    return OperationalCondition(
        operating_system=rng.weighted_choice(_OS_WEIGHTS),
        platform=rng.weighted_choice(_PLATFORM_WEIGHTS),
        browser=rng.weighted_choice(_BROWSER_WEIGHTS),
        connection_type=rng.weighted_choice(_CONNECTION_WEIGHTS),
        traffic_condition=rng.weighted_choice(_TRAFFIC_WEIGHTS),
    )


def _sample_behavior(rng: RandomSource) -> ViewerBehavior:
    return ViewerBehavior(
        age_group=rng.weighted_choice(_AGE_WEIGHTS),
        gender=rng.weighted_choice(_GENDER_WEIGHTS),
        political_alignment=rng.weighted_choice(_POLITICS_WEIGHTS),
        state_of_mind=rng.weighted_choice(_MIND_WEIGHTS),
    )


def generate_population(count: int, seed: int = 0) -> list[Viewer]:
    """Generate ``count`` synthetic viewers.

    Determinism: the same ``(count, seed)`` always yields the same viewers.
    The first few viewers are pinned to the two Figure 2 environments so that
    every generated dataset, however small, supports the Figure 2 and
    headline reproductions.
    """
    if count <= 0:
        raise DatasetError(f"population size must be positive, got {count}")
    root = RandomSource(seed, ("population",))
    viewers: list[Viewer] = []
    pinned = [
        OperationalCondition("linux", "desktop", "firefox", "wired", "noon"),
        OperationalCondition("windows", "desktop", "firefox", "wired", "noon"),
        OperationalCondition("linux", "desktop", "firefox", "wireless", "night"),
        OperationalCondition("windows", "laptop", "chrome", "wireless", "night"),
    ]
    for index in range(count):
        viewer_rng = root.child(index)
        condition = (
            pinned[index] if index < len(pinned) else _sample_condition(viewer_rng.child("cond"))
        )
        behavior = _sample_behavior(viewer_rng.child("behavior"))
        viewers.append(
            Viewer(
                viewer_id=f"viewer-{index:03d}",
                condition=condition,
                behavior=behavior,
            )
        )
    return viewers


def attribute_marginals(viewers: list[Viewer]) -> dict[str, dict[str, int]]:
    """Count the occurrences of every attribute value across a population."""
    if not viewers:
        raise DatasetError("cannot summarise an empty population")
    counts: dict[str, dict[str, int]] = {}

    def _bump(attribute: str, value: str) -> None:
        counts.setdefault(attribute, {}).setdefault(value, 0)
        counts[attribute][value] += 1

    for viewer in viewers:
        condition = viewer.condition.as_dict()
        behavior = viewer.behavior.as_dict()
        for attribute, value in {**condition, **behavior}.items():
            _bump(attribute, value)
    return counts
