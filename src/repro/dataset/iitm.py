"""The IITM-Bandersnatch-style dataset object.

:class:`IITMBandersnatchDataset` is the user-facing wrapper around the
population generator and collection pipeline: generate ``n`` viewers, run
their sessions, then slice the result by operational condition, split it into
train/test sets for the attack, summarise it (Table I) or persist it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.client.profiles import OperationalCondition
from repro.dataset.attributes import table1_rows
from repro.dataset.collection import (
    DataPoint,
    collect_dataset,
    default_study_script,
    iter_collect_dataset,
)
from repro.dataset.format import DatasetWriter, save_dataset_metadata
from repro.dataset.population import Viewer, attribute_marginals, generate_population
from repro.engine.executor import ProgressCallback
from repro.exceptions import DatasetError
from repro.narrative.graph import StoryGraph
from repro.streaming.session import SessionConfig
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class DatasetSummary:
    """Headline numbers describing a generated dataset."""

    viewer_count: int
    total_choices: int
    non_default_choices: int
    distinct_conditions: int
    total_packets: int

    @property
    def non_default_fraction(self) -> float:
        """Fraction of all choices that rejected the prefetched branch."""
        if self.total_choices == 0:
            raise DatasetError("summary has no choices")
        return self.non_default_choices / self.total_choices


class SummaryAccumulator:
    """Builds a :class:`DatasetSummary` incrementally from streamed points.

    The streaming generation paths discard each :class:`DataPoint` right
    after persisting it, so the aggregate statistics have to be folded in as
    points pass through; the resulting summary is identical to calling
    :meth:`IITMBandersnatchDataset.summary` on the materialised dataset.
    """

    def __init__(self) -> None:
        self._viewer_count = 0
        self._total_choices = 0
        self._non_default_choices = 0
        self._total_packets = 0
        self._condition_keys: set[str] = set()

    def add(self, point: DataPoint) -> None:
        """Fold one data point into the running totals."""
        self._viewer_count += 1
        self._total_choices += point.session.path.choice_count
        self._non_default_choices += point.session.path.non_default_count
        self._total_packets += point.session.trace.packet_count
        self._condition_keys.add(point.viewer.condition.key)

    @property
    def viewer_count(self) -> int:
        """Data points accumulated so far."""
        return self._viewer_count

    @property
    def condition_keys(self) -> tuple[str, ...]:
        """Sorted distinct operational-condition keys seen so far."""
        return tuple(sorted(self._condition_keys))

    def summary(self) -> DatasetSummary:
        """The summary of everything accumulated so far."""
        if self._viewer_count == 0:
            raise DatasetError("no data points accumulated")
        return DatasetSummary(
            viewer_count=self._viewer_count,
            total_choices=self._total_choices,
            non_default_choices=self._non_default_choices,
            distinct_conditions=len(self._condition_keys),
            total_packets=self._total_packets,
        )


class IITMBandersnatchDataset:
    """Synthetic stand-in for the paper's 100-viewer dataset."""

    def __init__(
        self,
        points: Sequence[DataPoint],
        graph: StoryGraph,
        seed: int,
        config: SessionConfig | None = None,
    ) -> None:
        if not points:
            raise DatasetError("a dataset must contain at least one data point")
        self._points = tuple(points)
        self._graph = graph
        self._seed = seed
        self._config = config

    # -- construction -------------------------------------------------------

    @classmethod
    def generate(
        cls,
        viewer_count: int = 100,
        seed: int = 0,
        graph: StoryGraph | None = None,
        config: SessionConfig | None = None,
        progress: ProgressCallback | None = None,
        workers: int | None = None,
    ) -> "IITMBandersnatchDataset":
        """Generate the full dataset (population + one session per viewer).

        ``workers`` selects the engine's execution mode (``None``/``1``
        serial, ``0`` all cores, ``N > 1`` a pool of ``N`` processes); the
        generated dataset is byte-identical either way.
        """
        graph = graph or default_study_script()
        viewers = generate_population(viewer_count, seed=seed)
        points = collect_dataset(
            viewers,
            dataset_seed=seed,
            graph=graph,
            config=config,
            progress=progress,
            workers=workers,
        )
        return cls(points=points, graph=graph, seed=seed, config=config)

    @classmethod
    def generate_streaming(
        cls,
        directory: str | Path,
        viewer_count: int = 100,
        seed: int = 0,
        graph: StoryGraph | None = None,
        config: SessionConfig | None = None,
        progress: ProgressCallback | None = None,
        workers: int | None = None,
        write_pcaps: bool = True,
    ) -> tuple[Path, DatasetSummary]:
        """Generate the dataset straight to disk without materialising it.

        The streaming counterpart of :meth:`generate` + :meth:`save`: each
        data point is persisted through a :class:`DatasetWriter` as the
        engine completes it and then discarded, so peak memory holds one
        session (serial) or the engine's in-flight window (parallel) rather
        than the whole population.  The written directory is byte-identical
        to ``generate(...).save(directory)`` for the same arguments.

        Returns the metadata path and the dataset's summary, which is
        identical to the in-memory dataset's :meth:`summary`.
        """
        graph = graph or default_study_script()
        viewers = generate_population(viewer_count, seed=seed)
        accumulator = SummaryAccumulator()
        with DatasetWriter(
            directory,
            write_pcaps=write_pcaps,
            seed=seed,
            config=config or SessionConfig(),
            graph=graph,
        ) as writer:
            for point in iter_collect_dataset(
                viewers,
                dataset_seed=seed,
                graph=graph,
                config=config,
                progress=progress,
                workers=workers,
            ):
                writer.add(point)
                accumulator.add(point)
        return writer.metadata_path, accumulator.summary()

    # -- access --------------------------------------------------------------

    @property
    def points(self) -> tuple[DataPoint, ...]:
        """Every data point, in viewer order."""
        return self._points

    @property
    def graph(self) -> StoryGraph:
        """The interactive script all sessions streamed."""
        return self._graph

    @property
    def seed(self) -> int:
        """The root seed the dataset was generated from."""
        return self._seed

    @property
    def viewers(self) -> tuple[Viewer, ...]:
        """The viewer population."""
        return tuple(point.viewer for point in self._points)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def by_condition(
        self, condition: OperationalCondition
    ) -> list[DataPoint]:
        """All data points collected under one exact operational condition."""
        return [point for point in self._points if point.viewer.condition == condition]

    def by_fingerprint_key(self, key: str) -> list[DataPoint]:
        """All data points whose environment (OS × browser) matches ``key``."""
        return [
            point
            for point in self._points
            if point.viewer.condition.fingerprint_key == key
        ]

    def conditions_present(self) -> list[OperationalCondition]:
        """Distinct operational conditions covered by the dataset."""
        seen: dict[str, OperationalCondition] = {}
        for point in self._points:
            seen.setdefault(point.viewer.condition.key, point.viewer.condition)
        return list(seen.values())

    # -- splits ---------------------------------------------------------------

    def train_test_split(
        self, test_fraction: float = 0.5, seed: int | None = None
    ) -> tuple[list[DataPoint], list[DataPoint]]:
        """Split data points into attacker-training and victim sets.

        The split is stratified by environment (fingerprint key) so every
        environment present in the test set also has training sessions,
        mirroring the paper's setup where the attacker calibrates per
        environment.
        """
        if not 0.0 < test_fraction < 1.0:
            raise DatasetError("test fraction must be in (0, 1)")
        rng = spawn_rng(self._seed if seed is None else seed, "dataset-split")
        groups: dict[str, list[DataPoint]] = {}
        for point in self._points:
            groups.setdefault(point.viewer.condition.fingerprint_key, []).append(point)
        train: list[DataPoint] = []
        test: list[DataPoint] = []
        for key in sorted(groups):
            members = list(groups[key])
            rng.shuffle(members)  # type: ignore[arg-type]
            if len(members) == 1:
                train.extend(members)
                continue
            test_count = int(round(len(members) * test_fraction))
            test_count = min(max(test_count, 1), len(members) - 1)
            test.extend(members[:test_count])
            train.extend(members[test_count:])
        return train, test

    # -- reporting -----------------------------------------------------------

    def summary(self) -> DatasetSummary:
        """Aggregate statistics of the dataset."""
        total_choices = sum(point.session.path.choice_count for point in self._points)
        non_default = sum(point.session.path.non_default_count for point in self._points)
        total_packets = sum(point.session.trace.packet_count for point in self._points)
        return DatasetSummary(
            viewer_count=len(self._points),
            total_choices=total_choices,
            non_default_choices=non_default,
            distinct_conditions=len(self.conditions_present()),
            total_packets=total_packets,
        )

    def table1(self) -> list[dict[str, str]]:
        """The Table I attribute rows (the attribute space of the dataset)."""
        return table1_rows()

    def attribute_counts(self) -> dict[str, dict[str, int]]:
        """Observed marginal counts of every attribute value in the population."""
        return attribute_marginals(list(self.viewers))

    # -- persistence -----------------------------------------------------------

    def save(self, directory: str | Path, write_pcaps: bool = True) -> Path:
        """Persist metadata (and optionally pcaps) under ``directory``."""
        return save_dataset_metadata(
            self._points,
            directory,
            write_pcaps=write_pcaps,
            seed=self._seed,
            config=self._config or SessionConfig(),
            graph=self._graph,
        )
