"""Loading a released dataset back from disk.

A saved dataset directory (``metadata.json`` + ``traces/*.pcap``) is the
artefact a study would actually publish.  :func:`load_released_dataset`
reconstructs, for every viewer, the captured trace (from the pcap — with no
simulator ground truth attached) together with the ground-truth choices and
attributes recorded in the metadata, which is exactly what a downstream user
needs to evaluate their own traffic-analysis technique against the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.client.profiles import OperationalCondition
from repro.client.viewer import ViewerBehavior
from repro.dataset.format import load_dataset_metadata
from repro.dataset.population import Viewer
from repro.exceptions import DatasetError
from repro.net.capture import CapturedTrace


@dataclass(frozen=True)
class LoadedDataPoint:
    """One viewer of a released dataset, reloaded from disk."""

    viewer: Viewer
    trace: CapturedTrace
    ground_truth_pattern: tuple[bool, ...]
    selected_labels: tuple[str, ...]
    question_ids: tuple[str, ...]
    segments: tuple[str, ...]

    @property
    def choice_count(self) -> int:
        """Number of questions the viewer answered."""
        return len(self.ground_truth_pattern)

    @property
    def non_default_count(self) -> int:
        """Number of times the viewer rejected the prefetched branch."""
        return sum(1 for took_default in self.ground_truth_pattern if not took_default)


@dataclass(frozen=True)
class LoadedDataset:
    """A released dataset reloaded from disk."""

    name: str
    points: tuple[LoadedDataPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def by_fingerprint_key(self, key: str) -> list[LoadedDataPoint]:
        """All viewers whose environment (OS × browser) matches ``key``."""
        return [
            point for point in self.points if point.viewer.condition.fingerprint_key == key
        ]

    def viewer(self, viewer_id: str) -> LoadedDataPoint:
        """Look one viewer up by id."""
        for point in self.points:
            if point.viewer.viewer_id == viewer_id:
                return point
        raise DatasetError(f"dataset has no viewer {viewer_id!r}")


def _point_from_entry(directory: Path, entry: dict) -> LoadedDataPoint:
    viewer = Viewer(
        viewer_id=str(entry["viewer"]["viewer_id"]),
        condition=OperationalCondition.from_dict(entry["viewer"]["condition"]),
        behavior=ViewerBehavior.from_dict(entry["viewer"]["behavior"]),
    )
    if "trace_file" not in entry:
        raise DatasetError(
            f"viewer {viewer.viewer_id!r} has no trace file; the dataset was "
            "saved with write_pcaps=False"
        )
    trace = CapturedTrace.from_pcap(
        directory / str(entry["trace_file"]),
        client_ip=str(entry["client_ip"]),
        server_ip=str(entry["server_ip"]),
    )
    choices = list(entry["choices"])
    return LoadedDataPoint(
        viewer=viewer,
        trace=trace,
        ground_truth_pattern=tuple(bool(choice["took_default"]) for choice in choices),
        selected_labels=tuple(str(choice["selected_label"]) for choice in choices),
        question_ids=tuple(str(choice["question_id"]) for choice in choices),
        segments=tuple(str(segment) for segment in entry["segments"]),
    )


def iter_released_points(directory: str | Path):
    """Lazily yield a saved dataset's viewers, one parsed pcap at a time.

    The streaming counterpart of :func:`load_released_dataset`: only the
    metadata index is read up front, and each trace is parsed when its point
    is requested — :meth:`repro.dataset.shards.ShardedDataset.iter_points`
    walks populations far larger than memory through this.
    """
    directory = Path(directory)
    metadata = load_dataset_metadata(directory)
    for entry in metadata["entries"]:
        yield _point_from_entry(directory, entry)


def load_released_dataset(directory: str | Path) -> LoadedDataset:
    """Reload every viewer of a saved dataset (traces re-parsed from pcap)."""
    directory = Path(directory)
    metadata = load_dataset_metadata(directory)
    points = tuple(iter_released_points(directory))
    if not points:
        raise DatasetError(f"dataset at {directory} contains no viewers")
    return LoadedDataset(name=str(metadata["name"]), points=points)
