"""The IITM-Bandersnatch-style dataset.

The paper contributes a dataset of 100 viewers, each data point being
``{encrypted traces, ground truth choices}`` plus the operational and
behavioural attributes of Table I.  Real captures cannot be collected
offline, so this package generates the synthetic equivalent: a viewer
population spanning the same attribute grid, one simulated viewing session
per viewer, ground-truth choices recorded alongside, and (optionally) each
trace persisted as a pcap file next to a JSON metadata index.
"""

from repro.dataset.attributes import (
    BEHAVIORAL_ATTRIBUTES,
    OPERATIONAL_ATTRIBUTES,
    table1_rows,
)
from repro.dataset.population import Viewer, generate_population
from repro.dataset.collection import DataPoint, collect_datapoint, collect_dataset
from repro.dataset.format import load_dataset_metadata, save_dataset_metadata
from repro.dataset.loader import LoadedDataPoint, LoadedDataset, load_released_dataset
from repro.dataset.iitm import DatasetSummary, IITMBandersnatchDataset

__all__ = [
    "BEHAVIORAL_ATTRIBUTES",
    "OPERATIONAL_ATTRIBUTES",
    "table1_rows",
    "Viewer",
    "generate_population",
    "DataPoint",
    "collect_datapoint",
    "collect_dataset",
    "load_dataset_metadata",
    "save_dataset_metadata",
    "LoadedDataPoint",
    "LoadedDataset",
    "load_released_dataset",
    "DatasetSummary",
    "IITMBandersnatchDataset",
]
