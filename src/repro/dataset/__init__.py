"""The IITM-Bandersnatch-style dataset.

The paper contributes a dataset of 100 viewers, each data point being
``{encrypted traces, ground truth choices}`` plus the operational and
behavioural attributes of Table I.  Real captures cannot be collected
offline, so this package generates the synthetic equivalent: a viewer
population spanning the same attribute grid, one simulated viewing session
per viewer, ground-truth choices recorded alongside, and (optionally) each
trace persisted as a pcap file next to a JSON metadata index.

Populations beyond memory scale go through the streaming and sharding
layers: :func:`iter_collect_dataset` yields points as the engine completes
them, :class:`DatasetWriter` persists them one at a time, and
:mod:`repro.dataset.shards` splits a population into independent on-disk
shard directories whose summaries merge back into one population summary.
"""

from repro.dataset.attributes import (
    BEHAVIORAL_ATTRIBUTES,
    OPERATIONAL_ATTRIBUTES,
    table1_rows,
)
from repro.dataset.population import (
    Viewer,
    generate_population,
    viewers_from_metadata_entries,
)
from repro.dataset.collection import (
    DataPoint,
    collect_datapoint,
    collect_dataset,
    iter_collect_dataset,
)
from repro.dataset.format import (
    DatasetWriter,
    dataset_is_complete,
    dataset_is_partial,
    load_dataset_metadata,
    save_dataset_metadata,
    session_config_from_metadata,
    snapshot_dataset_files,
)
from repro.dataset.loader import (
    LoadedDataPoint,
    LoadedDataset,
    iter_released_points,
    load_released_dataset,
)
from repro.dataset.iitm import (
    DatasetSummary,
    IITMBandersnatchDataset,
    SummaryAccumulator,
)
from repro.dataset.shards import (
    ShardedDataset,
    ShardSlice,
    ShardSummary,
    discover_shard_directories,
    generate_shard_subset,
    generate_sharded_dataset,
    iter_shard_training_sessions,
    load_consistent_shard_metadata,
    merge_shard_summaries,
    parse_shard_selection,
    plan_shards,
    quarantine_partial_shard,
    shard_summary_from_metadata,
    stitch_sharded_dataset,
)

__all__ = [
    "BEHAVIORAL_ATTRIBUTES",
    "OPERATIONAL_ATTRIBUTES",
    "table1_rows",
    "Viewer",
    "generate_population",
    "viewers_from_metadata_entries",
    "DataPoint",
    "collect_datapoint",
    "collect_dataset",
    "iter_collect_dataset",
    "DatasetWriter",
    "dataset_is_complete",
    "dataset_is_partial",
    "load_dataset_metadata",
    "save_dataset_metadata",
    "session_config_from_metadata",
    "snapshot_dataset_files",
    "LoadedDataPoint",
    "LoadedDataset",
    "iter_released_points",
    "load_released_dataset",
    "DatasetSummary",
    "IITMBandersnatchDataset",
    "SummaryAccumulator",
    "ShardedDataset",
    "ShardSlice",
    "ShardSummary",
    "discover_shard_directories",
    "generate_shard_subset",
    "generate_sharded_dataset",
    "iter_shard_training_sessions",
    "load_consistent_shard_metadata",
    "merge_shard_summaries",
    "parse_shard_selection",
    "plan_shards",
    "quarantine_partial_shard",
    "shard_summary_from_metadata",
    "stitch_sharded_dataset",
]
