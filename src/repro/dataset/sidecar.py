"""Columnar per-shard record sidecars (``traces/records.npz``).

A generated shard stores one pcap per viewer, and both heavy consumers of
those pcaps re-derived the same client-record columns from every capture on
every pass: ``repro attack`` parses each pcap's frames, selects the
streaming flow and reassembles the TLS records; ``repro train --sharded``
re-simulates whole sessions just to recover the labelled records the pcaps
deliberately do not carry.  The sidecar packs those columns once, at
generation time, into one ``records.npz`` next to the pcaps — a pass over a
shard becomes a single sequential read instead of thousands of parses (or a
full re-simulation).

The pcaps remain the source of truth.  The sidecar is an acceleration cache
with per-capture staleness detection — the recorded pcap byte size must
match and the pcap must not be newer than the sidecar — and every consumer
falls back to parsing (or re-simulating) transparently when the sidecar is
missing, stale, malformed or of a different format version.  Training folds
are all-or-nothing per shard: a shard folds from its sidecar only when
*every* recorded capture validates, so a half-stale shard can never
half-fold.

Layout: one npz holding per-capture arrays (capture filename, viewer id,
addresses, environment key, pcap byte size, record count), sorted by
capture filename, plus record-aligned arrays (timestamps, wire lengths,
content types, label codes) concatenated in capture order and sliced via
the counts.  Timestamps are the pcap-quantized values attack-time
extraction yields — they are derived by re-parsing the just-written pcap,
not copied from the in-memory trace — and label codes use the
:data:`repro.core.features.LABEL_BY_CODE` encoding, aligned positionally
against the annotated in-memory extraction.  Writing is deterministic byte
for byte (sorted captures, sorted archive entries, fixed dtypes), so
sidecars survive the repo's serial-vs-parallel / resumed / stitched
``diff -r`` equivalences like every other dataset artefact.
"""

from __future__ import annotations

import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.features import (
    CODE_BY_LABEL,
    ClientRecord,
    extract_client_records,
)
from repro.core.fingerprint import FingerprintAccumulator
from repro.dataset.format import TRACES_DIRNAME, load_dataset_metadata
from repro.exceptions import DatasetError, ReproError
from repro.net.capture import CapturedTrace

SIDECAR_FILENAME = "records.npz"
SIDECAR_FORMAT_VERSION = 1

_ARRAY_KEYS = (
    "format_version",
    "captures",
    "viewer_ids",
    "client_ips",
    "server_ips",
    "environments",
    "pcap_sizes",
    "record_counts",
    "timestamps",
    "wire_lengths",
    "content_types",
    "label_codes",
)


@dataclass(frozen=True)
class SidecarEntry:
    """One capture's columns, staged for :class:`SidecarWriter`."""

    capture: str
    viewer_id: str
    client_ip: str
    server_ip: str
    environment: str
    pcap_size: int
    timestamps: np.ndarray
    wire_lengths: np.ndarray
    content_types: np.ndarray
    label_codes: np.ndarray


def sidecar_entry_for(
    pcap_path: str | Path,
    trace: CapturedTrace,
    viewer_id: str,
    environment: str,
) -> SidecarEntry | None:
    """Build one capture's sidecar columns right after its pcap is written.

    The record columns are re-derived *from the just-written pcap* — exactly
    the extraction the attack performs later, quantized timestamps and all —
    while the ground-truth label codes come from the annotated in-memory
    ``trace``, aligned by position (both extractions walk the same
    reassembled TLS stream).  Returns ``None`` — which disables the sidecar
    for the whole shard — rather than ever persisting columns the pcap does
    not back: on any extraction failure or the slightest misalignment the
    pcaps alone remain authoritative.
    """
    pcap_path = Path(pcap_path)
    try:
        replayed = CapturedTrace.from_pcap(
            pcap_path, client_ip=trace.client_ip, server_ip=trace.server_ip
        )
        observed = extract_client_records(replayed, server_ip=trace.server_ip)
        labelled = extract_client_records(trace, server_ip=trace.server_ip)
    except ReproError:
        return None
    if len(observed) != len(labelled):
        return None
    if any(
        recorded.wire_length != annotated.wire_length
        for recorded, annotated in zip(observed, labelled)
    ):
        return None
    return SidecarEntry(
        capture=pcap_path.name,
        viewer_id=viewer_id,
        client_ip=trace.client_ip,
        server_ip=trace.server_ip,
        environment=environment,
        pcap_size=pcap_path.stat().st_size,
        timestamps=np.asarray([r.timestamp for r in observed], dtype=np.float64),
        wire_lengths=np.asarray([r.wire_length for r in observed], dtype=np.int64),
        content_types=np.asarray([r.content_type for r in observed], dtype=np.int64),
        label_codes=np.asarray(
            [CODE_BY_LABEL[r.label] for r in labelled], dtype=np.int64
        ),
    )


class SidecarWriter:
    """Accumulates per-capture entries during a shard write; emits the npz.

    One failed entry disables the whole shard's sidecar (see
    :func:`sidecar_entry_for`): a partial sidecar would be
    indistinguishable from a stale one at read time.
    """

    def __init__(self) -> None:
        self._entries: list[SidecarEntry] = []
        self._disabled = False

    @property
    def enabled(self) -> bool:
        """Whether this shard will still get a sidecar."""
        return not self._disabled

    def disable(self) -> None:
        """Give up on the sidecar for this shard (pcaps stay authoritative)."""
        self._disabled = True
        self._entries.clear()

    def add(self, entry: SidecarEntry | None) -> None:
        """Stage one capture's columns; ``None`` disables the sidecar."""
        if self._disabled:
            return
        if entry is None:
            self.disable()
            return
        self._entries.append(entry)

    def write(self, traces_directory: str | Path) -> Path | None:
        """Write ``records.npz``; returns its path, or ``None`` if disabled.

        Captures sort by filename and archive entries by key, so the bytes
        depend only on the captures' contents — never on generation order.
        """
        if self._disabled or not self._entries:
            return None
        entries = sorted(self._entries, key=lambda entry: entry.capture)
        arrays: dict[str, np.ndarray] = {
            "format_version": np.asarray([SIDECAR_FORMAT_VERSION], dtype=np.int64),
            "captures": np.asarray([entry.capture for entry in entries]),
            "viewer_ids": np.asarray([entry.viewer_id for entry in entries]),
            "client_ips": np.asarray([entry.client_ip for entry in entries]),
            "server_ips": np.asarray([entry.server_ip for entry in entries]),
            "environments": np.asarray([entry.environment for entry in entries]),
            "pcap_sizes": np.asarray(
                [entry.pcap_size for entry in entries], dtype=np.int64
            ),
            "record_counts": np.asarray(
                [entry.wire_lengths.size for entry in entries], dtype=np.int64
            ),
            "timestamps": np.concatenate([entry.timestamps for entry in entries]),
            "wire_lengths": np.concatenate([entry.wire_lengths for entry in entries]),
            "content_types": np.concatenate(
                [entry.content_types for entry in entries]
            ),
            "label_codes": np.concatenate([entry.label_codes for entry in entries]),
        }
        path = Path(traces_directory) / SIDECAR_FILENAME
        with open(path, "wb") as handle:
            np.savez(handle, **{key: arrays[key] for key in sorted(arrays)})
        return path


@dataclass(frozen=True)
class CaptureRecords:
    """One capture's columns, sliced out of a shard sidecar."""

    viewer_id: str
    client_ip: str
    server_ip: str
    environment: str
    timestamps: np.ndarray
    wire_lengths: np.ndarray
    content_types: np.ndarray
    label_codes: np.ndarray

    @property
    def record_count(self) -> int:
        """Records this capture contributed."""
        return int(self.wire_lengths.size)

    def client_records(self) -> tuple[ClientRecord, ...]:
        """Rebuild the unlabelled records attack-time extraction yields."""
        return tuple(
            ClientRecord(
                timestamp=timestamp,
                wire_length=wire_length,
                content_type=content_type,
            )
            for timestamp, wire_length, content_type in zip(
                self.timestamps.tolist(),
                self.wire_lengths.tolist(),
                self.content_types.tolist(),
            )
        )


class ShardSidecar:
    """Reader over one ``traces/records.npz`` with per-capture staleness checks."""

    def __init__(self, path: Path, mtime_ns: int, arrays: dict[str, np.ndarray]) -> None:
        self._path = path
        self._mtime_ns = mtime_ns
        self._arrays = arrays
        self._index = {
            str(name): position
            for position, name in enumerate(arrays["captures"].tolist())
        }
        counts = arrays["record_counts"]
        self._offsets = np.concatenate(([0], np.cumsum(counts)))

    @property
    def path(self) -> Path:
        """Where the sidecar file lives."""
        return self._path

    @property
    def capture_count(self) -> int:
        """Captures the sidecar indexes."""
        return len(self._index)

    @classmethod
    def load(cls, traces_directory: str | Path) -> "ShardSidecar | None":
        """Load a shard's sidecar; ``None`` when absent or unusable.

        Unusable covers unreadable files, foreign formats and version or
        consistency mismatches — every such case means "parse the pcaps",
        never an error: the sidecar is a cache, not dataset content.
        """
        path = Path(traces_directory) / SIDECAR_FILENAME
        try:
            stat = path.stat()
            with np.load(path, allow_pickle=False) as archive:
                arrays = {key: archive[key] for key in archive.files}
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            return None
        if any(key not in arrays for key in _ARRAY_KEYS):
            return None
        if arrays["format_version"].tolist() != [SIDECAR_FORMAT_VERSION]:
            return None
        counts = arrays["record_counts"]
        capture_count = int(arrays["captures"].size)
        per_capture = ("viewer_ids", "client_ips", "server_ips", "environments",
                       "pcap_sizes", "record_counts")
        if any(int(arrays[key].size) != capture_count for key in per_capture):
            return None
        total = int(counts.sum()) if counts.size else 0
        per_record = ("timestamps", "wire_lengths", "content_types", "label_codes")
        if any(int(arrays[key].size) != total for key in per_record):
            return None
        return cls(path=path, mtime_ns=stat.st_mtime_ns, arrays=arrays)

    def records_for(self, pcap_path: str | Path) -> CaptureRecords | None:
        """The capture's columns, iff the sidecar is provably fresh for it.

        Fresh means: the capture is indexed, its pcap still has the byte
        size recorded at generation time, and the pcap has not been modified
        since the sidecar was written.  Anything else returns ``None`` and
        the caller re-parses the pcap.
        """
        pcap_path = Path(pcap_path)
        position = self._index.get(pcap_path.name)
        if position is None:
            return None
        try:
            stat = pcap_path.stat()
        except OSError:
            return None
        if stat.st_size != int(self._arrays["pcap_sizes"][position]):
            return None
        if stat.st_mtime_ns > self._mtime_ns:
            return None
        start = int(self._offsets[position])
        stop = int(self._offsets[position + 1])
        return CaptureRecords(
            viewer_id=str(self._arrays["viewer_ids"][position]),
            client_ip=str(self._arrays["client_ips"][position]),
            server_ip=str(self._arrays["server_ips"][position]),
            environment=str(self._arrays["environments"][position]),
            timestamps=self._arrays["timestamps"][start:stop],
            wire_lengths=self._arrays["wire_lengths"][start:stop],
            content_types=self._arrays["content_types"][start:stop],
            label_codes=self._arrays["label_codes"][start:stop],
        )


#: Per-process sidecar cache keyed by traces directory; entries revalidate
#: against the file's (mtime_ns, size) identity, so a rewritten sidecar is
#: reloaded and a deleted one evicted.
_SIDECAR_CACHE: dict[Path, tuple[int, int, "ShardSidecar | None"]] = {}


def load_sidecar_cached(traces_directory: str | Path) -> ShardSidecar | None:
    """Cached :meth:`ShardSidecar.load` (one parse per sidecar per process)."""
    directory = Path(traces_directory)
    path = directory / SIDECAR_FILENAME
    try:
        stat = path.stat()
    except OSError:
        _SIDECAR_CACHE.pop(directory, None)
        return None
    stamp = (stat.st_mtime_ns, stat.st_size)
    cached = _SIDECAR_CACHE.get(directory)
    if cached is not None and (cached[0], cached[1]) == stamp:
        return cached[2]
    sidecar = ShardSidecar.load(directory)
    _SIDECAR_CACHE[directory] = (stamp[0], stamp[1], sidecar)
    return sidecar


def capture_records_for(pcap_path: str | Path) -> CaptureRecords | None:
    """Sidecar columns for one capture, if its directory has a fresh sidecar."""
    pcap_path = Path(pcap_path)
    sidecar = load_sidecar_cached(pcap_path.parent)
    if sidecar is None:
        return None
    return sidecar.records_for(pcap_path)


def fold_shard_sidecar(
    shard_directory: str | Path, accumulator: FingerprintAccumulator
) -> int | None:
    """Fold one shard's training records straight from its sidecar.

    Returns the folded record count, or ``None`` — having folded *nothing* —
    when the shard has no usable sidecar, the sidecar is stale for any
    capture, or it does not cover exactly the shard's recorded captures; the
    caller then re-simulates the shard.  Validation runs over every capture
    before the first fold, so a half-stale shard never half-folds and the
    accumulator state (hence the finalised library) is identical to the
    re-simulation path's.
    """
    shard_directory = Path(shard_directory)
    sidecar = load_sidecar_cached(shard_directory / TRACES_DIRNAME)
    if sidecar is None:
        return None
    try:
        metadata = load_dataset_metadata(shard_directory)
    except DatasetError:
        return None
    captures: list[CaptureRecords] = []
    for entry in metadata["entries"]:
        trace_file = entry.get("trace_file")
        if trace_file is None:
            return None
        records = sidecar.records_for(shard_directory / str(trace_file))
        if records is None:
            return None
        captures.append(records)
    if len(captures) != sidecar.capture_count:
        # The sidecar indexes captures the metadata does not record — it
        # belongs to some other state of this shard.
        return None
    folded = 0
    for records in captures:
        accumulator.observe_lengths(
            records.environment, records.wire_lengths, records.label_codes
        )
        folded += records.record_count
    return folded
