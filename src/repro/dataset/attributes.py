"""Table I: the attribute space of the IITM-Bandersnatch dataset.

The table has two blocks — operational conditions and behavioural
attributes — each a small categorical domain.  This module is the single
source of truth for those domains; the population generator samples from
them and the Table I reproduction prints them back.
"""

from __future__ import annotations

from repro.client.profiles import (
    BROWSERS,
    CONNECTION_TYPES,
    OPERATING_SYSTEMS,
    PLATFORMS,
    TRAFFIC_CONDITIONS,
)
from repro.client.viewer import AGE_GROUPS, GENDERS, POLITICAL_ALIGNMENTS, STATES_OF_MIND

#: Operational block of Table I: attribute -> allowed values.
OPERATIONAL_ATTRIBUTES: dict[str, tuple[str, ...]] = {
    "Operating System": OPERATING_SYSTEMS,
    "Platform": PLATFORMS,
    "Traffic Conditions": TRAFFIC_CONDITIONS,
    "Connection Type": CONNECTION_TYPES,
    "Browser": BROWSERS,
}

#: Behavioural block of Table I: attribute -> allowed values.
BEHAVIORAL_ATTRIBUTES: dict[str, tuple[str, ...]] = {
    "Age-group": AGE_GROUPS,
    "Gender": GENDERS,
    "Political Alignment": POLITICAL_ALIGNMENTS,
    "State of Mind": STATES_OF_MIND,
}

#: Display names matching the paper's Table I wording, for the reproduction
#: report (the library-internal identifiers are lowercase).
_PAPER_VALUE_NAMES: dict[str, str] = {
    "windows": "Windows",
    "linux": "Linux",
    "mac": "Mac",
    "desktop": "Desktop",
    "laptop": "Laptop",
    "morning": "Morning",
    "noon": "Noon",
    "night": "Night",
    "wired": "Wired",
    "wireless": "Wireless",
    "chrome": "Google-chrome",
    "firefox": "Firefox",
    "male": "Male",
    "female": "Female",
    "undisclosed": "Undisclosed",
    "liberal": "Liberal",
    "centrist": "Centrist",
    "communist": "Communist",
    "happy": "Happy",
    "stressed": "Stressed",
    "sad": "Sad",
}


def paper_value_name(value: str) -> str:
    """Map an internal attribute value to the paper's Table I spelling."""
    return _PAPER_VALUE_NAMES.get(value, value)


def table1_rows() -> list[dict[str, str]]:
    """Rows of Table I: (conditions block, attribute, value list)."""
    rows: list[dict[str, str]] = []
    for attribute, values in OPERATIONAL_ATTRIBUTES.items():
        rows.append(
            {
                "conditions": "Operational",
                "attribute": attribute,
                "values": ", ".join(paper_value_name(value) for value in values),
            }
        )
    for attribute, values in BEHAVIORAL_ATTRIBUTES.items():
        rows.append(
            {
                "conditions": "Behavioral",
                "attribute": attribute,
                "values": ", ".join(paper_value_name(value) for value in values),
            }
        )
    return rows
