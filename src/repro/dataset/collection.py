"""The collection pipeline: one simulated viewing session per viewer.

Collection is expressed through the batch engine: each viewer becomes one
:class:`~repro.engine.plan.SessionPlan` (seeded via
:func:`repro.utils.rng.derive_seed`, so plans are order-independent) and the
whole population is submitted as one batch.  ``workers`` selects serial or
process-pool execution; both produce byte-identical data points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.dataset.population import Viewer
from repro.engine.executor import BatchExecutor, ProgressCallback
from repro.engine.plan import SessionPlan
from repro.exceptions import DatasetError
from repro.media.manifest import MediaManifest, build_manifest
from repro.narrative.bandersnatch import build_bandersnatch_script
from repro.narrative.graph import StoryGraph
from repro.streaming.session import SessionConfig, SessionResult
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class DataPoint:
    """One dataset entry: a viewer, their session and the ground truth."""

    viewer: Viewer
    session: SessionResult

    @property
    def ground_truth_choices(self) -> tuple[bool, ...]:
        """Default/non-default pattern of the viewer's actual choices."""
        return self.session.path.default_pattern

    @property
    def selected_labels(self) -> tuple[str, ...]:
        """On-screen labels the viewer actually picked, in order."""
        return self.session.path.selected_labels()

    def metadata(self) -> dict[str, object]:
        """JSON-friendly metadata (everything except the raw packets)."""
        return {
            "viewer": self.viewer.as_dict(),
            "session_id": self.session.session_id,
            "choices": [
                {
                    "question_id": record.question_id,
                    "selected_label": record.selected_label,
                    "took_default": record.took_default,
                    "decision_time_seconds": record.decision_time_seconds,
                }
                for record in self.session.path.choices
            ],
            "segments": list(self.session.path.segment_ids),
            "packet_count": self.session.trace.packet_count,
            "capture_duration_seconds": self.session.trace.duration_seconds,
        }


def default_study_script() -> StoryGraph:
    """The script used for dataset collection.

    Structurally identical to the full Bandersnatch-like script (ten binary
    choice points, common trunk, branch/rejoin), but with shorter segments so
    that generating a 100-viewer dataset stays laptop-scale.  The record-level
    side-channel is completely unaffected by segment duration.
    """
    return build_bandersnatch_script(
        trunk_segment_minutes=1.5,
        branch_segment_minutes=1.0,
        ending_minutes=2.0,
    )


def collection_plan(
    viewer: Viewer,
    graph: StoryGraph,
    manifest: MediaManifest | None,
    dataset_seed: int,
    config: SessionConfig | None = None,
) -> SessionPlan:
    """The session plan for one viewer's collection run.

    The seed derives from the dataset seed and the viewer id alone, so the
    plan — and therefore the session — is independent of collection order
    and of how the batch is scheduled across workers.
    """
    return SessionPlan(
        graph=graph,
        condition=viewer.condition,
        behavior=viewer.behavior,
        seed=derive_seed(dataset_seed, "collection", viewer.viewer_id),
        config=config,
        manifest=manifest,
        session_id=viewer.viewer_id,
    )


def build_collection_plans(
    viewers: Sequence[Viewer],
    dataset_seed: int = 0,
    graph: StoryGraph | None = None,
    config: SessionConfig | None = None,
) -> list[SessionPlan]:
    """Describe the whole population's collection runs as session plans."""
    if not viewers:
        raise DatasetError("cannot collect a dataset for an empty population")
    graph = graph or default_study_script()
    config = config or SessionConfig()
    manifest = build_manifest(
        graph,
        content_seed=config.content_seed,
        chunk_duration_seconds=config.chunk_duration_seconds,
    )
    return [
        collection_plan(viewer, graph, manifest, dataset_seed, config)
        for viewer in viewers
    ]


def collect_datapoint(
    viewer: Viewer,
    graph: StoryGraph,
    manifest: MediaManifest,
    dataset_seed: int,
    config: SessionConfig | None = None,
) -> DataPoint:
    """Run the viewing session for one viewer and package the data point."""
    plan = collection_plan(viewer, graph, manifest, dataset_seed, config)
    return DataPoint(viewer=viewer, session=plan.execute())


def collect_dataset(
    viewers: Sequence[Viewer],
    dataset_seed: int = 0,
    graph: StoryGraph | None = None,
    config: SessionConfig | None = None,
    progress: ProgressCallback | None = None,
    workers: int | None = None,
    executor: BatchExecutor | None = None,
) -> list[DataPoint]:
    """Collect one data point per viewer.

    Parameters
    ----------
    viewers:
        The population to collect from.
    dataset_seed:
        Root seed; every viewer's session seed derives from it.
    graph:
        The interactive script to stream; defaults to
        :func:`default_study_script`.
    config:
        Session configuration shared by every collection run.
    progress:
        Optional callback ``(completed, total)`` invoked after each viewer.
    workers:
        Engine worker count (``None``/``1`` serial, ``0`` all cores,
        ``N > 1`` a pool of ``N`` processes).  Serial and parallel runs
        produce byte-identical data points.
    executor:
        Pre-built :class:`BatchExecutor`; overrides ``workers``.
    """
    plans = build_collection_plans(
        viewers, dataset_seed=dataset_seed, graph=graph, config=config
    )
    executor = executor or BatchExecutor(workers)
    sessions = executor.execute(plans, progress=progress)
    return [
        DataPoint(viewer=viewer, session=session)
        for viewer, session in zip(viewers, sessions)
    ]


def iter_collect_dataset(
    viewers: Sequence[Viewer],
    dataset_seed: int = 0,
    graph: StoryGraph | None = None,
    config: SessionConfig | None = None,
    progress: ProgressCallback | None = None,
    workers: int | None = None,
    executor: BatchExecutor | None = None,
    window: int | None = None,
) -> Iterator[DataPoint]:
    """Streaming variant of :func:`collect_dataset`.

    Yields data points one at a time, in viewer order, through
    :meth:`repro.engine.BatchExecutor.iexecute`: at most a bounded window of
    sessions is in flight (or, on the serial path, exactly one), so peak
    memory is independent of the population size.  Every session is seeded
    via :func:`repro.utils.rng.derive_seed` from the dataset seed and the
    viewer id, so the yielded points are byte-identical to the ones
    :func:`collect_dataset` returns for the same arguments.
    """
    plans = build_collection_plans(
        viewers, dataset_seed=dataset_seed, graph=graph, config=config
    )
    executor = executor or BatchExecutor(workers)
    sessions = executor.iexecute(plans, progress=progress, window=window)
    for viewer, session in zip(viewers, sessions):
        yield DataPoint(viewer=viewer, session=session)
