"""Sharded dataset generation: million-viewer populations in bounded memory.

The paper evaluates over a 100-viewer dataset that fits comfortably in
memory; the roadmap's target populations do not.  This module splits a
population into deterministic contiguous **shards**, streams each shard to
disk as an independent dataset directory (``shard-000/metadata.json`` plus
its ``traces/``, exactly the standalone layout :mod:`repro.dataset.format`
describes), and merges the per-shard summaries into one population summary.

Shard membership is a pure function of ``(viewer_count, shard_count)`` and
never touches a session's bytes: every session seed derives from the dataset
seed and the viewer id alone (:func:`repro.utils.rng.derive_seed` in
:func:`repro.dataset.collection.collection_plan`), so regenerating the same
population with a different shard count — or no sharding at all — produces
byte-identical per-viewer pcaps.  That equivalence is asserted by the shard
tests and the ``bench_shard_scaling`` benchmark.

Peak memory during generation is O(shard), not O(population): each shard is
generated through :func:`repro.dataset.collection.iter_collect_dataset` and
persisted point by point, and only the merged summary statistics survive the
shard's lifetime.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Mapping, Sequence

from repro.dataset.collection import default_study_script, iter_collect_dataset
from repro.dataset.format import DatasetWriter, load_dataset_metadata
from repro.dataset.iitm import DatasetSummary, SummaryAccumulator
from repro.dataset.loader import LoadedDataPoint, iter_released_points
from repro.dataset.population import generate_population
from repro.exceptions import DatasetError
from repro.narrative.graph import StoryGraph
from repro.streaming.session import SessionConfig

SHARDS_MANIFEST_FILENAME = "shards.json"
SHARDS_FORMAT_VERSION = 1


def shard_dirname(index: int) -> str:
    """Canonical directory name of shard ``index`` (``shard-000`` style)."""
    if index < 0:
        raise DatasetError(f"shard index must be non-negative, got {index}")
    return f"shard-{index:03d}"


@dataclass(frozen=True)
class ShardSlice:
    """One shard's slice of the population: viewers ``[start, stop)``."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise DatasetError(f"shard index must be non-negative, got {self.index}")
        if not 0 <= self.start < self.stop:
            raise DatasetError(f"invalid shard slice [{self.start}, {self.stop})")

    @property
    def viewer_count(self) -> int:
        """Number of viewers in the shard."""
        return self.stop - self.start

    @property
    def dirname(self) -> str:
        """The shard's on-disk directory name."""
        return shard_dirname(self.index)


def plan_shards(viewer_count: int, shard_count: int) -> list[ShardSlice]:
    """Split a population into balanced, contiguous, deterministic shards.

    Shard sizes differ by at most one viewer.  Membership depends only on
    ``(viewer_count, shard_count)``; session seeds derive from viewer ids,
    so the split has no effect on any session's bytes.
    """
    if viewer_count <= 0:
        raise DatasetError(f"population size must be positive, got {viewer_count}")
    if shard_count <= 0:
        raise DatasetError(f"shard count must be positive, got {shard_count}")
    if shard_count > viewer_count:
        raise DatasetError(
            f"cannot split {viewer_count} viewers into {shard_count} shards"
        )
    size, remainder = divmod(viewer_count, shard_count)
    slices: list[ShardSlice] = []
    start = 0
    for index in range(shard_count):
        stop = start + size + (1 if index < remainder else 0)
        slices.append(ShardSlice(index=index, start=start, stop=stop))
        start = stop
    return slices


@dataclass(frozen=True)
class ShardSummary:
    """One shard's aggregate statistics, as stored in the shards manifest."""

    index: int
    directory: str
    viewer_count: int
    total_choices: int
    non_default_choices: int
    total_packets: int
    condition_keys: tuple[str, ...]

    def to_dataset_summary(self) -> DatasetSummary:
        """This shard viewed as a standalone dataset summary."""
        return DatasetSummary(
            viewer_count=self.viewer_count,
            total_choices=self.total_choices,
            non_default_choices=self.non_default_choices,
            distinct_conditions=len(self.condition_keys),
            total_packets=self.total_packets,
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form for the shards manifest."""
        return {
            "index": self.index,
            "directory": self.directory,
            "viewer_count": self.viewer_count,
            "total_choices": self.total_choices,
            "non_default_choices": self.non_default_choices,
            "total_packets": self.total_packets,
            "condition_keys": list(self.condition_keys),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ShardSummary":
        """Inverse of :meth:`as_dict`."""
        return cls(
            index=int(data["index"]),  # type: ignore[arg-type]
            directory=str(data["directory"]),
            viewer_count=int(data["viewer_count"]),  # type: ignore[arg-type]
            total_choices=int(data["total_choices"]),  # type: ignore[arg-type]
            non_default_choices=int(data["non_default_choices"]),  # type: ignore[arg-type]
            total_packets=int(data["total_packets"]),  # type: ignore[arg-type]
            condition_keys=tuple(str(key) for key in data["condition_keys"]),  # type: ignore[union-attr]
        )


def merge_shard_summaries(summaries: Sequence[ShardSummary]) -> DatasetSummary:
    """Merge per-shard summaries into one population summary.

    Counts add; distinct conditions are the union of the shards' condition
    keys (a condition present in two shards counts once).  Merging the
    shards of a population yields exactly the summary the unsharded
    in-memory dataset reports.
    """
    if not summaries:
        raise DatasetError("no shard summaries to merge")
    condition_keys: set[str] = set()
    for summary in summaries:
        condition_keys.update(summary.condition_keys)
    return DatasetSummary(
        viewer_count=sum(summary.viewer_count for summary in summaries),
        total_choices=sum(summary.total_choices for summary in summaries),
        non_default_choices=sum(summary.non_default_choices for summary in summaries),
        distinct_conditions=len(condition_keys),
        total_packets=sum(summary.total_packets for summary in summaries),
    )


class ShardedDataset:
    """A sharded on-disk dataset: a manifest plus per-shard directories."""

    def __init__(
        self,
        directory: str | Path,
        name: str,
        seed: int,
        viewer_count: int,
        shard_summaries: Sequence[ShardSummary],
    ) -> None:
        if not shard_summaries:
            raise DatasetError("a sharded dataset needs at least one shard")
        self._directory = Path(directory)
        self._name = name
        self._seed = seed
        self._viewer_count = viewer_count
        self._shard_summaries = tuple(shard_summaries)

    @property
    def directory(self) -> Path:
        """The dataset's root directory."""
        return self._directory

    @property
    def name(self) -> str:
        """The dataset's name."""
        return self._name

    @property
    def seed(self) -> int:
        """The root seed the population was generated from."""
        return self._seed

    @property
    def viewer_count(self) -> int:
        """Total viewers across all shards."""
        return self._viewer_count

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return len(self._shard_summaries)

    @property
    def shard_summaries(self) -> tuple[ShardSummary, ...]:
        """Per-shard aggregate statistics, in shard order."""
        return self._shard_summaries

    def shard_directories(self) -> list[Path]:
        """Absolute paths of the shard directories, in shard order."""
        return [
            self._directory / summary.directory for summary in self._shard_summaries
        ]

    def summary(self) -> DatasetSummary:
        """The merged population summary."""
        return merge_shard_summaries(self._shard_summaries)

    def iter_points(self) -> Iterator[LoadedDataPoint]:
        """Iterate every viewer's loaded data point, lazily, in viewer order.

        Shards are opened one at a time and each point is parsed from its
        pcap on demand, so iterating a population never holds more than one
        point (plus one shard's metadata index) in memory.
        """
        for shard_directory in self.shard_directories():
            yield from iter_released_points(shard_directory)

    def __iter__(self) -> Iterator[LoadedDataPoint]:
        return self.iter_points()

    def __len__(self) -> int:
        return self._viewer_count

    @property
    def manifest_path(self) -> Path:
        """Where the shards manifest lives."""
        return self._directory / SHARDS_MANIFEST_FILENAME

    def save_manifest(self) -> Path:
        """Write the shards manifest; returns its path."""
        manifest = {
            "name": self._name,
            "format_version": SHARDS_FORMAT_VERSION,
            "seed": self._seed,
            "viewer_count": self._viewer_count,
            "shard_count": self.shard_count,
            "shards": [summary.as_dict() for summary in self._shard_summaries],
        }
        self.manifest_path.write_text(
            json.dumps(manifest, indent=2), encoding="utf-8"
        )
        return self.manifest_path

    @classmethod
    def load(cls, directory: str | Path) -> "ShardedDataset":
        """Load a sharded dataset from its manifest.

        Only the manifest and each shard's metadata index are validated up
        front; pcaps are parsed lazily by :meth:`iter_points`.
        """
        directory = Path(directory)
        manifest_path = directory / SHARDS_MANIFEST_FILENAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise DatasetError(f"cannot load shards manifest: {error}") from error
        for key in ("name", "format_version", "seed", "viewer_count", "shards"):
            if key not in manifest:
                raise DatasetError(f"shards manifest is missing the {key!r} field")
        if manifest["format_version"] != SHARDS_FORMAT_VERSION:
            raise DatasetError(
                f"unsupported shards manifest version {manifest['format_version']}"
            )
        summaries = [ShardSummary.from_dict(entry) for entry in manifest["shards"]]
        if sum(summary.viewer_count for summary in summaries) != int(
            manifest["viewer_count"]
        ):
            raise DatasetError(
                "shards manifest viewer count does not match its shards"
            )
        for summary in summaries:
            shard_directory = directory / summary.directory
            metadata = load_dataset_metadata(shard_directory)
            if metadata["viewer_count"] != summary.viewer_count:
                raise DatasetError(
                    f"shard {summary.directory} holds {metadata['viewer_count']} "
                    f"viewers but the manifest records {summary.viewer_count}"
                )
        return cls(
            directory=directory,
            name=str(manifest["name"]),
            seed=int(manifest["seed"]),
            viewer_count=int(manifest["viewer_count"]),
            shard_summaries=summaries,
        )


def generate_sharded_dataset(
    directory: str | Path,
    viewer_count: int,
    shard_count: int,
    seed: int = 0,
    graph: StoryGraph | None = None,
    config: SessionConfig | None = None,
    workers: int | None = None,
    write_pcaps: bool = True,
    dataset_name: str = "iitm-bandersnatch-synthetic",
    progress: Callable[[int, int], None] | None = None,
) -> ShardedDataset:
    """Generate a population as shards, streaming each shard to disk.

    Only the viewer attributes of the whole population (cheap: a few strings
    per viewer) plus one in-flight window of sessions exist in memory at any
    time; sessions are persisted through :class:`DatasetWriter` as the engine
    completes them.  ``progress`` is invoked as ``(done_viewers,
    viewer_count)`` across the whole population.

    Returns the :class:`ShardedDataset`, with its manifest already written.
    """
    directory = Path(directory)
    graph = graph or default_study_script()
    slices = plan_shards(viewer_count, shard_count)
    viewers = generate_population(viewer_count, seed=seed)
    directory.mkdir(parents=True, exist_ok=True)
    shard_summaries: list[ShardSummary] = []
    done = 0
    for shard_slice in slices:
        accumulator = SummaryAccumulator()
        with DatasetWriter(
            directory / shard_slice.dirname,
            dataset_name=dataset_name,
            write_pcaps=write_pcaps,
            seed=seed,
        ) as writer:
            for point in iter_collect_dataset(
                viewers[shard_slice.start : shard_slice.stop],
                dataset_seed=seed,
                graph=graph,
                config=config,
                workers=workers,
            ):
                writer.add(point)
                accumulator.add(point)
                done += 1
                if progress is not None:
                    progress(done, viewer_count)
        summary = accumulator.summary()
        shard_summaries.append(
            ShardSummary(
                index=shard_slice.index,
                directory=shard_slice.dirname,
                viewer_count=summary.viewer_count,
                total_choices=summary.total_choices,
                non_default_choices=summary.non_default_choices,
                total_packets=summary.total_packets,
                condition_keys=accumulator.condition_keys,
            )
        )
    dataset = ShardedDataset(
        directory=directory,
        name=dataset_name,
        seed=seed,
        viewer_count=viewer_count,
        shard_summaries=shard_summaries,
    )
    dataset.save_manifest()
    return dataset
