"""Sharded dataset generation: million-viewer populations in bounded memory.

The paper evaluates over a 100-viewer dataset that fits comfortably in
memory; the roadmap's target populations do not.  This module splits a
population into deterministic contiguous **shards**, streams each shard to
disk as an independent dataset directory (``shard-000/metadata.json`` plus
its ``traces/``, exactly the standalone layout :mod:`repro.dataset.format`
describes), and merges the per-shard summaries into one population summary.

Shard membership is a pure function of ``(viewer_count, shard_count)`` and
never touches a session's bytes: every session seed derives from the dataset
seed and the viewer id alone (:func:`repro.utils.rng.derive_seed` in
:func:`repro.dataset.collection.collection_plan`), so regenerating the same
population with a different shard count — or no sharding at all — produces
byte-identical per-viewer pcaps.  That equivalence is asserted by the shard
tests and the ``bench_shard_scaling`` benchmark.

Peak memory during generation is O(shard), not O(population): each shard is
generated through :func:`repro.dataset.collection.iter_collect_dataset` and
persisted point by point, and only the merged summary statistics survive the
shard's lifetime.

Generation is **resumable**: because every shard is finalised atomically
(:class:`repro.dataset.format.DatasetWriter` keeps an ``.inprogress`` marker
until the metadata index is renamed into place), a crashed run leaves each
shard either complete or detectably partial.  ``resume=True`` skips complete
shards (their summaries are recomputed from the metadata index alone — no
pcap is re-read), quarantines partial ones aside, and regenerates only what
is missing; the resumed output is byte-identical to an uninterrupted run
because every session's bytes derive from ``(dataset seed, viewer id)``
alone.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterator, Mapping, Sequence

from repro.client.profiles import OperationalCondition
from repro.dataset.collection import default_study_script, iter_collect_dataset
from repro.dataset.format import (
    DatasetWriter,
    METADATA_FILENAME,
    dataset_is_complete,
    dataset_is_partial,
    load_dataset_metadata,
    session_config_from_metadata,
)
from repro.dataset.iitm import DatasetSummary, SummaryAccumulator
from repro.dataset.loader import LoadedDataPoint, iter_released_points
from repro.dataset.population import (
    Viewer,
    generate_population,
    viewers_from_metadata_entries,
)
from repro.exceptions import DatasetError
from repro.narrative.graph import StoryGraph
from repro.streaming.session import SessionConfig, SessionResult

SHARDS_MANIFEST_FILENAME = "shards.json"
SHARDS_FORMAT_VERSION = 1

#: Shard states reported to ``generate_sharded_dataset``'s status callback.
SHARD_GENERATED = "generated"
SHARD_SKIPPED = "skipped"
SHARD_QUARANTINED = "quarantined"


def shard_dirname(index: int) -> str:
    """Canonical directory name of shard ``index`` (``shard-000`` style)."""
    if index < 0:
        raise DatasetError(f"shard index must be non-negative, got {index}")
    return f"shard-{index:03d}"


@dataclass(frozen=True)
class ShardSlice:
    """One shard's slice of the population: viewers ``[start, stop)``."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise DatasetError(f"shard index must be non-negative, got {self.index}")
        if not 0 <= self.start < self.stop:
            raise DatasetError(f"invalid shard slice [{self.start}, {self.stop})")

    @property
    def viewer_count(self) -> int:
        """Number of viewers in the shard."""
        return self.stop - self.start

    @property
    def dirname(self) -> str:
        """The shard's on-disk directory name."""
        return shard_dirname(self.index)


def plan_shards(viewer_count: int, shard_count: int) -> list[ShardSlice]:
    """Split a population into balanced, contiguous, deterministic shards.

    Shard sizes differ by at most one viewer.  Membership depends only on
    ``(viewer_count, shard_count)``; session seeds derive from viewer ids,
    so the split has no effect on any session's bytes.
    """
    if viewer_count <= 0:
        raise DatasetError(f"population size must be positive, got {viewer_count}")
    if shard_count <= 0:
        raise DatasetError(f"shard count must be positive, got {shard_count}")
    if shard_count > viewer_count:
        raise DatasetError(
            f"cannot split {viewer_count} viewers into {shard_count} shards"
        )
    size, remainder = divmod(viewer_count, shard_count)
    slices: list[ShardSlice] = []
    start = 0
    for index in range(shard_count):
        stop = start + size + (1 if index < remainder else 0)
        slices.append(ShardSlice(index=index, start=start, stop=stop))
        start = stop
    return slices


@dataclass(frozen=True)
class ShardSummary:
    """One shard's aggregate statistics, as stored in the shards manifest."""

    index: int
    directory: str
    viewer_count: int
    total_choices: int
    non_default_choices: int
    total_packets: int
    condition_keys: tuple[str, ...]

    def to_dataset_summary(self) -> DatasetSummary:
        """This shard viewed as a standalone dataset summary."""
        return DatasetSummary(
            viewer_count=self.viewer_count,
            total_choices=self.total_choices,
            non_default_choices=self.non_default_choices,
            distinct_conditions=len(self.condition_keys),
            total_packets=self.total_packets,
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form for the shards manifest."""
        return {
            "index": self.index,
            "directory": self.directory,
            "viewer_count": self.viewer_count,
            "total_choices": self.total_choices,
            "non_default_choices": self.non_default_choices,
            "total_packets": self.total_packets,
            "condition_keys": list(self.condition_keys),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ShardSummary":
        """Inverse of :meth:`as_dict`."""
        return cls(
            index=int(data["index"]),  # type: ignore[arg-type]
            directory=str(data["directory"]),
            viewer_count=int(data["viewer_count"]),  # type: ignore[arg-type]
            total_choices=int(data["total_choices"]),  # type: ignore[arg-type]
            non_default_choices=int(data["non_default_choices"]),  # type: ignore[arg-type]
            total_packets=int(data["total_packets"]),  # type: ignore[arg-type]
            condition_keys=tuple(str(key) for key in data["condition_keys"]),  # type: ignore[union-attr]
        )


def merge_shard_summaries(summaries: Sequence[ShardSummary]) -> DatasetSummary:
    """Merge per-shard summaries into one population summary.

    Counts add; distinct conditions are the union of the shards' condition
    keys (a condition present in two shards counts once).  Merging the
    shards of a population yields exactly the summary the unsharded
    in-memory dataset reports.
    """
    if not summaries:
        raise DatasetError("no shard summaries to merge")
    condition_keys: set[str] = set()
    for summary in summaries:
        condition_keys.update(summary.condition_keys)
    return DatasetSummary(
        viewer_count=sum(summary.viewer_count for summary in summaries),
        total_choices=sum(summary.total_choices for summary in summaries),
        non_default_choices=sum(summary.non_default_choices for summary in summaries),
        distinct_conditions=len(condition_keys),
        total_packets=sum(summary.total_packets for summary in summaries),
    )


def shard_summary_from_metadata(
    directory: str | Path,
    index: int,
    metadata: Mapping[str, object] | None = None,
) -> ShardSummary:
    """Rebuild a completed shard's summary from its metadata index alone.

    Everything a :class:`ShardSummary` records (choice counts, packet counts,
    condition keys) is present in the per-viewer metadata entries, so a
    resumed run can account for an already-complete shard without re-parsing
    a single pcap.  The result is identical to the summary the original
    generation accumulated while streaming the shard.  ``metadata`` lets a
    caller that already parsed the index pass it in instead of paying the
    load twice.
    """
    directory = Path(directory)
    if metadata is None:
        metadata = load_dataset_metadata(directory)
    total_choices = 0
    non_default_choices = 0
    total_packets = 0
    condition_keys: set[str] = set()
    try:
        for entry in metadata["entries"]:
            choices = entry["choices"]
            total_choices += len(choices)
            non_default_choices += sum(
                1 for choice in choices if not choice["took_default"]
            )
            total_packets += int(entry["packet_count"])
            condition = OperationalCondition.from_dict(entry["viewer"]["condition"])
            condition_keys.add(condition.key)
    except (KeyError, TypeError) as error:
        raise DatasetError(
            f"shard metadata at {directory} is malformed: {error!r}"
        ) from error
    return ShardSummary(
        index=index,
        directory=directory.name,
        viewer_count=int(metadata["viewer_count"]),
        total_choices=total_choices,
        non_default_choices=non_default_choices,
        total_packets=total_packets,
        condition_keys=tuple(sorted(condition_keys)),
    )


def quarantine_partial_shard(shard_directory: str | Path) -> Path:
    """Move a partially-written shard aside; returns its new location.

    The debris is renamed to ``<shard>.quarantined-<n>`` (first free ``n``)
    rather than deleted, so an operator can inspect what an interrupted run
    left behind while the resumed run regenerates the shard from scratch.
    """
    shard_directory = Path(shard_directory)
    if not shard_directory.exists():
        raise DatasetError(f"no shard directory to quarantine at {shard_directory}")
    for attempt in range(1000):
        target = shard_directory.with_name(
            f"{shard_directory.name}.quarantined-{attempt:03d}"
        )
        if not target.exists():
            shard_directory.rename(target)
            return target
    raise DatasetError(
        f"too many quarantined copies of {shard_directory.name}; clean them up"
    )


def iter_shard_training_sessions(
    shard_directory: str | Path,
    graph: StoryGraph | None = None,
    config: SessionConfig | None = None,
    workers: int | None = None,
    viewer_filter: Callable[[Viewer], bool] | None = None,
) -> Iterator[SessionResult]:
    """Lazily re-simulate one shard's labelled calibration sessions.

    The shard's viewers are rebuilt from its metadata entries and their
    sessions replayed from the recorded generation seed through the streaming
    collection path, so the yielded :class:`SessionResult`\\ s carry the
    ground-truth record annotations that training needs while only an engine
    window of sessions is ever alive.

    ``viewer_filter`` selects a subset of the shard's viewers to simulate.
    Every session's seed derives from the dataset seed and the viewer id
    alone, so a filtered run yields sessions byte-identical to the
    corresponding ones of an unfiltered run — callers that only need part of
    a shard (e.g. a calibration split) never pay for the rest.
    """
    shard_directory = Path(shard_directory)
    metadata = load_dataset_metadata(shard_directory)
    if "seed" not in metadata:
        raise DatasetError(
            f"dataset metadata at {shard_directory} does not record its "
            "generation seed, so its labelled sessions cannot be re-simulated"
        )
    graph = graph or default_study_script()
    recorded_fingerprint = metadata.get("graph_fingerprint")
    if recorded_fingerprint is not None and recorded_fingerprint != graph.fingerprint():
        raise DatasetError(
            f"dataset at {shard_directory} was generated with a different "
            "story graph than the one supplied for re-simulation; replayed "
            "sessions would not match the stored traces (pass the "
            "generating graph)"
        )
    viewers = viewers_from_metadata_entries(metadata["entries"], shard_directory)
    if viewer_filter is not None:
        viewers = [viewer for viewer in viewers if viewer_filter(viewer)]
        if not viewers:
            return
    for point in iter_collect_dataset(
        viewers,
        dataset_seed=int(metadata["seed"]),
        graph=graph,
        # The metadata records the generating configuration, so replayed
        # sessions match the stored pcaps byte for byte; an explicit config
        # (or a pre-recording dataset) falls back to the caller's choice.
        config=config or session_config_from_metadata(metadata),
        workers=workers,
    ):
        yield point.session


class ShardedDataset:
    """A sharded on-disk dataset: a manifest plus per-shard directories."""

    def __init__(
        self,
        directory: str | Path,
        name: str,
        seed: int,
        viewer_count: int,
        shard_summaries: Sequence[ShardSummary],
    ) -> None:
        if not shard_summaries:
            raise DatasetError("a sharded dataset needs at least one shard")
        self._directory = Path(directory)
        self._name = name
        self._seed = seed
        self._viewer_count = viewer_count
        self._shard_summaries = tuple(shard_summaries)

    @property
    def directory(self) -> Path:
        """The dataset's root directory."""
        return self._directory

    @property
    def name(self) -> str:
        """The dataset's name."""
        return self._name

    @property
    def seed(self) -> int:
        """The root seed the population was generated from."""
        return self._seed

    @property
    def viewer_count(self) -> int:
        """Total viewers across all shards."""
        return self._viewer_count

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return len(self._shard_summaries)

    @property
    def shard_summaries(self) -> tuple[ShardSummary, ...]:
        """Per-shard aggregate statistics, in shard order."""
        return self._shard_summaries

    def shard_directories(self) -> list[Path]:
        """Absolute paths of the shard directories, in shard order."""
        return [
            self._directory / summary.directory for summary in self._shard_summaries
        ]

    def summary(self) -> DatasetSummary:
        """The merged population summary."""
        return merge_shard_summaries(self._shard_summaries)

    def iter_points(self) -> Iterator[LoadedDataPoint]:
        """Iterate every viewer's loaded data point, lazily, in viewer order.

        Shards are opened one at a time and each point is parsed from its
        pcap on demand, so iterating a population never holds more than one
        point (plus one shard's metadata index) in memory.
        """
        for shard_directory in self.shard_directories():
            yield from iter_released_points(shard_directory)

    def iter_shard_points(self) -> Iterator[Iterator[LoadedDataPoint]]:
        """Iterate the population one shard at a time.

        Yields, per shard, a lazy iterator over that shard's loaded data
        points — the shape :meth:`repro.core.pipeline.WhiteMirrorAttack`'s
        incremental consumers fold over: each shard's points can be processed
        and discarded before the next shard's metadata is even opened.
        """
        for shard_directory in self.shard_directories():
            yield iter_released_points(shard_directory)

    def iter_shard_training_sessions(
        self,
        graph: StoryGraph | None = None,
        config: SessionConfig | None = None,
        workers: int | None = None,
        viewer_filter: Callable[[Viewer], bool] | None = None,
    ) -> Iterator[Iterator[SessionResult]]:
        """Re-simulate the population's labelled sessions, one shard at a time.

        The pcaps on disk carry no ground-truth labels (by design), so
        calibration re-simulates each shard's sessions from its metadata
        entries and the recorded seed — exactly what the researcher who
        generated the dataset can do.  Yields one lazy session iterator per
        shard (``viewer_filter`` restricts which viewers are simulated);
        consumed shard by shard
        (:meth:`repro.core.pipeline.WhiteMirrorAttack.train_incremental`),
        peak memory holds one engine window of sessions, never the
        population.
        """
        for shard_directory in self.shard_directories():
            yield iter_shard_training_sessions(
                shard_directory,
                graph=graph,
                config=config,
                workers=workers,
                viewer_filter=viewer_filter,
            )

    def __iter__(self) -> Iterator[LoadedDataPoint]:
        return self.iter_points()

    def __len__(self) -> int:
        return self._viewer_count

    @property
    def manifest_path(self) -> Path:
        """Where the shards manifest lives."""
        return self._directory / SHARDS_MANIFEST_FILENAME

    def save_manifest(self) -> Path:
        """Write the shards manifest atomically; returns its path.

        Same staging + rename pattern as the per-shard metadata index: a
        reader can observe the manifest's presence or absence, never a
        truncated write.
        """
        manifest = {
            "name": self._name,
            "format_version": SHARDS_FORMAT_VERSION,
            "seed": self._seed,
            "viewer_count": self._viewer_count,
            "shard_count": self.shard_count,
            "shards": [summary.as_dict() for summary in self._shard_summaries],
        }
        staging_path = self.manifest_path.with_name(SHARDS_MANIFEST_FILENAME + ".tmp")
        staging_path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
        os.replace(staging_path, self.manifest_path)
        return self.manifest_path

    @classmethod
    def load(cls, directory: str | Path) -> "ShardedDataset":
        """Load a sharded dataset from its manifest.

        Only the manifest and each shard's metadata index are validated up
        front; pcaps are parsed lazily by :meth:`iter_points`.  Every failure
        mode — a directory that is not a sharded dataset, a manifest with
        missing fields, a shard left incomplete by an interrupted generation
        run — raises a :class:`DatasetError` that says what was found and
        what to do about it, never a bare ``KeyError``/``FileNotFoundError``.
        """
        directory = Path(directory)
        manifest_path = directory / SHARDS_MANIFEST_FILENAME
        if not manifest_path.exists():
            if (directory / METADATA_FILENAME).exists():
                raise DatasetError(
                    f"{directory} is a single (non-sharded) dataset directory: "
                    f"it has a {METADATA_FILENAME} but no {SHARDS_MANIFEST_FILENAME}"
                )
            raise DatasetError(
                f"{directory} is not a sharded dataset: no "
                f"{SHARDS_MANIFEST_FILENAME} manifest found (generate one with "
                "`repro generate-dataset --shards N`)"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise DatasetError(f"cannot load shards manifest: {error}") from error
        if not isinstance(manifest, dict):
            raise DatasetError(
                f"shards manifest at {manifest_path} must be a JSON object, "
                f"got {type(manifest).__name__}"
            )
        for key in ("name", "format_version", "seed", "viewer_count", "shards"):
            if key not in manifest:
                raise DatasetError(f"shards manifest is missing the {key!r} field")
        if manifest["format_version"] != SHARDS_FORMAT_VERSION:
            raise DatasetError(
                f"unsupported shards manifest version {manifest['format_version']}"
            )
        try:
            summaries = [ShardSummary.from_dict(entry) for entry in manifest["shards"]]
        except (KeyError, TypeError, ValueError) as error:
            raise DatasetError(
                f"shards manifest at {manifest_path} has a malformed shard "
                f"entry: {error!r}"
            ) from error
        if sum(summary.viewer_count for summary in summaries) != int(
            manifest["viewer_count"]
        ):
            raise DatasetError(
                "shards manifest viewer count does not match its shards"
            )
        for summary in summaries:
            shard_directory = directory / summary.directory
            if dataset_is_partial(shard_directory) or not shard_directory.exists():
                raise DatasetError(
                    f"shard {summary.directory} of {directory} is "
                    f"{'incomplete' if shard_directory.exists() else 'missing'} "
                    "(interrupted generation?); re-run "
                    "`repro generate-dataset --shards N --resume` to repair it"
                )
            metadata = load_dataset_metadata(shard_directory)
            if metadata["viewer_count"] != summary.viewer_count:
                raise DatasetError(
                    f"shard {summary.directory} holds {metadata['viewer_count']} "
                    f"viewers but the manifest records {summary.viewer_count}"
                )
            # A shard from a different generation run must not be silently
            # mixed in (e.g. a re-run with new parameters that crashed before
            # rewriting every shard).
            for field in ("seed", "name"):
                if metadata.get(field) != manifest[field]:
                    raise DatasetError(
                        f"shard {summary.directory} records "
                        f"{field}={metadata.get(field)!r} but the manifest "
                        f"records {manifest[field]!r} (mixed generation "
                        "runs?); re-run `repro generate-dataset --shards N "
                        "--resume` to regenerate the foreign shards"
                    )
        return cls(
            directory=directory,
            name=str(manifest["name"]),
            seed=int(manifest["seed"]),
            viewer_count=int(manifest["viewer_count"]),
            shard_summaries=summaries,
        )


def _reusable_shard_summary(
    shard_directory: Path,
    shard_slice: ShardSlice,
    viewers: Sequence[Viewer],
    seed: int,
    write_pcaps: bool,
    dataset_name: str,
    config: SessionConfig,
    graph_fingerprint: str,
) -> ShardSummary | None:
    """The completed shard's summary, or ``None`` if it must be regenerated.

    A shard is reusable only when it finalised cleanly *and* its metadata
    provably belongs to this run: same dataset name, generation seed,
    recorded session configuration and story-graph fingerprint, exactly the
    viewer ids of this shard's population slice, and every trace file both
    recorded and still on disk iff this run writes pcaps.  Anything else —
    debris of a different population, a stale seed, a shard saved under
    different flags, session config or script, a deleted pcap, a
    half-written index — is treated as partial and handed to the quarantine
    path.
    """
    if not dataset_is_complete(shard_directory):
        return None
    try:
        metadata = load_dataset_metadata(shard_directory)
    except DatasetError:
        return None
    if metadata.get("seed") != seed or metadata.get("name") != dataset_name:
        return None
    if metadata.get("session_config") != asdict(config):
        return None
    if metadata.get("graph_fingerprint") != graph_fingerprint:
        return None
    expected_ids = [
        viewer.viewer_id for viewer in viewers[shard_slice.start : shard_slice.stop]
    ]
    try:
        found_ids = [
            str(entry["viewer"]["viewer_id"]) for entry in metadata["entries"]
        ]
        trace_files = [
            entry.get("trace_file") for entry in metadata["entries"]
        ]
    except (KeyError, TypeError, AttributeError):
        return None
    if found_ids != expected_ids:
        return None
    if write_pcaps:
        if any(
            trace_file is None
            or not (shard_directory / str(trace_file)).exists()
            for trace_file in trace_files
        ):
            return None
    elif any(trace_file is not None for trace_file in trace_files):
        return None
    try:
        return shard_summary_from_metadata(
            shard_directory, shard_slice.index, metadata=metadata
        )
    except DatasetError:
        return None


def generate_sharded_dataset(
    directory: str | Path,
    viewer_count: int,
    shard_count: int,
    seed: int = 0,
    graph: StoryGraph | None = None,
    config: SessionConfig | None = None,
    workers: int | None = None,
    write_pcaps: bool = True,
    dataset_name: str = "iitm-bandersnatch-synthetic",
    progress: Callable[[int, int], None] | None = None,
    resume: bool = False,
    status: Callable[[ShardSlice, str], None] | None = None,
) -> ShardedDataset:
    """Generate a population as shards, streaming each shard to disk.

    Only the viewer attributes of the whole population (cheap: a few strings
    per viewer) plus one in-flight window of sessions exist in memory at any
    time; sessions are persisted through :class:`DatasetWriter` as the engine
    completes them.  ``progress`` is invoked as ``(done_viewers,
    viewer_count)`` across the whole population.

    With ``resume=True`` an interrupted run is picked up where it stopped:
    shards that finalised cleanly (and verifiably belong to this population
    and seed) are skipped without re-reading a pcap, partially-written shards
    are moved aside via :func:`quarantine_partial_shard`, and only the
    missing work is regenerated.  Session seeds derive from the dataset seed
    and the viewer id alone, so the resumed directory is byte-identical to
    one produced by a single uninterrupted run; shards whose recorded name,
    seed, session configuration or pcap layout does not match this call's
    arguments are detected and regenerated rather than absorbed.
    ``status``, when given, is
    invoked once per shard with the slice and one of ``SHARD_GENERATED``,
    ``SHARD_SKIPPED`` or ``SHARD_QUARANTINED`` (a quarantined shard also
    reports ``SHARD_GENERATED`` once regenerated).

    Returns the :class:`ShardedDataset`, with its manifest already written.
    """
    directory = Path(directory)
    graph = graph or default_study_script()
    config = config or SessionConfig()
    slices = plan_shards(viewer_count, shard_count)
    viewers = generate_population(viewer_count, seed=seed)
    directory.mkdir(parents=True, exist_ok=True)
    # Invalidate any previous run's manifest up front: it is rewritten only
    # after every shard is in place, so a run that crashes mid-way can never
    # leave a stale manifest pointing at a mixture of old and new shards.
    (directory / SHARDS_MANIFEST_FILENAME).unlink(missing_ok=True)
    # Shard directories beyond this run's plan (debris of an earlier run
    # with a larger shard count) would otherwise survive untouched and look
    # like valid data; move them aside with the other quarantined debris.
    for existing in sorted(directory.iterdir()):
        match = re.fullmatch(r"shard-(\d{3,})", existing.name)
        if match and existing.is_dir() and int(match.group(1)) >= len(slices):
            quarantine_partial_shard(existing)

    def report(shard_slice: ShardSlice, state: str) -> None:
        if status is not None:
            status(shard_slice, state)

    shard_summaries: list[ShardSummary] = []
    graph_fingerprint = graph.fingerprint()
    done = 0
    for shard_slice in slices:
        shard_directory = directory / shard_slice.dirname
        if resume:
            summary = _reusable_shard_summary(
                shard_directory,
                shard_slice,
                viewers,
                seed,
                write_pcaps,
                dataset_name,
                config,
                graph_fingerprint,
            )
            if summary is not None:
                shard_summaries.append(summary)
                done += summary.viewer_count
                report(shard_slice, SHARD_SKIPPED)
                if progress is not None:
                    progress(done, viewer_count)
                continue
        if shard_directory.exists():
            # In-plan debris (a partial shard, or any previous run's shard
            # when not resuming) is moved aside, never overwritten in place:
            # stale pcaps surviving inside a rewritten shard would look like
            # valid viewers to anything that globs the traces directory.
            quarantine_partial_shard(shard_directory)
            report(shard_slice, SHARD_QUARANTINED)
        accumulator = SummaryAccumulator()
        with DatasetWriter(
            shard_directory,
            dataset_name=dataset_name,
            write_pcaps=write_pcaps,
            seed=seed,
            config=config,
            graph=graph,
        ) as writer:
            for point in iter_collect_dataset(
                viewers[shard_slice.start : shard_slice.stop],
                dataset_seed=seed,
                graph=graph,
                config=config,
                workers=workers,
            ):
                writer.add(point)
                accumulator.add(point)
                done += 1
                if progress is not None:
                    progress(done, viewer_count)
        summary = accumulator.summary()
        shard_summaries.append(
            ShardSummary(
                index=shard_slice.index,
                directory=shard_slice.dirname,
                viewer_count=summary.viewer_count,
                total_choices=summary.total_choices,
                non_default_choices=summary.non_default_choices,
                total_packets=summary.total_packets,
                condition_keys=accumulator.condition_keys,
            )
        )
        report(shard_slice, SHARD_GENERATED)
    dataset = ShardedDataset(
        directory=directory,
        name=dataset_name,
        seed=seed,
        viewer_count=viewer_count,
        shard_summaries=shard_summaries,
    )
    dataset.save_manifest()
    return dataset
