"""Sharded dataset generation: million-viewer populations in bounded memory.

The paper evaluates over a 100-viewer dataset that fits comfortably in
memory; the roadmap's target populations do not.  This module splits a
population into deterministic contiguous **shards**, streams each shard to
disk as an independent dataset directory (``shard-000/metadata.json`` plus
its ``traces/``, exactly the standalone layout :mod:`repro.dataset.format`
describes), and merges the per-shard summaries into one population summary.

Shard membership is a pure function of ``(viewer_count, shard_count)`` and
never touches a session's bytes: every session seed derives from the dataset
seed and the viewer id alone (:func:`repro.utils.rng.derive_seed` in
:func:`repro.dataset.collection.collection_plan`), so regenerating the same
population with a different shard count — or no sharding at all — produces
byte-identical per-viewer pcaps.  That equivalence is asserted by the shard
tests and the ``bench_shard_scaling`` benchmark.

Peak memory during generation is O(shard), not O(population): each shard is
generated through :func:`repro.dataset.collection.iter_collect_dataset` and
persisted point by point, and only the merged summary statistics survive the
shard's lifetime.

Generation is **resumable**: because every shard is finalised atomically
(:class:`repro.dataset.format.DatasetWriter` keeps an ``.inprogress`` marker
until the metadata index is renamed into place), a crashed run leaves each
shard either complete or detectably partial.  ``resume=True`` skips complete
shards (their summaries are recomputed from the metadata index alone — no
pcap is re-read), quarantines partial ones aside, and regenerates only what
is missing; the resumed output is byte-identical to an uninterrupted run
because every session's bytes derive from ``(dataset seed, viewer id)``
alone.

Generation is also **parallel and distributable**.  ``shard_workers`` fans
whole shards out over a process pool (multiplying the per-session ``workers``
fan-out inside each shard), with output byte-identical to the serial path
because shards are independent directories and every session's bytes derive
from the dataset seed and the viewer id alone.  ``only_shards``
(:func:`generate_shard_subset`) emits just a selection of shard directories
so several machines can split one run between them; the rsync'd-together
shards are then verified and re-published as one dataset by
:func:`stitch_sharded_dataset` — the same validation machinery resume uses,
without regenerating anything.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterator, Mapping, Sequence

from repro.client.profiles import OperationalCondition
from repro.dataset.collection import default_study_script, iter_collect_dataset
from repro.dataset.format import (
    DatasetWriter,
    METADATA_FILENAME,
    dataset_is_complete,
    dataset_is_partial,
    load_dataset_metadata,
    session_config_from_metadata,
)
from repro.engine.executor import BatchExecutor, ProgressCallback, resolve_workers
from repro.dataset.iitm import DatasetSummary, SummaryAccumulator
from repro.dataset.loader import LoadedDataPoint, iter_released_points
from repro.dataset.population import (
    Viewer,
    generate_population,
    viewers_from_metadata_entries,
)
from repro.exceptions import DatasetError
from repro.narrative.graph import StoryGraph
from repro.streaming.session import SessionConfig, SessionResult

SHARDS_MANIFEST_FILENAME = "shards.json"
SHARDS_FORMAT_VERSION = 1

#: Shard states reported to ``generate_sharded_dataset``'s status callback.
SHARD_GENERATED = "generated"
SHARD_SKIPPED = "skipped"
SHARD_QUARANTINED = "quarantined"
#: Shard state reported by :func:`stitch_sharded_dataset` per verified shard.
SHARD_VERIFIED = "verified"


def shard_dirname(index: int) -> str:
    """Canonical directory name of shard ``index`` (``shard-000`` style)."""
    if index < 0:
        raise DatasetError(f"shard index must be non-negative, got {index}")
    return f"shard-{index:03d}"


@dataclass(frozen=True)
class ShardSlice:
    """One shard's slice of the population: viewers ``[start, stop)``."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise DatasetError(f"shard index must be non-negative, got {self.index}")
        if not 0 <= self.start < self.stop:
            raise DatasetError(f"invalid shard slice [{self.start}, {self.stop})")

    @property
    def viewer_count(self) -> int:
        """Number of viewers in the shard."""
        return self.stop - self.start

    @property
    def dirname(self) -> str:
        """The shard's on-disk directory name."""
        return shard_dirname(self.index)


def plan_shards(viewer_count: int, shard_count: int) -> list[ShardSlice]:
    """Split a population into balanced, contiguous, deterministic shards.

    Shard sizes differ by at most one viewer.  Membership depends only on
    ``(viewer_count, shard_count)``; session seeds derive from viewer ids,
    so the split has no effect on any session's bytes.
    """
    if viewer_count <= 0:
        raise DatasetError(f"population size must be positive, got {viewer_count}")
    if shard_count <= 0:
        raise DatasetError(f"shard count must be positive, got {shard_count}")
    if shard_count > viewer_count:
        raise DatasetError(
            f"cannot split {viewer_count} viewers into {shard_count} shards"
        )
    size, remainder = divmod(viewer_count, shard_count)
    slices: list[ShardSlice] = []
    start = 0
    for index in range(shard_count):
        stop = start + size + (1 if index < remainder else 0)
        slices.append(ShardSlice(index=index, start=start, stop=stop))
        start = stop
    return slices


def parse_shard_selection(selection: str, shard_count: int) -> tuple[int, ...]:
    """Parse a shard-subset spec like ``"0,3-5"`` into sorted unique indices.

    The grammar is comma-separated items, each either a single index or an
    inclusive ``low-high`` range; whitespace around items is ignored and
    overlapping items collapse (``"1-3,2-4"`` selects 1..4 once each).  An
    empty selection, a malformed item, a reversed range or an index outside
    ``[0, shard_count)`` raises a :class:`DatasetError` naming the offending
    item — a machine silently generating no shards (or the wrong ones) would
    poison the later stitch.
    """
    if shard_count <= 0:
        raise DatasetError(f"shard count must be positive, got {shard_count}")
    indices: set[int] = set()
    for item in selection.split(","):
        item = item.strip()
        if not item:
            continue
        match = re.fullmatch(r"(\d+)(?:-(\d+))?", item)
        if match is None:
            raise DatasetError(
                f"malformed shard selection item {item!r} (expected an index "
                "like '2' or an inclusive range like '3-5')"
            )
        low = int(match.group(1))
        high = int(match.group(2)) if match.group(2) is not None else low
        if high < low:
            raise DatasetError(
                f"shard selection range {item!r} is reversed ({low} > {high})"
            )
        if high >= shard_count:
            raise DatasetError(
                f"shard selection {item!r} is out of range for "
                f"{shard_count} shards (valid indices: 0-{shard_count - 1})"
            )
        indices.update(range(low, high + 1))
    if not indices:
        raise DatasetError(
            f"shard selection {selection!r} selects no shards; name at least "
            "one index (e.g. '0' or '0,3-5')"
        )
    return tuple(sorted(indices))


@dataclass(frozen=True)
class ShardSummary:
    """One shard's aggregate statistics, as stored in the shards manifest."""

    index: int
    directory: str
    viewer_count: int
    total_choices: int
    non_default_choices: int
    total_packets: int
    condition_keys: tuple[str, ...]

    def to_dataset_summary(self) -> DatasetSummary:
        """This shard viewed as a standalone dataset summary."""
        return DatasetSummary(
            viewer_count=self.viewer_count,
            total_choices=self.total_choices,
            non_default_choices=self.non_default_choices,
            distinct_conditions=len(self.condition_keys),
            total_packets=self.total_packets,
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form for the shards manifest."""
        return {
            "index": self.index,
            "directory": self.directory,
            "viewer_count": self.viewer_count,
            "total_choices": self.total_choices,
            "non_default_choices": self.non_default_choices,
            "total_packets": self.total_packets,
            "condition_keys": list(self.condition_keys),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ShardSummary":
        """Inverse of :meth:`as_dict`."""
        return cls(
            index=int(data["index"]),  # type: ignore[arg-type]
            directory=str(data["directory"]),
            viewer_count=int(data["viewer_count"]),  # type: ignore[arg-type]
            total_choices=int(data["total_choices"]),  # type: ignore[arg-type]
            non_default_choices=int(data["non_default_choices"]),  # type: ignore[arg-type]
            total_packets=int(data["total_packets"]),  # type: ignore[arg-type]
            condition_keys=tuple(str(key) for key in data["condition_keys"]),  # type: ignore[union-attr]
        )


def merge_shard_summaries(summaries: Sequence[ShardSummary]) -> DatasetSummary:
    """Merge per-shard summaries into one population summary.

    Counts add; distinct conditions are the union of the shards' condition
    keys (a condition present in two shards counts once).  Merging the
    shards of a population yields exactly the summary the unsharded
    in-memory dataset reports.
    """
    if not summaries:
        raise DatasetError("no shard summaries to merge")
    condition_keys: set[str] = set()
    for summary in summaries:
        condition_keys.update(summary.condition_keys)
    return DatasetSummary(
        viewer_count=sum(summary.viewer_count for summary in summaries),
        total_choices=sum(summary.total_choices for summary in summaries),
        non_default_choices=sum(summary.non_default_choices for summary in summaries),
        distinct_conditions=len(condition_keys),
        total_packets=sum(summary.total_packets for summary in summaries),
    )


def shard_summary_from_metadata(
    directory: str | Path,
    index: int,
    metadata: Mapping[str, object] | None = None,
) -> ShardSummary:
    """Rebuild a completed shard's summary from its metadata index alone.

    Everything a :class:`ShardSummary` records (choice counts, packet counts,
    condition keys) is present in the per-viewer metadata entries, so a
    resumed run can account for an already-complete shard without re-parsing
    a single pcap.  The result is identical to the summary the original
    generation accumulated while streaming the shard.  ``metadata`` lets a
    caller that already parsed the index pass it in instead of paying the
    load twice.
    """
    directory = Path(directory)
    if metadata is None:
        metadata = load_dataset_metadata(directory)
    total_choices = 0
    non_default_choices = 0
    total_packets = 0
    condition_keys: set[str] = set()
    try:
        for entry in metadata["entries"]:
            choices = entry["choices"]
            total_choices += len(choices)
            non_default_choices += sum(
                1 for choice in choices if not choice["took_default"]
            )
            total_packets += int(entry["packet_count"])
            condition = OperationalCondition.from_dict(entry["viewer"]["condition"])
            condition_keys.add(condition.key)
    except (KeyError, TypeError) as error:
        raise DatasetError(
            f"shard metadata at {directory} is malformed: {error!r}"
        ) from error
    return ShardSummary(
        index=index,
        directory=directory.name,
        viewer_count=int(metadata["viewer_count"]),
        total_choices=total_choices,
        non_default_choices=non_default_choices,
        total_packets=total_packets,
        condition_keys=tuple(sorted(condition_keys)),
    )


def quarantine_partial_shard(shard_directory: str | Path) -> Path:
    """Move a partially-written shard aside; returns its new location.

    The debris is renamed to ``<shard>.quarantined-<n>`` (first free ``n``)
    rather than deleted, so an operator can inspect what an interrupted run
    left behind while the resumed run regenerates the shard from scratch.
    """
    shard_directory = Path(shard_directory)
    if not shard_directory.exists():
        raise DatasetError(f"no shard directory to quarantine at {shard_directory}")
    for attempt in range(1000):
        target = shard_directory.with_name(
            f"{shard_directory.name}.quarantined-{attempt:03d}"
        )
        if not target.exists():
            shard_directory.rename(target)
            return target
    raise DatasetError(
        f"too many quarantined copies of {shard_directory.name}; clean them up"
    )


def require_generating_graph(
    recorded_fingerprint: object,
    graph: StoryGraph,
    location: str | Path,
) -> None:
    """Refuse to replay or stitch against the wrong story graph.

    Every consumer that re-derives sessions from stored metadata (training
    replay, stitching) must run against the graph that generated the data —
    otherwise replayed sessions silently diverge from the stored traces.
    Pre-fingerprint datasets (``recorded_fingerprint`` is ``None``) are let
    through for backwards compatibility.
    """
    if recorded_fingerprint is not None and recorded_fingerprint != graph.fingerprint():
        raise DatasetError(
            f"dataset at {location} was generated with a different story "
            "graph than the one supplied; derived sessions would not match "
            "the stored traces (pass the generating graph)"
        )


def iter_shard_training_sessions(
    shard_directory: str | Path,
    graph: StoryGraph | None = None,
    config: SessionConfig | None = None,
    workers: int | None = None,
    viewer_filter: Callable[[Viewer], bool] | None = None,
) -> Iterator[SessionResult]:
    """Lazily re-simulate one shard's labelled calibration sessions.

    The shard's viewers are rebuilt from its metadata entries and their
    sessions replayed from the recorded generation seed through the streaming
    collection path, so the yielded :class:`SessionResult`\\ s carry the
    ground-truth record annotations that training needs while only an engine
    window of sessions is ever alive.

    ``viewer_filter`` selects a subset of the shard's viewers to simulate.
    Every session's seed derives from the dataset seed and the viewer id
    alone, so a filtered run yields sessions byte-identical to the
    corresponding ones of an unfiltered run — callers that only need part of
    a shard (e.g. a calibration split) never pay for the rest.
    """
    shard_directory = Path(shard_directory)
    metadata = load_dataset_metadata(shard_directory)
    if "seed" not in metadata:
        raise DatasetError(
            f"dataset metadata at {shard_directory} does not record its "
            "generation seed, so its labelled sessions cannot be re-simulated"
        )
    graph = graph or default_study_script()
    require_generating_graph(
        metadata.get("graph_fingerprint"), graph, shard_directory
    )
    viewers = viewers_from_metadata_entries(metadata["entries"], shard_directory)
    if viewer_filter is not None:
        viewers = [viewer for viewer in viewers if viewer_filter(viewer)]
        if not viewers:
            return
    for point in iter_collect_dataset(
        viewers,
        dataset_seed=int(metadata["seed"]),
        graph=graph,
        # The metadata records the generating configuration, so replayed
        # sessions match the stored pcaps byte for byte; an explicit config
        # (or a pre-recording dataset) falls back to the caller's choice.
        config=config or session_config_from_metadata(metadata),
        workers=workers,
    ):
        yield point.session


class ShardedDataset:
    """A sharded on-disk dataset: a manifest plus per-shard directories."""

    def __init__(
        self,
        directory: str | Path,
        name: str,
        seed: int,
        viewer_count: int,
        shard_summaries: Sequence[ShardSummary],
    ) -> None:
        if not shard_summaries:
            raise DatasetError("a sharded dataset needs at least one shard")
        self._directory = Path(directory)
        self._name = name
        self._seed = seed
        self._viewer_count = viewer_count
        self._shard_summaries = tuple(shard_summaries)

    @property
    def directory(self) -> Path:
        """The dataset's root directory."""
        return self._directory

    @property
    def name(self) -> str:
        """The dataset's name."""
        return self._name

    @property
    def seed(self) -> int:
        """The root seed the population was generated from."""
        return self._seed

    @property
    def viewer_count(self) -> int:
        """Total viewers across all shards."""
        return self._viewer_count

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return len(self._shard_summaries)

    @property
    def shard_summaries(self) -> tuple[ShardSummary, ...]:
        """Per-shard aggregate statistics, in shard order."""
        return self._shard_summaries

    def shard_directories(self) -> list[Path]:
        """Absolute paths of the shard directories, in shard order."""
        return [
            self._directory / summary.directory for summary in self._shard_summaries
        ]

    def summary(self) -> DatasetSummary:
        """The merged population summary."""
        return merge_shard_summaries(self._shard_summaries)

    def iter_points(self) -> Iterator[LoadedDataPoint]:
        """Iterate every viewer's loaded data point, lazily, in viewer order.

        Shards are opened one at a time and each point is parsed from its
        pcap on demand, so iterating a population never holds more than one
        point (plus one shard's metadata index) in memory.
        """
        for shard_directory in self.shard_directories():
            yield from iter_released_points(shard_directory)

    def iter_shard_points(self) -> Iterator[Iterator[LoadedDataPoint]]:
        """Iterate the population one shard at a time.

        Yields, per shard, a lazy iterator over that shard's loaded data
        points — the shape :meth:`repro.core.pipeline.WhiteMirrorAttack`'s
        incremental consumers fold over: each shard's points can be processed
        and discarded before the next shard's metadata is even opened.
        """
        for shard_directory in self.shard_directories():
            yield iter_released_points(shard_directory)

    def iter_shard_training_sessions(
        self,
        graph: StoryGraph | None = None,
        config: SessionConfig | None = None,
        workers: int | None = None,
        viewer_filter: Callable[[Viewer], bool] | None = None,
    ) -> Iterator[Iterator[SessionResult]]:
        """Re-simulate the population's labelled sessions, one shard at a time.

        The pcaps on disk carry no ground-truth labels (by design), so
        calibration re-simulates each shard's sessions from its metadata
        entries and the recorded seed — exactly what the researcher who
        generated the dataset can do.  Yields one lazy session iterator per
        shard (``viewer_filter`` restricts which viewers are simulated);
        consumed shard by shard
        (:meth:`repro.core.pipeline.WhiteMirrorAttack.train_incremental`),
        peak memory holds one engine window of sessions, never the
        population.
        """
        for shard_directory in self.shard_directories():
            yield iter_shard_training_sessions(
                shard_directory,
                graph=graph,
                config=config,
                workers=workers,
                viewer_filter=viewer_filter,
            )

    def __iter__(self) -> Iterator[LoadedDataPoint]:
        return self.iter_points()

    def __len__(self) -> int:
        return self._viewer_count

    @property
    def manifest_path(self) -> Path:
        """Where the shards manifest lives."""
        return self._directory / SHARDS_MANIFEST_FILENAME

    def save_manifest(self) -> Path:
        """Write the shards manifest atomically; returns its path.

        Same staging + rename pattern as the per-shard metadata index: a
        reader can observe the manifest's presence or absence, never a
        truncated write.
        """
        manifest = {
            "name": self._name,
            "format_version": SHARDS_FORMAT_VERSION,
            "seed": self._seed,
            "viewer_count": self._viewer_count,
            "shard_count": self.shard_count,
            "shards": [summary.as_dict() for summary in self._shard_summaries],
        }
        staging_path = self.manifest_path.with_name(SHARDS_MANIFEST_FILENAME + ".tmp")
        staging_path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
        os.replace(staging_path, self.manifest_path)
        return self.manifest_path

    @classmethod
    def load(cls, directory: str | Path) -> "ShardedDataset":
        """Load a sharded dataset from its manifest.

        Only the manifest and each shard's metadata index are validated up
        front; pcaps are parsed lazily by :meth:`iter_points`.  Every failure
        mode — a directory that is not a sharded dataset, a manifest with
        missing fields, a shard left incomplete by an interrupted generation
        run — raises a :class:`DatasetError` that says what was found and
        what to do about it, never a bare ``KeyError``/``FileNotFoundError``.
        """
        directory = Path(directory)
        manifest_path = directory / SHARDS_MANIFEST_FILENAME
        if not manifest_path.exists():
            if (directory / METADATA_FILENAME).exists():
                raise DatasetError(
                    f"{directory} is a single (non-sharded) dataset directory: "
                    f"it has a {METADATA_FILENAME} but no {SHARDS_MANIFEST_FILENAME}"
                )
            raise DatasetError(
                f"{directory} is not a sharded dataset: no "
                f"{SHARDS_MANIFEST_FILENAME} manifest found (generate one with "
                "`repro generate-dataset --shards N`)"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise DatasetError(f"cannot load shards manifest: {error}") from error
        if not isinstance(manifest, dict):
            raise DatasetError(
                f"shards manifest at {manifest_path} must be a JSON object, "
                f"got {type(manifest).__name__}"
            )
        for key in ("name", "format_version", "seed", "viewer_count", "shards"):
            if key not in manifest:
                raise DatasetError(f"shards manifest is missing the {key!r} field")
        if manifest["format_version"] != SHARDS_FORMAT_VERSION:
            raise DatasetError(
                f"unsupported shards manifest version {manifest['format_version']}"
            )
        try:
            summaries = [ShardSummary.from_dict(entry) for entry in manifest["shards"]]
        except (KeyError, TypeError, ValueError) as error:
            raise DatasetError(
                f"shards manifest at {manifest_path} has a malformed shard "
                f"entry: {error!r}"
            ) from error
        if sum(summary.viewer_count for summary in summaries) != int(
            manifest["viewer_count"]
        ):
            raise DatasetError(
                "shards manifest viewer count does not match its shards"
            )
        for summary in summaries:
            shard_directory = directory / summary.directory
            if dataset_is_partial(shard_directory) or not shard_directory.exists():
                raise DatasetError(
                    f"shard {summary.directory} of {directory} is "
                    f"{'incomplete' if shard_directory.exists() else 'missing'} "
                    "(interrupted generation?); re-run "
                    "`repro generate-dataset --shards N --resume` to repair it"
                )
            metadata = load_dataset_metadata(shard_directory)
            if metadata["viewer_count"] != summary.viewer_count:
                raise DatasetError(
                    f"shard {summary.directory} holds {metadata['viewer_count']} "
                    f"viewers but the manifest records {summary.viewer_count}"
                )
            # A shard from a different generation run must not be silently
            # mixed in (e.g. a re-run with new parameters that crashed before
            # rewriting every shard).
            for field in ("seed", "name"):
                if metadata.get(field) != manifest[field]:
                    raise DatasetError(
                        f"shard {summary.directory} records "
                        f"{field}={metadata.get(field)!r} but the manifest "
                        f"records {manifest[field]!r} (mixed generation "
                        "runs?); re-run `repro generate-dataset --shards N "
                        "--resume` to regenerate the foreign shards"
                    )
            plan = metadata.get("shard")
            if isinstance(plan, dict) and (
                plan.get("index") != summary.index
                or plan.get("count") != len(summaries)
                or plan.get("population_viewer_count") != int(manifest["viewer_count"])
            ):
                raise DatasetError(
                    f"shard {summary.directory} records shard plan {plan!r} "
                    f"but the manifest describes shard {summary.index} of "
                    f"{len(summaries)} over {manifest['viewer_count']} "
                    "viewers (mixed generation runs?); re-run `repro "
                    "generate-dataset --shards N --resume` to regenerate "
                    "the foreign shards"
                )
        return cls(
            directory=directory,
            name=str(manifest["name"]),
            seed=int(manifest["seed"]),
            viewer_count=int(manifest["viewer_count"]),
            shard_summaries=summaries,
        )


def _shard_plan(
    shard_slice: ShardSlice, shard_count: int, population_viewer_count: int
) -> dict[str, int]:
    """The plan stamp one shard records in its metadata (see ``stitch``)."""
    return {
        "index": shard_slice.index,
        "count": shard_count,
        "population_viewer_count": population_viewer_count,
    }


def _shard_reuse_mismatch(
    shard_directory: Path,
    shard_slice: ShardSlice,
    shard_count: int,
    viewers: Sequence[Viewer],
    seed: int,
    write_pcaps: bool,
    dataset_name: str,
    config: SessionConfig,
    graph_fingerprint: str,
    metadata: Mapping[str, object] | None = None,
) -> str | None:
    """Why the on-disk shard cannot be reused for this plan; ``None`` if it can.

    The single verifier behind resume's skip decision and stitch's
    validation (via :func:`_shard_reuse_check`).  Each check returns a
    reason naming the exact recorded field that mismatched — resume only
    needs the yes/no, but a stitch failure is an operator's cue to find the
    foreign shard's origin, so "its recorded configuration does not match"
    is not good enough.
    """
    if not dataset_is_complete(shard_directory):
        return (
            "it has not finalised cleanly (missing metadata index or "
            "leftover .inprogress marker — interrupted generation?)"
        )
    if metadata is None:
        try:
            metadata = load_dataset_metadata(shard_directory)
        except DatasetError as error:
            return f"its metadata index does not load: {error}"
    if metadata.get("seed") != seed:
        return (
            f"it records seed={metadata.get('seed')!r} but this plan uses "
            f"seed={seed!r}"
        )
    if metadata.get("name") != dataset_name:
        return (
            f"it records dataset name {metadata.get('name')!r} but this plan "
            f"uses {dataset_name!r}"
        )
    if metadata.get("session_config") != asdict(config):
        return (
            f"it records session_config={metadata.get('session_config')!r} "
            f"but this plan uses {asdict(config)!r}"
        )
    if metadata.get("graph_fingerprint") != graph_fingerprint:
        return (
            f"it records story-graph fingerprint "
            f"{metadata.get('graph_fingerprint')!r} but this plan's graph "
            f"fingerprints {graph_fingerprint!r}"
        )
    expected_plan = _shard_plan(shard_slice, shard_count, len(viewers))
    if metadata.get("shard") != expected_plan:
        return (
            f"it records shard plan {metadata.get('shard')!r} but this slice "
            f"is {expected_plan!r}"
        )
    expected_ids = [
        viewer.viewer_id for viewer in viewers[shard_slice.start : shard_slice.stop]
    ]
    try:
        found_ids = [
            str(entry["viewer"]["viewer_id"]) for entry in metadata["entries"]
        ]
        trace_files = [
            entry.get("trace_file") for entry in metadata["entries"]
        ]
    except (KeyError, TypeError, AttributeError) as error:
        return f"its metadata entries are malformed: {error!r}"
    if found_ids != expected_ids:
        return (
            f"it holds viewer ids {found_ids!r} but the plan's slice "
            f"expects {expected_ids!r}"
        )
    if write_pcaps:
        missing = [
            str(trace_file)
            for trace_file in trace_files
            if trace_file is None
            or not (shard_directory / str(trace_file)).exists()
        ]
        if missing:
            return (
                f"recorded trace file(s) {missing!r} are missing on disk "
                "(incomplete rsync?)"
            )
    elif any(trace_file is not None for trace_file in trace_files):
        return (
            "it records trace files but this plan was generated with "
            "--no-pcaps"
        )
    return None


def _shard_reuse_check(
    shard_directory: Path,
    shard_slice: ShardSlice,
    shard_count: int,
    viewers: Sequence[Viewer],
    seed: int,
    write_pcaps: bool,
    dataset_name: str,
    config: SessionConfig,
    graph_fingerprint: str,
    metadata: Mapping[str, object] | None = None,
) -> tuple[str | None, ShardSummary | None]:
    """Verify an on-disk shard against a plan: ``(mismatch reason, summary)``.

    Exactly one element of the pair is ``None``: either the shard fails
    :func:`_shard_reuse_mismatch` (or its metadata cannot be summarised) and
    the reason comes back, or it verifies and its summary rides back so
    callers never summarise the same metadata twice.
    """
    if metadata is None and dataset_is_complete(shard_directory):
        try:
            metadata = load_dataset_metadata(shard_directory)
        except DatasetError as error:
            return f"its metadata index does not load: {error}", None
    mismatch = _shard_reuse_mismatch(
        shard_directory,
        shard_slice,
        shard_count,
        viewers,
        seed,
        write_pcaps,
        dataset_name,
        config,
        graph_fingerprint,
        metadata=metadata,
    )
    if mismatch is not None:
        return mismatch, None
    assert metadata is not None  # complete + no mismatch implies it loaded
    try:
        summary = shard_summary_from_metadata(
            shard_directory, shard_slice.index, metadata=metadata
        )
    except DatasetError as error:
        return f"its metadata cannot be summarised: {error}", None
    return None, summary


def _reusable_shard_summary(
    shard_directory: Path,
    shard_slice: ShardSlice,
    shard_count: int,
    viewers: Sequence[Viewer],
    seed: int,
    write_pcaps: bool,
    dataset_name: str,
    config: SessionConfig,
    graph_fingerprint: str,
    metadata: Mapping[str, object] | None = None,
) -> ShardSummary | None:
    """The completed shard's summary, or ``None`` if it must be regenerated.

    A shard is reusable only when it finalised cleanly *and* its metadata
    provably belongs to this run: same dataset name, generation seed,
    recorded session configuration, story-graph fingerprint and shard plan
    (index, shard count, population total), exactly the viewer ids of this
    shard's population slice, and every trace file both recorded and still
    on disk iff this run writes pcaps.  Anything else — debris of a
    different population, a stale seed, a shard saved under different flags,
    session config or script, a deleted pcap, a half-written index — is
    treated as partial and handed to the quarantine path
    (:func:`_shard_reuse_mismatch` names the specific mismatch).
    ``metadata`` lets a caller that already parsed the shard's index (e.g.
    the stitch validator) pass it in instead of paying the load twice.
    """
    _mismatch, summary = _shard_reuse_check(
        shard_directory,
        shard_slice,
        shard_count,
        viewers,
        seed,
        write_pcaps,
        dataset_name,
        config,
        graph_fingerprint,
        metadata=metadata,
    )
    return summary


@dataclass(frozen=True)
class _ShardGenerationTask:
    """Everything one shard's generation needs, picklable for the pool."""

    directory: str
    shard_slice: ShardSlice
    shard_count: int
    population_viewer_count: int
    viewers: tuple[Viewer, ...]
    seed: int
    graph: StoryGraph
    config: SessionConfig
    workers: int | None
    write_pcaps: bool
    dataset_name: str

    def describe(self) -> str:
        """Short identity used in engine error messages."""
        return (
            f"{self.shard_slice.dirname} "
            f"(viewers {self.shard_slice.start}-{self.shard_slice.stop - 1})"
        )


def _generate_shard(
    task: _ShardGenerationTask,
    progress: Callable[[int], None] | None = None,
) -> ShardSummary:
    """Generate one shard directory and return its summary.

    The single generation path shared by the serial loop and the shard-level
    process pool: a shard's bytes depend only on ``(dataset seed, viewer
    id)``, so where this function runs has no effect on what it writes.
    ``progress``, when given, is invoked with the shard-local count of
    completed sessions (the pool path cannot stream progress across the
    process boundary and passes ``None``).
    """
    accumulator = SummaryAccumulator()
    with DatasetWriter(
        Path(task.directory),
        dataset_name=task.dataset_name,
        write_pcaps=task.write_pcaps,
        seed=task.seed,
        config=task.config,
        graph=task.graph,
        shard=_shard_plan(
            task.shard_slice, task.shard_count, task.population_viewer_count
        ),
    ) as writer:
        for point in iter_collect_dataset(
            list(task.viewers),
            dataset_seed=task.seed,
            graph=task.graph,
            config=task.config,
            workers=task.workers,
        ):
            writer.add(point)
            accumulator.add(point)
            if progress is not None:
                progress(writer.entry_count)
    summary = accumulator.summary()
    return ShardSummary(
        index=task.shard_slice.index,
        directory=task.shard_slice.dirname,
        viewer_count=summary.viewer_count,
        total_choices=summary.total_choices,
        non_default_choices=summary.non_default_choices,
        total_packets=summary.total_packets,
        condition_keys=accumulator.condition_keys,
    )


def _generate_shard_task(task: _ShardGenerationTask) -> ShardSummary:
    """Module-level pool entry point (must be picklable)."""
    return _generate_shard(task)


def _describe_shard_task(task: _ShardGenerationTask) -> str:
    return task.describe()


def _generate_shards(
    directory: Path,
    slices: Sequence[ShardSlice],
    *,
    shard_count: int,
    viewers: Sequence[Viewer],
    total_viewers: int,
    seed: int,
    graph: StoryGraph,
    config: SessionConfig,
    workers: int | None,
    shard_workers: int | None,
    write_pcaps: bool,
    dataset_name: str,
    progress: ProgressCallback | None,
    resume: bool,
    status: Callable[[ShardSlice, str], None] | None,
) -> list[ShardSummary]:
    """Resume-check, quarantine and (re)generate the selected shards.

    The shared core of :func:`generate_sharded_dataset` and
    :func:`generate_shard_subset`: a planning pass settles each selected
    shard's fate serially (skipping reusable ones, quarantining debris —
    cheap metadata work), then the shards that need generating run either in
    this process or fanned out over a shard-level
    :class:`~repro.engine.executor.BatchExecutor` pool
    (``shard_workers``).  Both paths write byte-identical directories; the
    pool path reports ``progress`` at shard granularity because per-session
    callbacks cannot cross the process boundary.
    """
    def report(shard_slice: ShardSlice, state: str) -> None:
        if status is not None:
            status(shard_slice, state)

    graph_fingerprint = graph.fingerprint()
    summaries: dict[int, ShardSummary] = {}
    pending: list[_ShardGenerationTask] = []
    done = 0
    for shard_slice in slices:
        shard_directory = directory / shard_slice.dirname
        if resume:
            summary = _reusable_shard_summary(
                shard_directory,
                shard_slice,
                shard_count,
                viewers,
                seed,
                write_pcaps,
                dataset_name,
                config,
                graph_fingerprint,
            )
            if summary is not None:
                summaries[shard_slice.index] = summary
                done += summary.viewer_count
                report(shard_slice, SHARD_SKIPPED)
                if progress is not None:
                    progress(done, total_viewers)
                continue
        if shard_directory.exists():
            # In-plan debris (a partial shard, or any previous run's shard
            # when not resuming) is moved aside, never overwritten in place:
            # stale pcaps surviving inside a rewritten shard would look like
            # valid viewers to anything that globs the traces directory.
            quarantine_partial_shard(shard_directory)
            report(shard_slice, SHARD_QUARANTINED)
        pending.append(
            _ShardGenerationTask(
                directory=str(shard_directory),
                shard_slice=shard_slice,
                shard_count=shard_count,
                population_viewer_count=len(viewers),
                viewers=tuple(viewers[shard_slice.start : shard_slice.stop]),
                seed=seed,
                graph=graph,
                config=config,
                workers=workers,
                write_pcaps=write_pcaps,
                dataset_name=dataset_name,
            )
        )
    if resolve_workers(shard_workers) > 1 and len(pending) > 1:
        executor = BatchExecutor(shard_workers)
        results = executor.imap(
            _generate_shard_task, pending, label=_describe_shard_task
        )
        for task, summary in zip(pending, results):
            summaries[summary.index] = summary
            done += summary.viewer_count
            report(task.shard_slice, SHARD_GENERATED)
            if progress is not None:
                progress(done, total_viewers)
    else:
        for task in pending:
            summary = _generate_shard(
                task,
                progress=(
                    None
                    if progress is None
                    else lambda in_shard, base=done: progress(
                        base + in_shard, total_viewers
                    )
                ),
            )
            summaries[summary.index] = summary
            done += summary.viewer_count
            report(task.shard_slice, SHARD_GENERATED)
    return [summaries[shard_slice.index] for shard_slice in slices]


def generate_sharded_dataset(
    directory: str | Path,
    viewer_count: int,
    shard_count: int,
    seed: int = 0,
    graph: StoryGraph | None = None,
    config: SessionConfig | None = None,
    workers: int | None = None,
    shard_workers: int | None = None,
    write_pcaps: bool = True,
    dataset_name: str = "iitm-bandersnatch-synthetic",
    progress: ProgressCallback | None = None,
    resume: bool = False,
    status: Callable[[ShardSlice, str], None] | None = None,
) -> ShardedDataset:
    """Generate a population as shards, streaming each shard to disk.

    Only the viewer attributes of the whole population (cheap: a few strings
    per viewer) plus one in-flight window of sessions exist in memory at any
    time; sessions are persisted through :class:`DatasetWriter` as the engine
    completes them.  ``progress`` is invoked as ``(done_viewers,
    viewer_count)`` across the whole population.

    ``shard_workers`` fans whole shards out over a process pool
    (:class:`~repro.engine.executor.BatchExecutor` semantics: ``None``/``1``
    serial, ``0`` one worker per core, ``N > 1`` a pool of ``N``), each
    shard worker in turn running its sessions with the per-session
    ``workers`` fan-out.  Because shards are independent directories and
    every session's bytes derive from ``(dataset seed, viewer id)`` alone,
    the parallel run's output — pcaps, per-shard metadata and the manifest —
    is byte-identical to the serial run's, and the per-shard ``.inprogress``
    crash-safety semantics are unchanged (a killed run leaves each in-flight
    shard detectably partial, exactly as the serial path does).  On the pool
    path ``progress`` advances at shard granularity.

    With ``resume=True`` an interrupted run is picked up where it stopped:
    shards that finalised cleanly (and verifiably belong to this population
    and seed) are skipped without re-reading a pcap, partially-written shards
    are moved aside via :func:`quarantine_partial_shard`, and only the
    missing work is regenerated.  Session seeds derive from the dataset seed
    and the viewer id alone, so the resumed directory is byte-identical to
    one produced by a single uninterrupted run; shards whose recorded name,
    seed, session configuration or pcap layout does not match this call's
    arguments are detected and regenerated rather than absorbed.
    ``status``, when given, is
    invoked once per shard with the slice and one of ``SHARD_GENERATED``,
    ``SHARD_SKIPPED`` or ``SHARD_QUARANTINED`` (a quarantined shard also
    reports ``SHARD_GENERATED`` once regenerated).

    Returns the :class:`ShardedDataset`, with its manifest already written.
    """
    directory = Path(directory)
    graph = graph or default_study_script()
    config = config or SessionConfig()
    slices = plan_shards(viewer_count, shard_count)
    viewers = generate_population(viewer_count, seed=seed)
    directory.mkdir(parents=True, exist_ok=True)
    # Invalidate any previous run's manifest up front: it is rewritten only
    # after every shard is in place, so a run that crashes mid-way can never
    # leave a stale manifest pointing at a mixture of old and new shards.
    (directory / SHARDS_MANIFEST_FILENAME).unlink(missing_ok=True)
    # Shard directories beyond this run's plan (debris of an earlier run
    # with a larger shard count) would otherwise survive untouched and look
    # like valid data; move them aside with the other quarantined debris.
    for existing in sorted(directory.iterdir()):
        match = re.fullmatch(r"shard-(\d{3,})", existing.name)
        if match and existing.is_dir() and int(match.group(1)) >= len(slices):
            quarantine_partial_shard(existing)
    shard_summaries = _generate_shards(
        directory,
        slices,
        shard_count=shard_count,
        viewers=viewers,
        total_viewers=viewer_count,
        seed=seed,
        graph=graph,
        config=config,
        workers=workers,
        shard_workers=shard_workers,
        write_pcaps=write_pcaps,
        dataset_name=dataset_name,
        progress=progress,
        resume=resume,
        status=status,
    )
    dataset = ShardedDataset(
        directory=directory,
        name=dataset_name,
        seed=seed,
        viewer_count=viewer_count,
        shard_summaries=shard_summaries,
    )
    dataset.save_manifest()
    return dataset


def generate_shard_subset(
    directory: str | Path,
    viewer_count: int,
    shard_count: int,
    only_shards: Sequence[int],
    seed: int = 0,
    graph: StoryGraph | None = None,
    config: SessionConfig | None = None,
    workers: int | None = None,
    shard_workers: int | None = None,
    write_pcaps: bool = True,
    dataset_name: str = "iitm-bandersnatch-synthetic",
    progress: ProgressCallback | None = None,
    resume: bool = False,
    status: Callable[[ShardSlice, str], None] | None = None,
) -> list[ShardSummary]:
    """Generate only the named shards of a population's shard plan.

    The distribution primitive: several machines each run the same plan
    (``viewer_count``, ``shard_count``, ``seed``) with disjoint
    ``only_shards`` selections, rsync the resulting shard directories under
    one root, and :func:`stitch_sharded_dataset` verifies and publishes the
    merged manifest.  Shard membership is a pure function of the plan and
    session bytes derive from the dataset seed and viewer id alone, so the
    union of the machines' outputs is byte-identical to one machine
    generating everything.

    No ``shards.json`` manifest is written — a subset is not a complete
    dataset — and any stale manifest in ``directory`` is removed; shards
    outside the selection are left untouched (they may be another machine's
    rsync'd output).  ``progress`` counts viewers of the selected shards
    only.  ``resume``/``shard_workers``/``status`` behave exactly as in
    :func:`generate_sharded_dataset`.

    Returns the selected shards' summaries, in index order.
    """
    directory = Path(directory)
    graph = graph or default_study_script()
    config = config or SessionConfig()
    slices = plan_shards(viewer_count, shard_count)
    indices = sorted(set(int(index) for index in only_shards))
    if not indices:
        raise DatasetError("no shards selected; name at least one shard index")
    out_of_range = [index for index in indices if not 0 <= index < shard_count]
    if out_of_range:
        raise DatasetError(
            f"shard indices {out_of_range} are out of range for "
            f"{shard_count} shards (valid indices: 0-{shard_count - 1})"
        )
    selected = [slices[index] for index in indices]
    viewers = generate_population(viewer_count, seed=seed)
    directory.mkdir(parents=True, exist_ok=True)
    # A manifest can only describe a complete run; regenerating any member
    # shard invalidates it.  Stitching re-publishes it once every machine's
    # shards are in place.
    (directory / SHARDS_MANIFEST_FILENAME).unlink(missing_ok=True)
    return _generate_shards(
        directory,
        selected,
        shard_count=shard_count,
        viewers=viewers,
        total_viewers=sum(
            shard_slice.viewer_count for shard_slice in selected
        ),
        seed=seed,
        graph=graph,
        config=config,
        workers=workers,
        shard_workers=shard_workers,
        write_pcaps=write_pcaps,
        dataset_name=dataset_name,
        progress=progress,
        resume=resume,
        status=status,
    )


def discover_shard_directories(directory: str | Path) -> list[tuple[int, Path]]:
    """The ``shard-NNN`` directories under ``directory``, sorted by index.

    Quarantined debris (``shard-NNN.quarantined-*``) is excluded by
    construction.  Raises a :class:`DatasetError` when no shard directory is
    found — the caller is pointing at something that is not (yet) a sharded
    dataset root.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise DatasetError(f"{directory} is not a directory")
    found: list[tuple[int, Path]] = []
    for entry in sorted(directory.iterdir()):
        match = re.fullmatch(r"shard-(\d{3,})", entry.name)
        if match and entry.is_dir():
            found.append((int(match.group(1)), entry))
    if not found:
        raise DatasetError(
            f"no shard-NNN directories found under {directory} (generate "
            "them with `repro generate-dataset --shards N [--only-shards "
            "...]`)"
        )
    return sorted(found)


def _plan_totals(metadata: Mapping[str, object]) -> Mapping[str, object] | None:
    """The shard-count/population part of a shard's recorded plan, if any."""
    plan = metadata.get("shard")
    if not isinstance(plan, Mapping):
        return None
    return {
        "count": plan.get("count"),
        "population_viewer_count": plan.get("population_viewer_count"),
    }


def load_consistent_shard_metadata(
    shard_directories: Sequence[tuple[int, Path]],
) -> list[Mapping[str, object]]:
    """Load each shard's metadata index, requiring one generation run.

    Every shard must have finalised cleanly and record the same dataset
    name, seed, session configuration, story-graph fingerprint and shard
    plan totals (shard count, population size) as the first — shards
    rsync'd together from *different* runs must fail loudly here, not train
    or stitch into a silently mixed corpus.  Returns the metadata mappings
    in the given order.
    """
    if not shard_directories:
        raise DatasetError("no shard directories to load")
    loaded: list[Mapping[str, object]] = []
    reference: Mapping[str, object] | None = None
    reference_name = ""
    for index, shard_directory in shard_directories:
        if not dataset_is_complete(shard_directory):
            raise DatasetError(
                f"shard {shard_directory.name} is incomplete (interrupted "
                "generation?); regenerate it with `repro generate-dataset "
                f"--shards N --only-shards {index}` or repair the root with "
                "`--resume`"
            )
        metadata = load_dataset_metadata(shard_directory)
        plan = metadata.get("shard")
        if isinstance(plan, Mapping) and plan.get("index") != index:
            # A shard-NNN directory must hold the plan's shard NNN: a
            # mis-rsynced or renamed copy would otherwise fold the same
            # viewers in twice (training) or under the wrong slice (stitch).
            raise DatasetError(
                f"shard {shard_directory.name} records shard plan index "
                f"{plan.get('index')!r} (mis-rsynced or renamed shard "
                "directory?); every shard-NNN directory must hold the "
                "plan's shard NNN"
            )
        if reference is None:
            reference = metadata
            reference_name = shard_directory.name
        else:
            for field, value, reference_value in (
                *(
                    (field, metadata.get(field), reference.get(field))
                    for field in (
                        "name",
                        "seed",
                        "session_config",
                        "graph_fingerprint",
                    )
                ),
                ("shard plan", _plan_totals(metadata), _plan_totals(reference)),
            ):
                if value != reference_value:
                    raise DatasetError(
                        f"shard {shard_directory.name} records "
                        f"{field}={value!r} but "
                        f"{reference_name} records {reference_value!r} "
                        "(mixed generation runs?); every shard must come "
                        "from the same plan (viewer count, shard count, "
                        "seed, config and script)"
                    )
        loaded.append(metadata)
    return loaded


def stitch_sharded_dataset(
    directory: str | Path,
    graph: StoryGraph | None = None,
    status: Callable[[ShardSlice, str], None] | None = None,
) -> ShardedDataset:
    """Verify rsync'd-together shards and publish the merged manifest.

    The distributed counterpart of ``resume``: machines that split one
    generation plan via :func:`generate_shard_subset` copy their shard
    directories under one root, and this function checks — without
    regenerating or re-reading a single pcap — that the union is exactly the
    plan's population: every one of the plan's shards present (the plan
    totals are recorded in each shard's metadata, so even missing *trailing*
    shards are detected), every shard finalised cleanly, all shards from the
    same run (name, seed, session config, story-graph fingerprint, plan
    totals), and each shard holding precisely its slice's viewer ids with
    every recorded trace file on disk.  The plan itself (viewer count, shard
    count, seed, configuration) is read from the shard metadata, so
    stitching needs no flags to repeat.

    On success the ``shards.json`` manifest is written atomically and the
    loaded :class:`ShardedDataset` returned; any failure raises a
    :class:`DatasetError` naming the shard and the fix (regenerate the
    missing/foreign shard with ``--only-shards``, or re-run the generating
    machine).  ``status``, when given, is invoked as ``(slice,
    SHARD_VERIFIED)`` per verified shard.
    """
    directory = Path(directory)
    graph = graph or default_study_script()
    found = discover_shard_directories(directory)
    metadata_by_shard = load_consistent_shard_metadata(found)
    reference = metadata_by_shard[0]
    for field in ("seed", "session_config", "shard"):
        if field not in reference:
            raise DatasetError(
                f"shard {found[0][1].name} does not record its {field!r}, so "
                "the stitched dataset cannot be verified against its "
                "generation plan (re-generate with the current tooling)"
            )
    plan = _plan_totals(reference)
    assert plan is not None  # "shard" key checked above
    try:
        shard_count = int(plan["count"])  # type: ignore[arg-type]
        viewer_count = int(plan["population_viewer_count"])  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError) as error:
        raise DatasetError(
            f"shard {found[0][1].name} records a malformed shard plan: "
            f"{error!r}"
        ) from error
    # The plan totals come from the shards themselves, so a root that lost
    # its *trailing* shards cannot masquerade as a smaller complete dataset.
    indices = [index for index, _path in found]
    unexpected = sorted(set(indices) - set(range(shard_count)))
    if unexpected:
        raise DatasetError(
            f"cannot stitch {directory}: shard indices {unexpected} lie "
            f"beyond the recorded plan of {shard_count} shards (mixed "
            "generation runs?)"
        )
    missing = sorted(set(range(shard_count)) - set(indices))
    if missing:
        raise DatasetError(
            f"cannot stitch {directory}: shard indices {missing} are missing "
            f"(found {len(indices)} of the plan's {shard_count} shards); "
            f"generate them with `repro generate-dataset --shards "
            f"{shard_count} --only-shards "
            f"{','.join(str(index) for index in missing)}` or rsync the "
            "missing machine's output into place"
        )
    require_generating_graph(reference.get("graph_fingerprint"), graph, directory)
    seed = int(reference["seed"])
    dataset_name = str(reference["name"])
    config = session_config_from_metadata(dict(reference))
    write_pcaps = any(
        "trace_file" in entry for entry in reference["entries"]  # type: ignore[union-attr]
    )
    slices = plan_shards(viewer_count, shard_count)
    viewers = generate_population(viewer_count, seed=seed)
    graph_fingerprint = graph.fingerprint()
    summaries: list[ShardSummary] = []
    for (index, shard_directory), metadata in zip(found, metadata_by_shard):
        mismatch, summary = _shard_reuse_check(
            shard_directory,
            slices[index],
            shard_count,
            viewers,
            seed,
            write_pcaps,
            dataset_name,
            config,  # type: ignore[arg-type]
            graph_fingerprint,
            metadata=metadata,
        )
        if mismatch is not None:
            raise DatasetError(
                f"shard {shard_directory.name} does not verify against the "
                f"run's plan ({viewer_count} viewers across {shard_count} "
                f"shards, seed {seed}): {mismatch}; regenerate it "
                f"with `repro generate-dataset --shards {shard_count} "
                f"--only-shards {index}`"
            )
        assert summary is not None  # no mismatch implies a summary
        summaries.append(summary)
        if status is not None:
            status(slices[index], SHARD_VERIFIED)
    dataset = ShardedDataset(
        directory=directory,
        name=dataset_name,
        seed=seed,
        viewer_count=viewer_count,
        shard_summaries=summaries,
    )
    dataset.save_manifest()
    return dataset
