"""On-disk format of the dataset.

A saved dataset is a directory::

    dataset/
      metadata.json        # index: per-viewer attributes + ground truth
      traces/
        viewer-000.pcap    # one standard pcap per viewer
        viewer-001.pcap
        ...

The metadata deliberately never contains the record-length features — they
must be re-derived from the pcaps, keeping the saved artefact equivalent to
what a real study would release.

Large populations are persisted **sharded**: the population is split into
deterministic contiguous slices (see :mod:`repro.dataset.shards`) and each
slice is saved as an independent dataset directory in exactly the layout
above, side by side under one root with a manifest describing the split::

    dataset/
      shards.json          # manifest: seed, shard count, per-shard summaries
      shard-000/
        metadata.json      # a complete, self-contained dataset index
        traces/
          viewer-000.pcap
          ...
      shard-001/
        metadata.json
        traces/
          viewer-004.pcap
          ...

Every shard is a valid standalone dataset (``repro train`` and ``repro
attack`` work on a single shard directory), and because session seeds derive
from the dataset seed and the viewer id alone, the pcaps inside a shard are
byte-identical to the ones an unsharded save of the same population writes.

Writing happens incrementally through :class:`DatasetWriter`, which persists
one data point at a time (the streaming generation path hands points over as
the engine completes them), accumulating only the small JSON entries in
memory; :func:`save_dataset_metadata` is the one-shot wrapper over it.

A directory being written carries an ``.inprogress`` marker from the moment
the writer opens until it finalises cleanly, and the metadata index itself is
published atomically (written to a temporary file, then renamed into place).
A crash therefore always leaves one of two unambiguous states behind: a
complete dataset (``metadata.json`` present, no marker) or a partial one
(marker present and/or no index) that resumable generation can detect and
quarantine — never a directory that merely *looks* complete.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Mapping, Sequence

from repro.dataset.collection import DataPoint
from repro.exceptions import DatasetError, StreamingError
from repro.narrative.graph import StoryGraph
from repro.streaming.session import SessionConfig

METADATA_FILENAME = "metadata.json"
TRACES_DIRNAME = "traces"
INPROGRESS_FILENAME = ".inprogress"
FORMAT_VERSION = 1


def dataset_is_complete(directory: str | Path) -> bool:
    """Whether ``directory`` holds a cleanly finalised dataset.

    Complete means the metadata index exists *and* no ``.inprogress`` marker
    is left over from an interrupted writer.  The index's contents are not
    validated here; use :func:`load_dataset_metadata` for that.
    """
    directory = Path(directory)
    return (directory / METADATA_FILENAME).exists() and not (
        directory / INPROGRESS_FILENAME
    ).exists()


def dataset_is_partial(directory: str | Path) -> bool:
    """Whether ``directory`` holds the debris of an interrupted write.

    Partial means the directory exists but is not complete: either the
    ``.inprogress`` marker survived a crash, or packet traces were written
    without the metadata index ever being published.
    """
    directory = Path(directory)
    return directory.exists() and not dataset_is_complete(directory)


class DatasetWriter:
    """Incremental dataset writer: persist data points as they arrive.

    Streams a dataset to disk one :class:`DataPoint` at a time — each call
    to :meth:`add` writes the point's pcap immediately (when ``write_pcaps``
    is on) and keeps only its JSON metadata entry in memory, so writing an
    ``n``-viewer dataset needs O(1) session objects alive rather than O(n).
    :meth:`close` (or exiting the context manager without an error) writes
    ``metadata.json``; the resulting directory is byte-identical to what
    :func:`save_dataset_metadata` produces for the same points.

    The writer drops an ``.inprogress`` marker into the directory on open and
    removes it only after the metadata index has been atomically renamed into
    place, so an interrupted run is always detectable (see
    :func:`dataset_is_partial`).
    """

    def __init__(
        self,
        directory: str | Path,
        dataset_name: str = "iitm-bandersnatch-synthetic",
        write_pcaps: bool = True,
        seed: int | None = None,
        config: SessionConfig | None = None,
        graph: StoryGraph | None = None,
        shard: Mapping[str, int] | None = None,
        sidecar: bool = True,
    ) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._traces_dir = self._directory / TRACES_DIRNAME
        self._dataset_name = dataset_name
        self._write_pcaps = write_pcaps
        self._seed = seed
        self._config = config
        self._graph = graph
        self._shard = dict(shard) if shard is not None else None
        self._entries: list[dict[str, object]] = []
        self._closed = False
        self._sidecar = None
        if write_pcaps and sidecar:
            # Imported lazily: the sidecar module reads this one's layout
            # constants, so a module-level import would be circular.
            from repro.dataset.sidecar import SidecarWriter

            self._sidecar = SidecarWriter()
        self.inprogress_path.touch()

    @property
    def directory(self) -> Path:
        """The dataset directory being written."""
        return self._directory

    @property
    def metadata_path(self) -> Path:
        """Where ``metadata.json`` lives (written on :meth:`close`)."""
        return self._directory / METADATA_FILENAME

    @property
    def inprogress_path(self) -> Path:
        """The marker that flags the directory as mid-write."""
        return self._directory / INPROGRESS_FILENAME

    @property
    def entry_count(self) -> int:
        """Data points persisted so far."""
        return len(self._entries)

    def add(self, point: DataPoint) -> dict[str, object]:
        """Persist one data point; returns its metadata entry."""
        if self._closed:
            raise DatasetError("dataset writer is already closed")
        entry = point.metadata()
        if self._write_pcaps:
            self._traces_dir.mkdir(parents=True, exist_ok=True)
            pcap_path = self._traces_dir / f"{point.viewer.viewer_id}.pcap"
            point.session.trace.to_pcap(pcap_path)
            entry["trace_file"] = str(pcap_path.relative_to(self._directory))
            entry["client_ip"] = point.session.trace.client_ip
            entry["server_ip"] = point.session.trace.server_ip
            if self._sidecar is not None:
                from repro.dataset.sidecar import sidecar_entry_for

                self._sidecar.add(
                    sidecar_entry_for(
                        pcap_path,
                        point.session.trace,
                        viewer_id=point.viewer.viewer_id,
                        environment=point.session.condition.fingerprint_key,
                    )
                )
        self._entries.append(entry)
        return entry

    def close(self) -> Path:
        """Write ``metadata.json`` and seal the writer; returns its path.

        Idempotent: closing twice returns the same path without rewriting.
        """
        if self._closed:
            return self.metadata_path
        if not self._entries:
            raise DatasetError("cannot save an empty dataset")
        if self._sidecar is not None:
            # The columnar acceleration cache rides along with the pcaps it
            # mirrors (see repro.dataset.sidecar); written before the index
            # publishes, so a crash leaves the usual partial-dataset debris.
            self._sidecar.write(self._traces_dir)
        metadata: dict[str, object] = {
            "name": self._dataset_name,
            "format_version": FORMAT_VERSION,
            "viewer_count": len(self._entries),
            "entries": self._entries,
        }
        if self._seed is not None:
            # Stored so tooling (e.g. the CLI's `train` command) can regenerate
            # the labelled sessions; a real released dataset would omit it.
            metadata["seed"] = int(self._seed)
        if self._config is not None:
            # Stored so re-simulation (training, resume validation) replays
            # the sessions under exactly the configuration that produced the
            # pcaps, instead of trusting the caller to repeat unrecorded
            # flags; like the seed, a real released dataset would omit it.
            metadata["session_config"] = asdict(self._config)
        if self._graph is not None:
            # The story graph itself is code, not data; its digest is enough
            # for re-simulation and resume to refuse a *different* script
            # rather than silently replaying the wrong one.
            metadata["graph_fingerprint"] = self._graph.fingerprint()
        if self._shard is not None:
            # A shard records its place in the whole generation plan (index,
            # shard count, population total), so stitching machines' outputs
            # back together can prove completeness — a root missing its
            # *trailing* shards would otherwise look like a smaller but
            # complete dataset.
            metadata["shard"] = self._shard
        # Publish atomically: a reader (or a resumed run) can never observe a
        # truncated index, only its presence or absence.
        staging_path = self.metadata_path.with_name(METADATA_FILENAME + ".tmp")
        staging_path.write_text(json.dumps(metadata, indent=2), encoding="utf-8")
        os.replace(staging_path, self.metadata_path)
        self.inprogress_path.unlink(missing_ok=True)
        self._closed = True
        return self.metadata_path

    def __enter__(self) -> "DatasetWriter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        # A failed generation run must not masquerade as a complete dataset,
        # so the index is only written on a clean exit.
        if exc_type is None:
            self.close()


def save_dataset_metadata(
    points: Sequence[DataPoint],
    directory: str | Path,
    dataset_name: str = "iitm-bandersnatch-synthetic",
    write_pcaps: bool = True,
    seed: int | None = None,
    config: SessionConfig | None = None,
    graph: StoryGraph | None = None,
) -> Path:
    """Write the metadata index (and optionally per-viewer pcaps).

    Returns the path of the metadata file.
    """
    if not points:
        raise DatasetError("cannot save an empty dataset")
    with DatasetWriter(
        directory,
        dataset_name=dataset_name,
        write_pcaps=write_pcaps,
        seed=seed,
        config=config,
        graph=graph,
    ) as writer:
        for point in points:
            writer.add(point)
    return writer.metadata_path


def snapshot_dataset_files(
    directory: str | Path, include_quarantined: bool = False
) -> dict[str, bytes]:
    """Every file under a dataset tree, keyed by path relative to its root.

    The byte-level equivalence primitive: two dataset roots — a serial and a
    shard-parallel run, an uninterrupted and a resumed one, a single-machine
    root and a stitched union of subsets — are byte-identical iff their
    snapshots compare equal.  Quarantined debris
    (``shard-NNN.quarantined-*``) is excluded unless asked for, since it is
    deliberately preserved history rather than dataset content.
    """
    directory = Path(directory)
    snapshot: dict[str, bytes] = {}
    for path in sorted(directory.rglob("*")):
        if not path.is_file():
            continue
        # Filter on the *relative* path: the marker must identify debris
        # inside the tree, not a root that itself lives under a quarantined
        # name (snapshotting quarantined debris directly is legitimate).
        relative = str(path.relative_to(directory))
        if include_quarantined or ".quarantined-" not in relative:
            snapshot[relative] = path.read_bytes()
    return snapshot


def session_config_from_metadata(metadata: dict[str, object]) -> SessionConfig | None:
    """The session configuration a dataset records, if any.

    Datasets written before configs were recorded return ``None``; callers
    fall back to their own default.
    """
    data = metadata.get("session_config")
    if data is None:
        return None
    try:
        return SessionConfig(**data)  # type: ignore[arg-type]
    except (TypeError, ValueError, StreamingError) as error:
        raise DatasetError(
            f"dataset metadata records an invalid session_config: {error}"
        ) from error


def load_dataset_metadata(directory: str | Path) -> dict[str, object]:
    """Load and validate the metadata index of a saved dataset."""
    metadata_path = Path(directory) / METADATA_FILENAME
    try:
        metadata = json.loads(metadata_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise DatasetError(f"cannot load dataset metadata: {error}") from error
    for key in ("name", "format_version", "viewer_count", "entries"):
        if key not in metadata:
            raise DatasetError(f"dataset metadata is missing the {key!r} field")
    if metadata["format_version"] != FORMAT_VERSION:
        raise DatasetError(
            f"unsupported dataset format version {metadata['format_version']}"
        )
    if metadata["viewer_count"] != len(metadata["entries"]):
        raise DatasetError("dataset metadata viewer count does not match its entries")
    return metadata
