"""On-disk format of the dataset.

A saved dataset is a directory::

    dataset/
      metadata.json        # index: per-viewer attributes + ground truth
      traces/
        viewer-000.pcap    # one standard pcap per viewer
        viewer-001.pcap
        ...

The metadata deliberately never contains the record-length features — they
must be re-derived from the pcaps, keeping the saved artefact equivalent to
what a real study would release.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.dataset.collection import DataPoint
from repro.exceptions import DatasetError

METADATA_FILENAME = "metadata.json"
TRACES_DIRNAME = "traces"
FORMAT_VERSION = 1


def save_dataset_metadata(
    points: Sequence[DataPoint],
    directory: str | Path,
    dataset_name: str = "iitm-bandersnatch-synthetic",
    write_pcaps: bool = True,
    seed: int | None = None,
) -> Path:
    """Write the metadata index (and optionally per-viewer pcaps).

    Returns the path of the metadata file.
    """
    if not points:
        raise DatasetError("cannot save an empty dataset")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    traces_dir = directory / TRACES_DIRNAME
    entries: list[dict[str, object]] = []
    for point in points:
        entry = point.metadata()
        if write_pcaps:
            traces_dir.mkdir(parents=True, exist_ok=True)
            pcap_path = traces_dir / f"{point.viewer.viewer_id}.pcap"
            point.session.trace.to_pcap(pcap_path)
            entry["trace_file"] = str(pcap_path.relative_to(directory))
            entry["client_ip"] = point.session.trace.client_ip
            entry["server_ip"] = point.session.trace.server_ip
        entries.append(entry)
    metadata = {
        "name": dataset_name,
        "format_version": FORMAT_VERSION,
        "viewer_count": len(points),
        "entries": entries,
    }
    if seed is not None:
        # Stored so tooling (e.g. the CLI's `train` command) can regenerate the
        # labelled sessions; a real released dataset would omit it.
        metadata["seed"] = int(seed)
    metadata_path = directory / METADATA_FILENAME
    metadata_path.write_text(json.dumps(metadata, indent=2), encoding="utf-8")
    return metadata_path


def load_dataset_metadata(directory: str | Path) -> dict[str, object]:
    """Load and validate the metadata index of a saved dataset."""
    metadata_path = Path(directory) / METADATA_FILENAME
    try:
        metadata = json.loads(metadata_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise DatasetError(f"cannot load dataset metadata: {error}") from error
    for key in ("name", "format_version", "viewer_count", "entries"):
        if key not in metadata:
            raise DatasetError(f"dataset metadata is missing the {key!r} field")
    if metadata["format_version"] != FORMAT_VERSION:
        raise DatasetError(
            f"unsupported dataset format version {metadata['format_version']}"
        )
    if metadata["viewer_count"] != len(metadata["entries"]):
        raise DatasetError("dataset metadata viewer count does not match its entries")
    return metadata
