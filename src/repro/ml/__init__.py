"""From-scratch machine-learning helpers.

No scikit-learn is available (or needed): the attack's core classifier is an
interval/band rule learned directly from labelled record lengths, and the
generic classifiers here (k-nearest-neighbours, Gaussian naive Bayes, a depth-
limited decision tree and multinomial logistic regression) exist to show that
the side-channel is learnable without the hand-built bins and to support the
ablation benchmarks.

All estimators follow the same minimal protocol: ``fit(features, labels)``
then ``predict(features)``, with features as 2-D ``numpy`` arrays and labels
as 1-D arrays of strings or integers.
"""

from repro.ml.split import StratifiedSplit, kfold_indices, train_test_split
from repro.ml.metrics import (
    ConfusionMatrix,
    accuracy_score,
    classification_report,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.base import Classifier
from repro.ml.interval import IntervalClassifier
from repro.ml.knn import KNearestNeighbors
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.registry import (
    CLASSIFIER_REGISTRY,
    build_classifier,
    classifier_from_spec,
    classifier_names,
    classifier_spec,
)

__all__ = [
    "CLASSIFIER_REGISTRY",
    "Classifier",
    "ConfusionMatrix",
    "DecisionTreeClassifier",
    "GaussianNaiveBayes",
    "IntervalClassifier",
    "KNearestNeighbors",
    "LogisticRegressionClassifier",
    "StratifiedSplit",
    "accuracy_score",
    "build_classifier",
    "classification_report",
    "classifier_from_spec",
    "classifier_names",
    "classifier_spec",
    "f1_score",
    "kfold_indices",
    "precision_score",
    "recall_score",
    "train_test_split",
]
