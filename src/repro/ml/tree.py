"""A depth-limited CART-style decision tree (Gini impurity, axis-aligned splits)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import MLError
from repro.ml.base import Classifier, as_feature_matrix, as_label_array


@dataclass
class _Node:
    """A tree node; leaves carry a prediction, internal nodes a split."""

    prediction: object | None = None
    feature_index: int | None = None
    threshold: float | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.prediction is not None


def _gini(labels: np.ndarray) -> float:
    _, counts = np.unique(labels.astype(str), return_counts=True)
    proportions = counts / counts.sum()
    return float(1.0 - np.sum(proportions**2))


def _majority(labels: np.ndarray) -> object:
    values, counts = np.unique(labels.astype(str), return_counts=True)
    winner = values[np.argmax(counts)]
    for label in labels:
        if str(label) == winner:
            return label
    return labels[0]  # pragma: no cover - unreachable


class DecisionTreeClassifier(Classifier):
    """Greedy binary tree minimising Gini impurity."""

    def __init__(self, max_depth: int = 8, min_samples_split: int = 2) -> None:
        if max_depth < 1:
            raise MLError(f"max depth must be at least 1, got {max_depth}")
        if min_samples_split < 2:
            raise MLError(f"min samples split must be at least 2, got {min_samples_split}")
        self._max_depth = max_depth
        self._min_samples_split = min_samples_split
        self._root: _Node | None = None

    def fit(self, features: object, labels: object) -> "DecisionTreeClassifier":
        matrix = as_feature_matrix(features)
        label_array = as_label_array(labels, expected_length=matrix.shape[0])
        self._root = self._grow(matrix, label_array, depth=0)
        self._fitted = True
        return self

    def _grow(self, matrix: np.ndarray, labels: np.ndarray, depth: int) -> _Node:
        unique = set(labels.astype(str).tolist())
        if (
            len(unique) == 1
            or depth >= self._max_depth
            or labels.size < self._min_samples_split
        ):
            return _Node(prediction=_majority(labels))
        best_gain = 0.0
        best: tuple[int, float, np.ndarray] | None = None
        parent_impurity = _gini(labels)
        for feature_index in range(matrix.shape[1]):
            values = matrix[:, feature_index]
            candidates = np.unique(values)
            if candidates.size < 2:
                continue
            thresholds = (candidates[:-1] + candidates[1:]) / 2.0
            for threshold in thresholds:
                left_mask = values <= threshold
                left_count = int(left_mask.sum())
                if left_count == 0 or left_count == labels.size:
                    continue
                left_impurity = _gini(labels[left_mask])
                right_impurity = _gini(labels[~left_mask])
                weighted = (
                    left_count * left_impurity
                    + (labels.size - left_count) * right_impurity
                ) / labels.size
                gain = parent_impurity - weighted
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best = (feature_index, float(threshold), left_mask)
        if best is None:
            return _Node(prediction=_majority(labels))
        feature_index, threshold, left_mask = best
        return _Node(
            feature_index=feature_index,
            threshold=threshold,
            left=self._grow(matrix[left_mask], labels[left_mask], depth + 1),
            right=self._grow(matrix[~left_mask], labels[~left_mask], depth + 1),
        )

    def predict(self, features: object) -> np.ndarray:
        self._check_fitted()
        assert self._root is not None
        matrix = as_feature_matrix(features)
        predictions = np.empty(matrix.shape[0], dtype=object)
        for row in range(matrix.shape[0]):
            node = self._root
            while not node.is_leaf:
                assert node.feature_index is not None and node.threshold is not None
                assert node.left is not None and node.right is not None
                if matrix[row, node.feature_index] <= node.threshold:
                    node = node.left
                else:
                    node = node.right
            predictions[row] = node.prediction
        return predictions

    def depth(self) -> int:
        """Actual depth of the grown tree (0 for a single leaf)."""
        self._check_fitted()

        def _depth(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._root)
