"""k-nearest-neighbours classifier (brute force, Euclidean metric)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import MLError
from repro.ml.base import Classifier, as_feature_matrix, as_label_array


class KNearestNeighbors(Classifier):
    """Majority vote among the ``k`` nearest training samples.

    Ties in the vote are broken toward the neighbour set's closest member's
    class, making predictions deterministic.
    """

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise MLError(f"k must be at least 1, got {k}")
        self._k = k
        self._features: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    @property
    def k(self) -> int:
        """Number of neighbours consulted."""
        return self._k

    def fit(self, features: object, labels: object) -> "KNearestNeighbors":
        matrix = as_feature_matrix(features)
        label_array = as_label_array(labels, expected_length=matrix.shape[0])
        self._features = matrix
        self._labels = label_array
        self._fitted = True
        return self

    def predict(self, features: object) -> np.ndarray:
        self._check_fitted()
        assert self._features is not None and self._labels is not None
        matrix = as_feature_matrix(features)
        if matrix.shape[1] != self._features.shape[1]:
            raise MLError(
                f"feature dimensionality mismatch: fitted with "
                f"{self._features.shape[1]}, got {matrix.shape[1]}"
            )
        k = min(self._k, self._features.shape[0])
        predictions = np.empty(matrix.shape[0], dtype=object)
        # Compute pairwise squared distances in one vectorised step.
        distances = (
            np.sum(matrix**2, axis=1, keepdims=True)
            - 2.0 * matrix @ self._features.T
            + np.sum(self._features**2, axis=1)
        )
        for row in range(matrix.shape[0]):
            order = np.argsort(distances[row], kind="stable")[:k]
            neighbour_labels = self._labels[order]
            values, counts = np.unique(neighbour_labels.astype(str), return_counts=True)
            best_count = counts.max()
            tied = set(values[counts == best_count].tolist())
            winner = next(
                label for label in neighbour_labels if str(label) in tied
            )
            predictions[row] = winner
        return predictions
