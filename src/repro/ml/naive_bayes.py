"""Gaussian naive Bayes classifier."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, as_feature_matrix, as_label_array

_MIN_VARIANCE = 1e-9


class GaussianNaiveBayes(Classifier):
    """Per-class independent Gaussians per feature, maximum-posterior decision."""

    def __init__(self, variance_floor: float = _MIN_VARIANCE) -> None:
        self._variance_floor = max(variance_floor, _MIN_VARIANCE)
        self._classes: np.ndarray | None = None
        self._priors: np.ndarray | None = None
        self._means: np.ndarray | None = None
        self._variances: np.ndarray | None = None

    def fit(self, features: object, labels: object) -> "GaussianNaiveBayes":
        matrix = as_feature_matrix(features)
        label_array = as_label_array(labels, expected_length=matrix.shape[0])
        classes = np.asarray(sorted(set(label_array.tolist()), key=str), dtype=object)
        priors = np.zeros(classes.size)
        means = np.zeros((classes.size, matrix.shape[1]))
        variances = np.zeros((classes.size, matrix.shape[1]))
        for index, label in enumerate(classes):
            mask = label_array == label
            class_rows = matrix[mask]
            priors[index] = class_rows.shape[0] / matrix.shape[0]
            means[index] = class_rows.mean(axis=0)
            variances[index] = class_rows.var(axis=0) + self._variance_floor
        self._classes = classes
        self._priors = priors
        self._means = means
        self._variances = variances
        self._fitted = True
        return self

    def predict_log_proba(self, features: object) -> np.ndarray:
        """Unnormalised per-class log posterior for each sample."""
        self._check_fitted()
        assert (
            self._classes is not None
            and self._priors is not None
            and self._means is not None
            and self._variances is not None
        )
        matrix = as_feature_matrix(features)
        log_posteriors = np.zeros((matrix.shape[0], self._classes.size))
        for index in range(self._classes.size):
            mean = self._means[index]
            variance = self._variances[index]
            log_likelihood = -0.5 * (
                np.log(2.0 * np.pi * variance) + (matrix - mean) ** 2 / variance
            ).sum(axis=1)
            log_posteriors[:, index] = np.log(self._priors[index]) + log_likelihood
        return log_posteriors

    def predict(self, features: object) -> np.ndarray:
        log_posteriors = self.predict_log_proba(features)
        assert self._classes is not None
        best = np.argmax(log_posteriors, axis=1)
        return self._classes[best]
