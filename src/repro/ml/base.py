"""The minimal estimator protocol shared by every classifier."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import MLError, NotFittedError


def as_feature_matrix(features: object) -> np.ndarray:
    """Coerce input into a 2-D float array (n_samples, n_features)."""
    array = np.asarray(features, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise MLError(f"features must be 1-D or 2-D, got shape {array.shape}")
    if array.shape[0] == 0:
        raise MLError("feature matrix must contain at least one sample")
    return array


def as_label_array(labels: object, expected_length: int | None = None) -> np.ndarray:
    """Coerce labels into a 1-D object array, optionally checking the length."""
    array = np.asarray(labels, dtype=object).reshape(-1)
    if array.size == 0:
        raise MLError("label array must contain at least one sample")
    if expected_length is not None and array.size != expected_length:
        raise MLError(
            f"got {array.size} labels for {expected_length} samples"
        )
    return array


class Classifier(ABC):
    """Base class: ``fit`` then ``predict``; ``score`` for convenience."""

    _fitted: bool = False

    @abstractmethod
    def fit(self, features: object, labels: object) -> "Classifier":
        """Learn from a feature matrix and matching labels; returns ``self``."""

    @abstractmethod
    def predict(self, features: object) -> np.ndarray:
        """Predict one label per row of ``features``."""

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before calling predict()"
            )

    def score(self, features: object, labels: object) -> float:
        """Accuracy of :meth:`predict` against the given labels."""
        predictions = self.predict(features)
        truth = as_label_array(labels, expected_length=len(predictions))
        return float(np.mean(predictions == truth))
