"""Interval (band) classifier over a single scalar feature.

This is the classifier the paper's technique amounts to: for each class,
learn the closed interval of record lengths observed in training; at
prediction time a value is assigned to the class whose interval contains it
(preferring the *narrowest* containing interval, so the tight JSON bands win
over the broad "other" band), and to a fallback class when no interval
matches.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import priority_interval_codes
from repro.exceptions import MLError
from repro.ml.base import Classifier, as_feature_matrix, as_label_array


class IntervalClassifier(Classifier):
    """Per-class [min, max] bands over a scalar feature.

    Parameters
    ----------
    margin:
        The learned interval is widened by this absolute amount on both
        sides, giving robustness to small jitter never seen in training.
    fallback_label:
        Label returned when a value falls in no class interval.  Defaults to
        the majority training class.
    """

    def __init__(self, margin: float = 0.0, fallback_label: object | None = None) -> None:
        if margin < 0:
            raise MLError(f"margin must be non-negative, got {margin}")
        self._margin = margin
        self._fallback = fallback_label
        self._intervals: dict[object, tuple[float, float]] = {}

    @property
    def intervals(self) -> dict[object, tuple[float, float]]:
        """The learned per-class bands (after widening by the margin)."""
        self._check_fitted()
        return dict(self._intervals)

    @property
    def fallback_label(self) -> object:
        """The label used when no band matches."""
        self._check_fitted()
        return self._fallback

    def fit(self, features: object, labels: object) -> "IntervalClassifier":
        matrix = as_feature_matrix(features)
        if matrix.shape[1] != 1:
            raise MLError(
                f"IntervalClassifier works on a single scalar feature, got "
                f"{matrix.shape[1]} columns"
            )
        values = matrix[:, 0]
        label_array = as_label_array(labels, expected_length=values.size)
        self._intervals = {}
        counts: dict[object, int] = {}
        for label in sorted(set(label_array.tolist()), key=str):
            mask = label_array == label
            class_values = values[mask]
            self._intervals[label] = (
                float(class_values.min()) - self._margin,
                float(class_values.max()) + self._margin,
            )
            counts[label] = int(mask.sum())
        if self._fallback is None:
            self._fallback = max(counts, key=counts.get)
        self._fitted = True
        return self

    def predict(self, features: object) -> np.ndarray:
        self._check_fitted()
        matrix = as_feature_matrix(features)
        if matrix.shape[1] != 1:
            raise MLError("IntervalClassifier expects a single scalar feature")
        values = matrix[:, 0]
        # Vectorized narrowest-containing-interval: ordering the intervals by
        # the very (width, label) key the scalar oracle sorts its candidates
        # with makes "first containing interval" and "narrowest containing
        # interval" the same thing, so one kernel call replaces the per-value
        # candidate scan.  Code -1 (no interval) indexes the fallback parked
        # at the end of the label table.
        order = sorted(
            self._intervals.items(),
            key=lambda item: (item[1][1] - item[1][0], str(item[0])),
        )
        lows = np.asarray([low for _label, (low, _high) in order], dtype=np.float64)
        highs = np.asarray([high for _label, (_low, high) in order], dtype=np.float64)
        codes = priority_interval_codes(values, lows, highs)
        table = np.empty(len(order) + 1, dtype=object)
        for index, (label, _interval) in enumerate(order):
            table[index] = label
        table[len(order)] = self._fallback
        return table[codes]

    def _predict_scalar(self, features: object) -> np.ndarray:
        """Reference oracle: the original per-value candidate scan.

        Kept (and property-tested against :meth:`predict`) so the vectorized
        path is pinned to the paper's tie-breaking semantics exactly —
        narrowest containing interval wins, ties broken by label string.
        """
        self._check_fitted()
        matrix = as_feature_matrix(features)
        if matrix.shape[1] != 1:
            raise MLError("IntervalClassifier expects a single scalar feature")
        values = matrix[:, 0]
        predictions = np.empty(values.size, dtype=object)
        for index, value in enumerate(values):
            candidates = [
                (high - low, label)
                for label, (low, high) in self._intervals.items()
                if low <= value <= high
            ]
            if candidates:
                candidates.sort(key=lambda item: (item[0], str(item[1])))
                predictions[index] = candidates[0][1]
            else:
                predictions[index] = self._fallback
        return predictions
