"""Classification metrics: accuracy, precision/recall/F1 and confusion matrices."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import MLError


def _validate(y_true: object, y_pred: object) -> tuple[np.ndarray, np.ndarray]:
    true_array = np.asarray(y_true, dtype=object).reshape(-1)
    pred_array = np.asarray(y_pred, dtype=object).reshape(-1)
    if true_array.size == 0:
        raise MLError("cannot compute metrics on empty label arrays")
    if true_array.size != pred_array.size:
        raise MLError(
            f"label arrays differ in length: {true_array.size} vs {pred_array.size}"
        )
    return true_array, pred_array


def accuracy_score(y_true: object, y_pred: object) -> float:
    """Fraction of predictions that match the ground truth."""
    true_array, pred_array = _validate(y_true, y_pred)
    return float(np.mean(true_array == pred_array))


def precision_score(y_true: object, y_pred: object, positive_label: object) -> float:
    """Precision of one class: TP / (TP + FP); 1.0 when nothing was predicted positive."""
    true_array, pred_array = _validate(y_true, y_pred)
    predicted_positive = pred_array == positive_label
    if not predicted_positive.any():
        return 1.0
    true_positive = np.logical_and(predicted_positive, true_array == positive_label)
    return float(true_positive.sum() / predicted_positive.sum())


def recall_score(y_true: object, y_pred: object, positive_label: object) -> float:
    """Recall of one class: TP / (TP + FN); 1.0 when the class never occurs."""
    true_array, pred_array = _validate(y_true, y_pred)
    actual_positive = true_array == positive_label
    if not actual_positive.any():
        return 1.0
    true_positive = np.logical_and(actual_positive, pred_array == positive_label)
    return float(true_positive.sum() / actual_positive.sum())


def f1_score(y_true: object, y_pred: object, positive_label: object) -> float:
    """Harmonic mean of precision and recall for one class."""
    precision = precision_score(y_true, y_pred, positive_label)
    recall = recall_score(y_true, y_pred, positive_label)
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class ConfusionMatrix:
    """Row-per-true-class, column-per-predicted-class confusion matrix."""

    labels: tuple[object, ...]
    counts: np.ndarray

    @classmethod
    def from_predictions(cls, y_true: object, y_pred: object) -> "ConfusionMatrix":
        """Build the matrix from ground truth and predictions."""
        true_array, pred_array = _validate(y_true, y_pred)
        labels = tuple(sorted(set(true_array.tolist()) | set(pred_array.tolist()), key=str))
        index = {label: position for position, label in enumerate(labels)}
        counts = np.zeros((len(labels), len(labels)), dtype=int)
        for truth, prediction in zip(true_array, pred_array):
            counts[index[truth], index[prediction]] += 1
        return cls(labels=labels, counts=counts)

    def count(self, true_label: object, predicted_label: object) -> int:
        """Number of samples of ``true_label`` predicted as ``predicted_label``."""
        if true_label not in self.labels or predicted_label not in self.labels:
            raise MLError("label not present in the confusion matrix")
        row = self.labels.index(true_label)
        column = self.labels.index(predicted_label)
        return int(self.counts[row, column])

    @property
    def total(self) -> int:
        """Total number of samples."""
        return int(self.counts.sum())

    @property
    def accuracy(self) -> float:
        """Overall accuracy (trace over total)."""
        return float(np.trace(self.counts) / self.counts.sum())

    def as_rows(self) -> list[dict[str, object]]:
        """Printable rows: one per true class, with per-predicted-class counts."""
        rows: list[dict[str, object]] = []
        for row_index, true_label in enumerate(self.labels):
            row: dict[str, object] = {"true": true_label}
            for column_index, predicted_label in enumerate(self.labels):
                row[str(predicted_label)] = int(self.counts[row_index, column_index])
            rows.append(row)
        return rows


def classification_report(y_true: object, y_pred: object) -> dict[str, dict[str, float]]:
    """Per-class precision/recall/F1 plus overall accuracy."""
    true_array, pred_array = _validate(y_true, y_pred)
    labels = sorted(set(true_array.tolist()) | set(pred_array.tolist()), key=str)
    report: dict[str, dict[str, float]] = {}
    for label in labels:
        report[str(label)] = {
            "precision": precision_score(true_array, pred_array, label),
            "recall": recall_score(true_array, pred_array, label),
            "f1": f1_score(true_array, pred_array, label),
            "support": float(np.sum(true_array == label)),
        }
    report["overall"] = {"accuracy": accuracy_score(true_array, pred_array)}
    return report
