"""Multinomial logistic regression trained by full-batch gradient descent."""

from __future__ import annotations

import numpy as np

from repro.exceptions import MLError
from repro.ml.base import Classifier, as_feature_matrix, as_label_array


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=1, keepdims=True)


class LogisticRegressionClassifier(Classifier):
    """Softmax regression with L2 regularisation and feature standardisation."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        iterations: int = 500,
        l2: float = 1e-3,
    ) -> None:
        if learning_rate <= 0:
            raise MLError("learning rate must be positive")
        if iterations < 1:
            raise MLError("iterations must be at least 1")
        if l2 < 0:
            raise MLError("l2 penalty must be non-negative")
        self._learning_rate = learning_rate
        self._iterations = iterations
        self._l2 = l2
        self._classes: np.ndarray | None = None
        self._weights: np.ndarray | None = None
        self._bias: np.ndarray | None = None
        self._feature_mean: np.ndarray | None = None
        self._feature_scale: np.ndarray | None = None

    def _standardise(self, matrix: np.ndarray) -> np.ndarray:
        assert self._feature_mean is not None and self._feature_scale is not None
        return (matrix - self._feature_mean) / self._feature_scale

    def fit(self, features: object, labels: object) -> "LogisticRegressionClassifier":
        matrix = as_feature_matrix(features)
        label_array = as_label_array(labels, expected_length=matrix.shape[0])
        classes = np.asarray(sorted(set(label_array.tolist()), key=str), dtype=object)
        class_index = {label: index for index, label in enumerate(classes.tolist())}
        targets = np.zeros((matrix.shape[0], classes.size))
        for row, label in enumerate(label_array):
            targets[row, class_index[label]] = 1.0

        self._feature_mean = matrix.mean(axis=0)
        scale = matrix.std(axis=0)
        scale[scale == 0] = 1.0
        self._feature_scale = scale
        standardized = self._standardise(matrix)

        weights = np.zeros((matrix.shape[1], classes.size))
        bias = np.zeros(classes.size)
        for _ in range(self._iterations):
            probabilities = _softmax(standardized @ weights + bias)
            error = probabilities - targets
            gradient_weights = standardized.T @ error / matrix.shape[0] + self._l2 * weights
            gradient_bias = error.mean(axis=0)
            weights -= self._learning_rate * gradient_weights
            bias -= self._learning_rate * gradient_bias

        self._classes = classes
        self._weights = weights
        self._bias = bias
        self._fitted = True
        return self

    def predict_proba(self, features: object) -> np.ndarray:
        """Class-probability matrix (rows sum to 1, columns follow ``classes_``)."""
        self._check_fitted()
        assert self._weights is not None and self._bias is not None
        matrix = self._standardise(as_feature_matrix(features))
        return _softmax(matrix @ self._weights + self._bias)

    @property
    def classes_(self) -> np.ndarray:
        """Class labels in the order used by :meth:`predict_proba` columns."""
        self._check_fitted()
        assert self._classes is not None
        return self._classes

    def predict(self, features: object) -> np.ndarray:
        probabilities = self.predict_proba(features)
        assert self._classes is not None
        return self._classes[np.argmax(probabilities, axis=1)]
