"""The classifier registry: stable names + params dicts → :class:`Classifier`.

The arena's adaptive attacker is described on the wire as a classifier spec
(``classifier_spec``) and reconstructed per cell (``classifier_from_spec``),
so a sweep leased through the coordinator trains byte-identical estimators
on every worker.  See :mod:`repro.components` for the spec grammar.
"""

from __future__ import annotations

from typing import Mapping

from repro.components import ComponentRegistry
from repro.ml.base import Classifier
from repro.ml.interval import IntervalClassifier
from repro.ml.knn import KNearestNeighbors
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.tree import DecisionTreeClassifier

#: The registry of every sweepable estimator.
CLASSIFIER_REGISTRY = ComponentRegistry("classifier", Classifier)
CLASSIFIER_REGISTRY.register("interval", IntervalClassifier)
CLASSIFIER_REGISTRY.register("knn", KNearestNeighbors)
CLASSIFIER_REGISTRY.register("naive-bayes", GaussianNaiveBayes)
CLASSIFIER_REGISTRY.register("tree", DecisionTreeClassifier)
CLASSIFIER_REGISTRY.register("logistic", LogisticRegressionClassifier)


def classifier_names() -> tuple[str, ...]:
    """The registered classifier names, sorted."""
    return CLASSIFIER_REGISTRY.names()


def build_classifier(
    name: str, params: Mapping[str, object] | None = None
) -> Classifier:
    """Construct a classifier from its registry name and a params dict."""
    classifier = CLASSIFIER_REGISTRY.build(name, params)
    assert isinstance(classifier, Classifier)
    return classifier


def classifier_spec(classifier: Classifier) -> dict[str, object]:
    """The canonical, wire-ready spec dict of a registry-built classifier."""
    return CLASSIFIER_REGISTRY.spec(classifier)


def classifier_from_spec(data: object) -> Classifier:
    """Rebuild a classifier from its spec dict (inverse of :func:`classifier_spec`)."""
    classifier = CLASSIFIER_REGISTRY.from_spec(data)
    assert isinstance(classifier, Classifier)
    return classifier
