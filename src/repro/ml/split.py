"""Train/test and cross-validation splitting utilities."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import MLError
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class StratifiedSplit:
    """Indices of a stratified train/test split."""

    train_indices: np.ndarray
    test_indices: np.ndarray

    def __post_init__(self) -> None:
        overlap = set(self.train_indices.tolist()) & set(self.test_indices.tolist())
        if overlap:
            raise MLError(f"train/test indices overlap: {sorted(overlap)[:5]}...")


def train_test_split(
    labels: object, test_fraction: float = 0.3, seed: int = 0
) -> StratifiedSplit:
    """Stratified split: each label contributes ~``test_fraction`` to the test set.

    Every class with at least two samples keeps at least one sample on each
    side of the split so downstream classifiers always see every class.
    """
    if not 0.0 < test_fraction < 1.0:
        raise MLError(f"test fraction must be in (0, 1), got {test_fraction}")
    label_array = np.asarray(labels, dtype=object).reshape(-1)
    if label_array.size < 2:
        raise MLError("need at least two samples to split")
    rng = spawn_rng(seed, "train-test-split")
    train: list[int] = []
    test: list[int] = []
    for value in sorted(set(label_array.tolist()), key=str):
        indices = np.flatnonzero(label_array == value)
        rng.shuffle(indices)
        if indices.size == 1:
            train.extend(indices.tolist())
            continue
        test_count = int(round(indices.size * test_fraction))
        test_count = min(max(test_count, 1), indices.size - 1)
        test.extend(indices[:test_count].tolist())
        train.extend(indices[test_count:].tolist())
    return StratifiedSplit(
        train_indices=np.asarray(sorted(train), dtype=int),
        test_indices=np.asarray(sorted(test), dtype=int),
    )


def kfold_indices(sample_count: int, folds: int = 5, seed: int = 0) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold split: list of ``(train_indices, test_indices)`` pairs."""
    if folds < 2:
        raise MLError(f"need at least 2 folds, got {folds}")
    if sample_count < folds:
        raise MLError(f"cannot split {sample_count} samples into {folds} folds")
    rng = spawn_rng(seed, "kfold")
    order = np.arange(sample_count)
    rng.shuffle(order)
    chunks = np.array_split(order, folds)
    result: list[tuple[np.ndarray, np.ndarray]] = []
    for index, chunk in enumerate(chunks):
        test = np.sort(chunk)
        train = np.sort(np.concatenate([c for j, c in enumerate(chunks) if j != index]))
        result.append((train, test))
    return result
