"""Prior-work baselines: inter-video traffic fingerprinting.

Section II of the paper argues that existing encrypted-video analysis
techniques — which identify *which title* is being watched from downlink
bitrate/burst patterns — cannot distinguish *segments of the same title*,
because every branch of an interactive movie is encoded on the same bitrate
ladder.  This package implements coarse-feature versions of the two
techniques the paper cites:

* :mod:`repro.baselines.bitrate` — windowed average-throughput profiles in
  the spirit of Reed & Kranch (CODASPY 2017);
* :mod:`repro.baselines.burst` — downlink burst-volume sequences in the
  spirit of Schuster, Shmatikov & Tromer (USENIX Security 2017);

and a comparison harness (:mod:`repro.baselines.comparison`) that pits them
against the White Mirror side-channel on the intra-video task of deciding, at
every choice point, which branch was streamed.
"""

from repro.baselines.bitrate import BitrateProfile, BitrateFingerprinter
from repro.baselines.burst import BurstSequence, BurstFingerprinter, extract_bursts
from repro.baselines.comparison import (
    BranchClassificationTask,
    ComparisonResult,
    build_branch_tasks,
    run_comparison,
)

__all__ = [
    "BitrateProfile",
    "BitrateFingerprinter",
    "BurstSequence",
    "BurstFingerprinter",
    "extract_bursts",
    "BranchClassificationTask",
    "ComparisonResult",
    "build_branch_tasks",
    "run_comparison",
]
