"""Burst-pattern fingerprinting (Schuster et al. style baseline).

"Beauty and the Burst" fingerprints encrypted video streams by the sizes of
the on/off download bursts an ABR player produces.  The burst sizes reflect
the per-chunk byte counts at the selected quality; for two branches of the
same interactive title encoded at the same ladder rung and similar duration,
the burst-size distributions largely coincide, so the classifier hovers near
chance on the intra-video branch task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import AttackError
from repro.ml.knn import KNearestNeighbors
from repro.net.capture import CapturedTrace


@dataclass(frozen=True)
class BurstSequence:
    """Sizes (bytes) of consecutive downlink bursts in a trace slice."""

    burst_sizes: tuple[float, ...]
    gap_seconds: float

    def __post_init__(self) -> None:
        if self.gap_seconds <= 0:
            raise AttackError("burst gap must be positive")
        if not self.burst_sizes:
            raise AttackError("a burst sequence needs at least one burst")

    def feature_vector(self) -> np.ndarray:
        """Coarse summary features: count, total, mean, max, std of burst sizes."""
        sizes = np.asarray(self.burst_sizes, dtype=float)
        return np.asarray(
            [
                float(sizes.size),
                float(sizes.sum()),
                float(sizes.mean()),
                float(sizes.max()),
                float(sizes.std()),
            ]
        )


def extract_bursts(
    trace: CapturedTrace,
    gap_seconds: float = 0.5,
    start: float | None = None,
    end: float | None = None,
) -> BurstSequence:
    """Group downlink packets into bursts separated by idle gaps."""
    packets = [
        p
        for p in trace.server_packets()
        if (start is None or p.timestamp >= start) and (end is None or p.timestamp <= end)
    ]
    if not packets:
        return BurstSequence(burst_sizes=(0.0,), gap_seconds=gap_seconds)
    packets.sort(key=lambda p: p.timestamp)
    bursts: list[float] = []
    current = 0.0
    last_time = packets[0].timestamp
    for packet in packets:
        if packet.timestamp - last_time > gap_seconds and current > 0:
            bursts.append(current)
            current = 0.0
        current += packet.wire_length
        last_time = packet.timestamp
    if current > 0:
        bursts.append(current)
    if not bursts:
        bursts = [0.0]
    return BurstSequence(burst_sizes=tuple(bursts), gap_seconds=gap_seconds)


class BurstFingerprinter:
    """k-NN over burst summary features."""

    def __init__(self, k: int = 3) -> None:
        self._knn = KNearestNeighbors(k=k)
        self._trained = False

    def fit(
        self, sequences: Sequence[BurstSequence], labels: Sequence[object]
    ) -> "BurstFingerprinter":
        """Train on labelled burst sequences."""
        if len(sequences) != len(labels):
            raise AttackError("sequences and labels differ in length")
        features = np.vstack([sequence.feature_vector() for sequence in sequences])
        self._knn.fit(features, list(labels))
        self._trained = True
        return self

    def predict(self, sequences: Sequence[BurstSequence]) -> list[object]:
        """Predict a label per burst sequence."""
        if not self._trained:
            raise AttackError("BurstFingerprinter must be fitted first")
        features = np.vstack([sequence.feature_vector() for sequence in sequences])
        return list(self._knn.predict(features))
