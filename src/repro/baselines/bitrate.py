"""Bitrate-profile fingerprinting (Reed & Kranch style baseline).

The original technique identifies which Netflix title a flow carries by
matching the flow's average-bitrate profile against a database built from the
titles' manifests.  The feature is deliberately coarse: average downlink
throughput over fixed windows.  That coarseness is exactly why the technique
cannot separate two branches of the same interactive title — both are encoded
at the same ladder rungs, so their windowed-throughput profiles coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import AttackError
from repro.ml.knn import KNearestNeighbors
from repro.net.capture import CapturedTrace
from repro.net.packet import Direction


@dataclass(frozen=True)
class BitrateProfile:
    """Windowed average downlink throughput of (part of) a trace."""

    window_seconds: float
    bytes_per_window: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise AttackError("window must be positive")
        if not self.bytes_per_window:
            raise AttackError("a bitrate profile needs at least one window")

    @property
    def mean_throughput_bps(self) -> float:
        """Mean downlink throughput in bits/second over the profiled span."""
        return 8.0 * float(np.mean(self.bytes_per_window)) / self.window_seconds

    def as_vector(self, length: int) -> np.ndarray:
        """Fixed-length feature vector (truncated or zero-padded)."""
        if length <= 0:
            raise AttackError("feature vector length must be positive")
        vector = np.zeros(length, dtype=float)
        values = np.asarray(self.bytes_per_window, dtype=float)[:length]
        vector[: values.size] = values
        return vector


def profile_from_trace(
    trace: CapturedTrace,
    window_seconds: float = 2.0,
    start: float | None = None,
    end: float | None = None,
) -> BitrateProfile:
    """Build the downlink throughput profile of a trace (or a time slice of it)."""
    packets = trace.server_packets()
    if not packets:
        raise AttackError("trace has no downlink packets to profile")
    timestamps = np.asarray([p.timestamp for p in packets], dtype=float)
    sizes = np.asarray([p.wire_length for p in packets], dtype=float)
    window_start = float(timestamps.min() if start is None else start)
    window_end = float(timestamps.max() if end is None else end)
    if window_end <= window_start:
        window_end = window_start + window_seconds
    mask = (timestamps >= window_start) & (timestamps <= window_end)
    if not mask.any():
        return BitrateProfile(window_seconds=window_seconds, bytes_per_window=(0.0,))
    timestamps = timestamps[mask]
    sizes = sizes[mask]
    window_count = int(np.ceil((window_end - window_start) / window_seconds))
    window_count = max(window_count, 1)
    indices = np.minimum(
        ((timestamps - window_start) / window_seconds).astype(int), window_count - 1
    )
    totals = np.zeros(window_count, dtype=float)
    np.add.at(totals, indices, sizes)
    return BitrateProfile(
        window_seconds=window_seconds, bytes_per_window=tuple(totals.tolist())
    )


class BitrateFingerprinter:
    """k-NN over windowed-throughput vectors."""

    def __init__(self, window_seconds: float = 2.0, vector_length: int = 8, k: int = 3) -> None:
        if vector_length <= 0:
            raise AttackError("vector length must be positive")
        self._window_seconds = window_seconds
        self._vector_length = vector_length
        self._knn = KNearestNeighbors(k=k)
        self._trained = False

    @property
    def window_seconds(self) -> float:
        """Width of the throughput windows."""
        return self._window_seconds

    def _features(self, profiles: Sequence[BitrateProfile]) -> np.ndarray:
        return np.vstack([profile.as_vector(self._vector_length) for profile in profiles])

    def fit(self, profiles: Sequence[BitrateProfile], labels: Sequence[object]) -> "BitrateFingerprinter":
        """Train on labelled throughput profiles."""
        if len(profiles) != len(labels):
            raise AttackError("profiles and labels differ in length")
        self._knn.fit(self._features(profiles), list(labels))
        self._trained = True
        return self

    def predict(self, profiles: Sequence[BitrateProfile]) -> list[object]:
        """Predict a label per profile."""
        if not self._trained:
            raise AttackError("BitrateFingerprinter must be fitted first")
        return list(self._knn.predict(self._features(profiles)))
