"""Head-to-head comparison: inter-video baselines vs. the White Mirror attack.

The task is the one interactive movies pose: at every choice point, decide
whether the viewer streamed the default or the non-default branch.  Baselines
get the downlink traffic of the window following the decision; the White
Mirror attack gets the client-side record lengths.  The paper's Section II
argument predicts the baselines stay near chance while the record-length
side-channel is nearly perfect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.bitrate import BitrateFingerprinter, BitrateProfile, profile_from_trace
from repro.baselines.burst import BurstFingerprinter, BurstSequence, extract_bursts
from repro.core.pipeline import WhiteMirrorAttack
from repro.exceptions import AttackError
from repro.ml.metrics import accuracy_score
from repro.streaming.events import EventKind
from repro.streaming.session import SessionResult


@dataclass(frozen=True)
class BranchClassificationTask:
    """One (choice point, branch ground truth, observation window) instance."""

    session_id: str
    question_id: str
    window_start: float
    window_end: float
    took_default: bool

    def __post_init__(self) -> None:
        if self.window_end <= self.window_start:
            raise AttackError("observation window must have positive duration")


def build_branch_tasks(
    sessions: Sequence[SessionResult], window_seconds: float = 30.0
) -> list[BranchClassificationTask]:
    """One task per answered question across the sessions.

    The window starts at the moment the choice was made (taken from the
    session event log, which a controlled experiment has access to) and spans
    the subsequent branch streaming.
    """
    if window_seconds <= 0:
        raise AttackError("window must be positive")
    tasks: list[BranchClassificationTask] = []
    for session in sessions:
        choice_events = [
            event for event in session.events if event.kind is EventKind.CHOICE_MADE
        ]
        for event in choice_events:
            tasks.append(
                BranchClassificationTask(
                    session_id=session.session_id,
                    question_id=str(event.details["question_id"]),
                    window_start=event.timestamp,
                    window_end=event.timestamp + window_seconds,
                    took_default=bool(event.details["took_default"]),
                )
            )
    if not tasks:
        raise AttackError("no answered questions found in the supplied sessions")
    return tasks


@dataclass(frozen=True)
class ComparisonResult:
    """Accuracies of every technique on the branch-identification task."""

    bitrate_baseline_accuracy: float
    burst_baseline_accuracy: float
    white_mirror_accuracy: float
    task_count: int

    def as_rows(self) -> list[dict[str, object]]:
        """Rows for the comparison table of the benchmark report."""
        return [
            {
                "technique": "bitrate profile (Reed & Kranch style)",
                "feature": "windowed downlink throughput",
                "accuracy": round(self.bitrate_baseline_accuracy, 4),
            },
            {
                "technique": "burst pattern (Schuster et al. style)",
                "feature": "downlink burst sizes",
                "accuracy": round(self.burst_baseline_accuracy, 4),
            },
            {
                "technique": "White Mirror (this paper)",
                "feature": "client SSL record lengths",
                "accuracy": round(self.white_mirror_accuracy, 4),
            },
        ]

    @property
    def advantage(self) -> float:
        """White Mirror accuracy minus the best baseline accuracy."""
        return self.white_mirror_accuracy - max(
            self.bitrate_baseline_accuracy, self.burst_baseline_accuracy
        )


def _session_lookup(sessions: Sequence[SessionResult]) -> dict[str, SessionResult]:
    return {session.session_id: session for session in sessions}


def run_comparison(
    train_sessions: Sequence[SessionResult],
    test_sessions: Sequence[SessionResult],
    graph,
    window_seconds: float = 30.0,
) -> ComparisonResult:
    """Train every technique on one set of sessions and score on another."""
    if not train_sessions or not test_sessions:
        raise AttackError("both training and test session sets must be non-empty")
    train_tasks = build_branch_tasks(train_sessions, window_seconds)
    test_tasks = build_branch_tasks(test_sessions, window_seconds)
    train_by_id = _session_lookup(train_sessions)
    test_by_id = _session_lookup(test_sessions)

    # -- bitrate baseline ----------------------------------------------------
    def _profiles(tasks, sessions_by_id) -> tuple[list[BitrateProfile], list[bool]]:
        profiles: list[BitrateProfile] = []
        labels: list[bool] = []
        for task in tasks:
            session = sessions_by_id[task.session_id]
            profiles.append(
                profile_from_trace(
                    session.trace, start=task.window_start, end=task.window_end
                )
            )
            labels.append(task.took_default)
        return profiles, labels

    bitrate = BitrateFingerprinter()
    train_profiles, train_labels = _profiles(train_tasks, train_by_id)
    test_profiles, test_labels = _profiles(test_tasks, test_by_id)
    bitrate.fit(train_profiles, train_labels)
    bitrate_accuracy = accuracy_score(test_labels, bitrate.predict(test_profiles))

    # -- burst baseline --------------------------------------------------------
    def _bursts(tasks, sessions_by_id) -> tuple[list[BurstSequence], list[bool]]:
        sequences: list[BurstSequence] = []
        labels: list[bool] = []
        for task in tasks:
            session = sessions_by_id[task.session_id]
            sequences.append(
                extract_bursts(
                    session.trace, start=task.window_start, end=task.window_end
                )
            )
            labels.append(task.took_default)
        return sequences, labels

    burst = BurstFingerprinter()
    train_bursts, train_burst_labels = _bursts(train_tasks, train_by_id)
    test_bursts, test_burst_labels = _bursts(test_tasks, test_by_id)
    burst.fit(train_bursts, train_burst_labels)
    burst_accuracy = accuracy_score(test_burst_labels, burst.predict(test_bursts))

    # -- White Mirror ------------------------------------------------------------
    attack = WhiteMirrorAttack(graph=graph)
    attack.train(list(train_sessions))
    evaluations = attack.evaluate_sessions(list(test_sessions))
    total = sum(e.ground_truth_choices for e in evaluations)
    correct = sum(e.correct_choices for e in evaluations)
    white_mirror_accuracy = correct / total if total else 0.0

    return ComparisonResult(
        bitrate_baseline_accuracy=float(bitrate_accuracy),
        burst_baseline_accuracy=float(burst_accuracy),
        white_mirror_accuracy=float(white_mirror_accuracy),
        task_count=len(test_tasks),
    )
