"""The media manifest the player downloads before streaming starts.

A manifest binds the story graph to the media plane: for every segment it
lists the chunk maps at every ladder rung, so the player (and the prefetcher)
can translate "stream segment S3b" into a sequence of byte transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError, NarrativeError
from repro.media.chunks import ChunkMap, ladder_chunk_maps
from repro.media.encoding import BitrateLadder, default_ladder
from repro.narrative.graph import StoryGraph


@dataclass(frozen=True)
class MediaManifest:
    """Immutable view of all chunk maps for one title.

    Attributes
    ----------
    title:
        The movie title the manifest describes.
    chunk_duration_seconds:
        Nominal duration of each chunk.
    ladder:
        The bitrate ladder available to the player.
    chunk_maps:
        ``chunk_maps[segment_id][profile_name]`` -> :class:`ChunkMap`.
    """

    title: str
    chunk_duration_seconds: float
    ladder: BitrateLadder
    chunk_maps: dict[str, dict[str, ChunkMap]]

    def segment_chunks(self, segment_id: str, profile_name: str) -> ChunkMap:
        """Chunk map of one segment at one quality."""
        try:
            per_profile = self.chunk_maps[segment_id]
        except KeyError:
            raise NarrativeError(f"manifest has no segment {segment_id!r}") from None
        try:
            return per_profile[profile_name]
        except KeyError:
            raise ConfigurationError(
                f"manifest has no profile {profile_name!r} for segment {segment_id!r}"
            ) from None

    @property
    def segment_ids(self) -> tuple[str, ...]:
        """All segments described by the manifest."""
        return tuple(self.chunk_maps.keys())

    def total_bytes(self, profile_name: str) -> int:
        """Total stored bytes of the whole title at one quality."""
        return sum(
            per_profile[profile_name].total_bytes
            for per_profile in self.chunk_maps.values()
        )

    def describe(self) -> dict[str, object]:
        """Summary dictionary used by reports and examples."""
        return {
            "title": self.title,
            "segments": len(self.chunk_maps),
            "chunk_duration_seconds": self.chunk_duration_seconds,
            "ladder_rungs": [profile.name for profile in self.ladder.profiles],
            "total_bytes_highest_quality": self.total_bytes(self.ladder.highest.name),
        }


def build_manifest(
    graph: StoryGraph,
    content_seed: int,
    chunk_duration_seconds: float = 4.0,
    ladder: BitrateLadder | None = None,
) -> MediaManifest:
    """Build the manifest for a story graph.

    The ``content_seed`` pins the VBR chunk sizes: the same seed always
    produces byte-identical manifests, which the dataset generator relies on
    (all viewers stream the *same* encode of the movie).
    """
    if chunk_duration_seconds <= 0:
        raise ConfigurationError("chunk duration must be positive")
    ladder = ladder or default_ladder()
    chunk_maps = {
        segment.segment_id: ladder_chunk_maps(
            segment, ladder, chunk_duration_seconds, content_seed
        )
        for segment in graph.iter_segments()
    }
    return MediaManifest(
        title=graph.title,
        chunk_duration_seconds=chunk_duration_seconds,
        ladder=ladder,
        chunk_maps=chunk_maps,
    )
