"""Chunk maps: the concrete byte layout of a segment's media."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import ConfigurationError
from repro.media.encoding import BitrateLadder, EncodingProfile, vbr_chunk_bytes
from repro.narrative.segment import Segment


@dataclass(frozen=True)
class Chunk:
    """One downloadable media chunk of a segment at a specific quality."""

    segment_id: str
    index: int
    duration_seconds: float
    size_bytes: int
    profile_name: str

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("chunk index must be non-negative")
        if self.duration_seconds <= 0:
            raise ConfigurationError("chunk duration must be positive")
        if self.size_bytes <= 0:
            raise ConfigurationError("chunk size must be positive")

    @property
    def chunk_id(self) -> str:
        """Stable identifier, e.g. ``"S2b/7@hd_1080p"``."""
        return f"{self.segment_id}/{self.index}@{self.profile_name}"


class ChunkMap:
    """All chunks of one segment at one encoding profile."""

    def __init__(self, segment_id: str, profile_name: str, chunks: list[Chunk]) -> None:
        if not chunks:
            raise ConfigurationError(
                f"segment {segment_id!r} must contain at least one chunk"
            )
        for position, chunk in enumerate(chunks):
            if chunk.segment_id != segment_id:
                raise ConfigurationError(
                    f"chunk {chunk.chunk_id} does not belong to segment {segment_id!r}"
                )
            if chunk.index != position:
                raise ConfigurationError(
                    f"chunk indices must be contiguous; expected {position}, "
                    f"got {chunk.index}"
                )
        self._segment_id = segment_id
        self._profile_name = profile_name
        self._chunks = tuple(chunks)

    @property
    def segment_id(self) -> str:
        """The segment these chunks belong to."""
        return self._segment_id

    @property
    def profile_name(self) -> str:
        """The ladder rung these chunks were encoded at."""
        return self._profile_name

    @property
    def chunks(self) -> tuple[Chunk, ...]:
        """All chunks in playback order."""
        return self._chunks

    @property
    def total_bytes(self) -> int:
        """Total media bytes across the segment at this quality."""
        return sum(chunk.size_bytes for chunk in self._chunks)

    @property
    def total_seconds(self) -> float:
        """Total playback duration covered by the chunks."""
        return sum(chunk.duration_seconds for chunk in self._chunks)

    def __len__(self) -> int:
        return len(self._chunks)

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self._chunks)

    def __getitem__(self, index: int) -> Chunk:
        return self._chunks[index]


def build_chunk_map(
    segment: Segment,
    profile: EncodingProfile,
    chunk_duration_seconds: float,
    content_seed: int,
    complexity_sigma: float = 0.18,
) -> ChunkMap:
    """Cut a segment into VBR chunks at the given quality."""
    count = segment.chunk_count(chunk_duration_seconds)
    chunks: list[Chunk] = []
    remaining = segment.duration_seconds
    for index in range(count):
        duration = min(chunk_duration_seconds, remaining)
        remaining -= duration
        size = vbr_chunk_bytes(
            profile=profile,
            chunk_duration_seconds=duration,
            content_seed=content_seed,
            segment_id=segment.segment_id,
            chunk_index=index,
            complexity_sigma=complexity_sigma,
        )
        chunks.append(
            Chunk(
                segment_id=segment.segment_id,
                index=index,
                duration_seconds=duration,
                size_bytes=size,
                profile_name=profile.name,
            )
        )
    return ChunkMap(segment.segment_id, profile.name, chunks)


def ladder_chunk_maps(
    segment: Segment,
    ladder: BitrateLadder,
    chunk_duration_seconds: float,
    content_seed: int,
) -> dict[str, ChunkMap]:
    """Chunk maps for a segment at every rung of the ladder, keyed by rung name."""
    return {
        profile.name: build_chunk_map(
            segment, profile, chunk_duration_seconds, content_seed
        )
        for profile in ladder.profiles
    }
