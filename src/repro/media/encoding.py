"""Bitrate ladders and per-chunk size generation.

Chunk sizes follow a variable-bitrate (VBR) model: a chunk encoded at a
nominal ``R`` bits/second over ``d`` seconds occupies roughly ``R*d/8`` bytes,
scaled by a log-normal scene-complexity factor.  The factor is drawn
deterministically per (segment, chunk index) so two sessions that stream the
same content see the same chunk sizes — exactly the property that made chunk
sizes usable as an *inter-video* fingerprint in prior work, and useless for
distinguishing same-size *intra-video* branches here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import spawn_rng
from repro.utils.units import Bandwidth, kbps


@dataclass(frozen=True)
class EncodingProfile:
    """One rung of the bitrate ladder."""

    name: str
    bandwidth: Bandwidth
    resolution: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("encoding profile name must be non-empty")
        if self.bandwidth.bits_per_second <= 0:
            raise ConfigurationError(
                f"encoding profile {self.name!r} must have positive bitrate"
            )

    def nominal_chunk_bytes(self, chunk_duration_seconds: float) -> int:
        """Bytes of a chunk at the nominal (average) rate."""
        if chunk_duration_seconds <= 0:
            raise ConfigurationError("chunk duration must be positive")
        return int(self.bandwidth.bytes_per_second * chunk_duration_seconds)


class BitrateLadder:
    """An ordered set of encoding profiles, lowest bitrate first."""

    def __init__(self, profiles: list[EncodingProfile]) -> None:
        if not profiles:
            raise ConfigurationError("bitrate ladder must contain at least one rung")
        ordered = sorted(profiles, key=lambda p: p.bandwidth.bits_per_second)
        names = [profile.name for profile in ordered]
        if len(set(names)) != len(names):
            raise ConfigurationError("bitrate ladder rung names must be unique")
        self._profiles = tuple(ordered)

    @property
    def profiles(self) -> tuple[EncodingProfile, ...]:
        """All rungs, lowest bitrate first."""
        return self._profiles

    @property
    def lowest(self) -> EncodingProfile:
        """The lowest-bitrate rung (startup / panic quality)."""
        return self._profiles[0]

    @property
    def highest(self) -> EncodingProfile:
        """The highest-bitrate rung."""
        return self._profiles[-1]

    def by_name(self, name: str) -> EncodingProfile:
        """Look a rung up by name."""
        for profile in self._profiles:
            if profile.name == name:
                return profile
        raise ConfigurationError(f"unknown encoding profile {name!r}")

    def best_under(self, available: Bandwidth, safety_factor: float = 0.8) -> EncodingProfile:
        """Highest rung whose bitrate fits within ``available * safety_factor``.

        Falls back to the lowest rung when even that does not fit, mirroring
        how ABR controllers never stop playback solely because of bandwidth.
        """
        if not 0 < safety_factor <= 1:
            raise ConfigurationError(
                f"safety factor must be in (0, 1], got {safety_factor}"
            )
        budget = available.bits_per_second * safety_factor
        candidates = [
            profile
            for profile in self._profiles
            if profile.bandwidth.bits_per_second <= budget
        ]
        return candidates[-1] if candidates else self.lowest

    def index_of(self, profile: EncodingProfile) -> int:
        """Position of a rung within the ladder (0 = lowest)."""
        for index, candidate in enumerate(self._profiles):
            if candidate.name == profile.name:
                return index
        raise ConfigurationError(f"profile {profile.name!r} is not part of this ladder")

    def __len__(self) -> int:
        return len(self._profiles)


def default_ladder() -> BitrateLadder:
    """The ladder used throughout the reproduction (Netflix-like rungs)."""
    return BitrateLadder(
        [
            EncodingProfile("ld_240p", kbps(235), "320x240"),
            EncodingProfile("sd_480p", kbps(1050), "720x480"),
            EncodingProfile("hd_720p", kbps(2350), "1280x720"),
            EncodingProfile("hd_1080p", kbps(4300), "1920x1080"),
            EncodingProfile("uhd_2160p", kbps(11600), "3840x2160"),
        ]
    )


def vbr_chunk_bytes(
    profile: EncodingProfile,
    chunk_duration_seconds: float,
    content_seed: int,
    segment_id: str,
    chunk_index: int,
    complexity_sigma: float = 0.18,
) -> int:
    """Deterministic VBR size of one chunk.

    The scene-complexity multiplier is log-normal with median 1 and shape
    ``complexity_sigma`` and depends only on ``(content_seed, segment_id,
    chunk_index)`` — not on the viewer or the session — because the encoded
    bytes of a given scene are fixed at encode time.
    """
    if complexity_sigma < 0:
        raise ConfigurationError("complexity sigma must be non-negative")
    rng = spawn_rng(content_seed, "vbr", segment_id, chunk_index, profile.name)
    multiplier = float(np.exp(rng.normal(0.0, complexity_sigma))) if complexity_sigma else 1.0
    nominal = profile.nominal_chunk_bytes(chunk_duration_seconds)
    return max(1, int(round(nominal * multiplier)))
