"""Chunked-media model: bitrate ladders, chunk sizes and manifests.

Netflix serves titles as a ladder of encodings (one per bitrate/resolution);
the player downloads the title in chunks of a few seconds each and can switch
ladder rungs between chunks.  The attack in this paper does *not* use media
chunk sizes as its side-channel (that is what prior inter-video work did), but
the simulator still needs a realistic media plane so that

* the captured traces contain the large server-to-client chunk transfers that
  dominate real traffic,
* the inter-video baselines in :mod:`repro.baselines` have the features they
  expect, and
* prefetch/discard behaviour around choice points has actual bytes attached.
"""

from repro.media.encoding import BitrateLadder, EncodingProfile, default_ladder
from repro.media.chunks import Chunk, ChunkMap, build_chunk_map
from repro.media.manifest import MediaManifest, build_manifest

__all__ = [
    "BitrateLadder",
    "EncodingProfile",
    "default_ladder",
    "Chunk",
    "ChunkMap",
    "build_chunk_map",
    "MediaManifest",
    "build_manifest",
]
