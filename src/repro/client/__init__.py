"""Client environment and viewer behaviour models.

The paper's side-channel exists because the *client* (the viewer's browser)
sends small state-reporting JSON messages whose encrypted record lengths fall
into narrow, condition-dependent bands.  This package models everything on the
client side that shapes those lengths:

* :mod:`repro.client.profiles` — the operational conditions of Table I
  (operating system, platform, browser, connection type, time of day) and the
  payload-size parameters each combination induces;
* :mod:`repro.client.json_state` — construction of the type-1 ("a question is
  on screen") and type-2 ("the non-default branch was picked") JSON messages;
* :mod:`repro.client.viewer` — behaviour-conditioned choice making for the
  synthetic viewer population.
"""

from repro.client.profiles import (
    BROWSERS,
    CONNECTION_TYPES,
    OPERATING_SYSTEMS,
    PLATFORMS,
    TRAFFIC_CONDITIONS,
    ClientProfile,
    OperationalCondition,
    enumerate_conditions,
    figure2_conditions,
    profile_for,
)
from repro.client.json_state import (
    JSON_TYPE_1,
    JSON_TYPE_2,
    StateMessage,
    build_type1_message,
    build_type2_message,
)
from repro.client.viewer import ViewerBehavior, ViewerChoiceModel

__all__ = [
    "BROWSERS",
    "CONNECTION_TYPES",
    "OPERATING_SYSTEMS",
    "PLATFORMS",
    "TRAFFIC_CONDITIONS",
    "ClientProfile",
    "OperationalCondition",
    "enumerate_conditions",
    "figure2_conditions",
    "profile_for",
    "JSON_TYPE_1",
    "JSON_TYPE_2",
    "StateMessage",
    "build_type1_message",
    "build_type2_message",
    "ViewerBehavior",
    "ViewerChoiceModel",
]
