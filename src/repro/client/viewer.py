"""Viewer behaviour: how a synthetic viewer answers the on-screen questions.

The IITM-Bandersnatch dataset records behavioural attributes of each viewer
(age group, gender, political alignment, state of mind — Table I).  To make
the synthetic dataset useful for the same downstream purpose the paper
envisages (behavioural studies), choices are *not* uniform coin flips: each
behavioural attribute nudges the probability of taking the default branch at
questions probing related traits, so the ground-truth choices correlate with
the stored attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.narrative.bandersnatch import BANDERSNATCH_CHOICE_LABELS, canonical_question_id
from repro.narrative.choices import ChoicePoint
from repro.utils.rng import RandomSource
from repro.utils.validation import ensure_in, ensure_probability

AGE_GROUPS: tuple[str, ...] = ("<20", "20-25", "25-30", ">30")
GENDERS: tuple[str, ...] = ("male", "female", "undisclosed")
POLITICAL_ALIGNMENTS: tuple[str, ...] = ("liberal", "centrist", "communist", "undisclosed")
STATES_OF_MIND: tuple[str, ...] = ("happy", "stressed", "sad", "undisclosed")


@dataclass(frozen=True)
class ViewerBehavior:
    """Behavioural attributes of one viewer (the Table I behavioural block)."""

    age_group: str
    gender: str
    political_alignment: str
    state_of_mind: str

    def __post_init__(self) -> None:
        ensure_in(self.age_group, AGE_GROUPS, "age_group")
        ensure_in(self.gender, GENDERS, "gender")
        ensure_in(self.political_alignment, POLITICAL_ALIGNMENTS, "political_alignment")
        ensure_in(self.state_of_mind, STATES_OF_MIND, "state_of_mind")

    def as_dict(self) -> dict[str, str]:
        """Plain dictionary form used in dataset metadata."""
        return {
            "age_group": self.age_group,
            "gender": self.gender,
            "political_alignment": self.political_alignment,
            "state_of_mind": self.state_of_mind,
        }

    @classmethod
    def from_dict(cls, data: dict[str, str]) -> "ViewerBehavior":
        """Inverse of :meth:`as_dict`."""
        return cls(
            age_group=data["age_group"],
            gender=data["gender"],
            political_alignment=data["political_alignment"],
            state_of_mind=data["state_of_mind"],
        )


class ViewerChoiceModel:
    """Behaviour-conditioned probability of taking the default branch.

    Parameters
    ----------
    behavior:
        The viewer's behavioural attributes.
    base_default_probability:
        Probability of taking the default branch at a question with no
        behavioural signal attached (0.5 keeps the dataset balanced).
    """

    #: trait probed by a question -> attribute, value, shift applied to the
    #: default-branch probability when the viewer has that value.
    _TRAIT_SHIFTS: dict[str, list[tuple[str, str, float]]] = {
        "risk_taking": [("age_group", "<20", -0.15), ("age_group", ">30", +0.15)],
        "aggression": [("state_of_mind", "stressed", -0.20), ("state_of_mind", "happy", +0.10)],
        "violence": [("state_of_mind", "stressed", -0.15), ("state_of_mind", "sad", -0.05)],
        "compliance": [
            ("political_alignment", "communist", -0.10),
            ("political_alignment", "centrist", +0.10),
        ],
        "conformity": [("political_alignment", "liberal", -0.10)],
        "openness": [("age_group", "20-25", -0.10), ("age_group", ">30", +0.10)],
        "fatalism": [("state_of_mind", "sad", +0.15)],
    }

    def __init__(
        self, behavior: ViewerBehavior, base_default_probability: float = 0.5
    ) -> None:
        ensure_probability(base_default_probability, "base_default_probability")
        self._behavior = behavior
        self._base = base_default_probability

    @property
    def behavior(self) -> ViewerBehavior:
        """The behavioural attributes driving this model."""
        return self._behavior

    def default_probability(self, question_id: str) -> float:
        """Probability this viewer takes the default branch at ``question_id``."""
        canonical = canonical_question_id(question_id)
        trait = None
        if canonical in BANDERSNATCH_CHOICE_LABELS:
            trait = BANDERSNATCH_CHOICE_LABELS[canonical][0]
        probability = self._base
        attributes = self._behavior.as_dict()
        for attribute, value, shift in self._TRAIT_SHIFTS.get(trait, []):
            key = attribute if attribute in attributes else None
            if key is not None and attributes[key] == value:
                probability += shift
        return float(min(0.95, max(0.05, probability)))

    def decide(self, choice_point: ChoicePoint, rng: RandomSource) -> bool:
        """Return ``True`` if the viewer takes the default branch at this question."""
        return rng.bernoulli(self.default_probability(choice_point.question_id))

    def decision_delay(self, choice_point: ChoicePoint, rng: RandomSource) -> float:
        """Seconds the viewer takes to decide (never exceeding the timeout)."""
        if choice_point.timeout_seconds <= 0:
            raise ConfigurationError("choice point timeout must be positive")
        mean_delay = 0.45 * choice_point.timeout_seconds
        return rng.truncated_normal(
            mean=mean_delay,
            std=0.2 * choice_point.timeout_seconds,
            low=0.5,
            high=choice_point.timeout_seconds - 0.25,
        )
