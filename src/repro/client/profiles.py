"""Operational conditions (Table I) and the client profiles they induce.

A client profile captures everything about the viewer's machine and network
that shapes the observable traffic:

* the sizes of the type-1 and type-2 state-report payloads (cookies, headers
  and player telemetry differ between operating systems and browsers, which is
  why the paper's Figure 2 shows different — but equally narrow — bands for
  Ubuntu and Windows);
* TCP maximum segment size and the background-request mix ("other" client
  records);
* nuisance parameters (record-size jitter, probability that background
  records collide with the JSON bands) that set how hard the classification
  problem is under that condition.

The two conditions published in Figure 2 are calibrated so that, after TLS
framing (AES-128-GCM overhead of 24 bytes plus the 5-byte record header), the
JSON messages land exactly in the paper's bins:

==========  =============  =============
condition   type-1 band    type-2 band
==========  =============  =============
Ubuntu      2211-2213      2992-3017
Windows     2341-2343      3118-3147
==========  =============  =============
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.exceptions import ConfigurationError
from repro.utils.validation import ensure_in, ensure_probability

OPERATING_SYSTEMS: tuple[str, ...] = ("windows", "linux", "mac")
PLATFORMS: tuple[str, ...] = ("desktop", "laptop")
BROWSERS: tuple[str, ...] = ("chrome", "firefox")
CONNECTION_TYPES: tuple[str, ...] = ("wired", "wireless")
TRAFFIC_CONDITIONS: tuple[str, ...] = ("morning", "noon", "night")

#: TLS overhead assumed by the calibration: 5-byte record header plus
#: AES-128-GCM explicit nonce (8) and authentication tag (16).
_CALIBRATION_TLS_OVERHEAD = 5 + 8 + 16


@dataclass(frozen=True)
class OperationalCondition:
    """One cell of Table I's operational attribute grid."""

    operating_system: str
    platform: str
    browser: str
    connection_type: str
    traffic_condition: str

    def __post_init__(self) -> None:
        ensure_in(self.operating_system, OPERATING_SYSTEMS, "operating_system")
        ensure_in(self.platform, PLATFORMS, "platform")
        ensure_in(self.browser, BROWSERS, "browser")
        ensure_in(self.connection_type, CONNECTION_TYPES, "connection_type")
        ensure_in(self.traffic_condition, TRAFFIC_CONDITIONS, "traffic_condition")

    @property
    def key(self) -> str:
        """Stable string key, e.g. ``"linux/desktop/firefox/wired/noon"``."""
        return "/".join(
            (
                self.operating_system,
                self.platform,
                self.browser,
                self.connection_type,
                self.traffic_condition,
            )
        )

    @property
    def fingerprint_key(self) -> str:
        """The part of the condition that shapes record lengths.

        Record lengths depend on the software stack (OS and browser), not on
        the time of day, the connection medium or the chassis, so fingerprints
        are trained and looked up at this granularity.
        """
        return f"{self.operating_system}/{self.browser}"

    def as_dict(self) -> dict[str, str]:
        """Plain dictionary form used in dataset metadata."""
        return {
            "operating_system": self.operating_system,
            "platform": self.platform,
            "browser": self.browser,
            "connection_type": self.connection_type,
            "traffic_condition": self.traffic_condition,
        }

    @classmethod
    def from_dict(cls, data: dict[str, str]) -> "OperationalCondition":
        """Inverse of :meth:`as_dict`."""
        return cls(
            operating_system=data["operating_system"],
            platform=data["platform"],
            browser=data["browser"],
            connection_type=data["connection_type"],
            traffic_condition=data["traffic_condition"],
        )


def enumerate_conditions() -> list[OperationalCondition]:
    """Every combination of the Table I operational attributes (72 cells)."""
    return [
        OperationalCondition(os_, platform, browser, connection, traffic)
        for os_, platform, browser, connection, traffic in product(
            OPERATING_SYSTEMS,
            PLATFORMS,
            BROWSERS,
            CONNECTION_TYPES,
            TRAFFIC_CONDITIONS,
        )
    ]


def figure2_conditions() -> tuple[OperationalCondition, OperationalCondition]:
    """The two conditions whose record-length distributions Figure 2 plots."""
    ubuntu = OperationalCondition("linux", "desktop", "firefox", "wired", "noon")
    windows = OperationalCondition("windows", "desktop", "firefox", "wired", "noon")
    return ubuntu, windows


@dataclass(frozen=True)
class ClientProfile:
    """Traffic-shaping parameters induced by an operational condition.

    Attributes
    ----------
    condition:
        The operational condition this profile realises.
    type1_payload_bytes / type1_payload_jitter:
        Centre and ± jitter of the plaintext type-1 JSON message (the state
        report sent when a question appears on screen).
    type2_payload_bytes / type2_payload_jitter:
        Same for the type-2 message (sent when the non-default branch is
        picked).
    request_payload_bytes / request_payload_jitter:
        Centre/jitter of ordinary client requests (chunk GETs, license pings).
    telemetry_payload_bytes / telemetry_payload_jitter:
        Centre/jitter of periodic player telemetry uploads, the mid-sized
        "other" client records visible in Figure 2.
    bulk_report_payload_bytes / bulk_report_payload_jitter:
        Centre/jitter of the occasional large batched reports (the ``>= 4334``
        bin of Figure 2).
    mss:
        TCP maximum segment size on this client.
    band_collision_probability:
        Probability that an "other" client record is emitted with a length
        falling inside one of the JSON bands — the main source of attack error.
    state_loss_probability:
        Probability that a state message never reaches the capture point
        (e.g. lost and retransmitted outside the observation window).
    telemetry_interval_seconds:
        Mean interval between telemetry uploads.
    """

    condition: OperationalCondition
    type1_payload_bytes: int
    type1_payload_jitter: int
    type2_payload_bytes: int
    type2_payload_jitter: int
    request_payload_bytes: int = 710
    request_payload_jitter: int = 180
    telemetry_payload_bytes: int = 2550
    telemetry_payload_jitter: int = 230
    bulk_report_payload_bytes: int = 4700
    bulk_report_payload_jitter: int = 330
    mss: int = 1460
    band_collision_probability: float = 0.01
    state_loss_probability: float = 0.0
    telemetry_interval_seconds: float = 15.0

    def __post_init__(self) -> None:
        for name in (
            "type1_payload_bytes",
            "type2_payload_bytes",
            "request_payload_bytes",
            "telemetry_payload_bytes",
            "bulk_report_payload_bytes",
            "mss",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        for name in (
            "type1_payload_jitter",
            "type2_payload_jitter",
            "request_payload_jitter",
            "telemetry_payload_jitter",
            "bulk_report_payload_jitter",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        ensure_probability(self.band_collision_probability, "band_collision_probability")
        ensure_probability(self.state_loss_probability, "state_loss_probability")
        if self.telemetry_interval_seconds <= 0:
            raise ConfigurationError("telemetry interval must be positive")

    @property
    def expected_type1_record_length(self) -> int:
        """Wire length of the type-1 record at the calibration cipher overhead."""
        return self.type1_payload_bytes + _CALIBRATION_TLS_OVERHEAD

    @property
    def expected_type2_record_length(self) -> int:
        """Wire length of the type-2 record at the calibration cipher overhead."""
        return self.type2_payload_bytes + _CALIBRATION_TLS_OVERHEAD


# -- calibration tables -----------------------------------------------------

#: (operating_system, browser) -> (type1 centre, type1 jitter, type2 centre,
#: type2 jitter) of the *plaintext* payload, chosen so the resulting record
#: wire lengths reproduce Figure 2 for the Firefox conditions and produce
#: distinct but equally narrow bands elsewhere.
_PAYLOAD_CALIBRATION: dict[tuple[str, str], tuple[int, int, int, int]] = {
    # Figure 2 (Desktop, Firefox, Ethernet, Ubuntu): type-1 2211-2213, type-2 2992-3017.
    ("linux", "firefox"): (2183, 1, 2976, 12),
    # Figure 2 (Desktop, Firefox, Ethernet, Windows): type-1 2341-2343, type-2 3118-3147.
    ("windows", "firefox"): (2313, 1, 3104, 14),
    # Unpublished conditions: same structure, different centres.
    ("mac", "firefox"): (2248, 1, 3040, 12),
    ("linux", "chrome"): (2119, 1, 2896, 11),
    ("windows", "chrome"): (2255, 1, 3010, 13),
    ("mac", "chrome"): (2190, 1, 2952, 12),
}

#: Extra nuisance noise per traffic condition: congested evenings make the
#: capture noisier (more cross traffic, more retransmission, more collisions).
_TRAFFIC_NUISANCE: dict[str, tuple[float, float]] = {
    # traffic_condition -> (band_collision_probability, state_loss_probability)
    "morning": (0.004, 0.000),
    "noon": (0.008, 0.000),
    "night": (0.018, 0.010),
}

#: Wireless connections add a little more collision noise than wired ones.
_CONNECTION_NUISANCE: dict[str, float] = {"wired": 0.0, "wireless": 0.010}


def profile_for(condition: OperationalCondition) -> ClientProfile:
    """Build the calibrated :class:`ClientProfile` for an operational condition."""
    key = (condition.operating_system, condition.browser)
    try:
        type1_center, type1_jitter, type2_center, type2_jitter = _PAYLOAD_CALIBRATION[key]
    except KeyError:
        raise ConfigurationError(
            f"no payload calibration for OS/browser combination {key!r}"
        ) from None
    collision, loss = _TRAFFIC_NUISANCE[condition.traffic_condition]
    collision += _CONNECTION_NUISANCE[condition.connection_type]
    mss = 1460 if condition.connection_type == "wired" else 1420
    telemetry_center = 2550 if condition.operating_system != "windows" else 2720
    return ClientProfile(
        condition=condition,
        type1_payload_bytes=type1_center,
        type1_payload_jitter=type1_jitter,
        type2_payload_bytes=type2_center,
        type2_payload_jitter=type2_jitter,
        telemetry_payload_bytes=telemetry_center,
        mss=mss,
        band_collision_probability=collision,
        state_loss_probability=loss,
    )
