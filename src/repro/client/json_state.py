"""Construction of the client's state-reporting JSON messages.

The interactive player reports its progress to the service over the same TLS
connection that carries everything else.  Two message kinds matter for the
side-channel (the paper's "type-1" and "type-2" JSON files):

* **type-1** — sent when a choice question appears on screen ("the viewer has
  reached Q_i");
* **type-2** — sent additionally when the viewer selects the *non-default*
  option, telling the service to stop prefetching the default branch and to
  start serving the alternative.

The exact JSON schema Netflix uses is irrelevant to the attack; what matters
is that each message's plaintext size is almost constant for a given client
environment (same cookies, same player build, same headers) and that the two
kinds differ in size.  :func:`build_type1_message` and
:func:`build_type2_message` therefore synthesise a realistic JSON body and
then pad or trim the serialized form to the calibrated size for the client
profile, with a small per-message jitter reflecting variable-length fields
such as timestamps and sequence numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.client.profiles import ClientProfile
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomSource

JSON_TYPE_1 = "type1"
JSON_TYPE_2 = "type2"

_PADDING_FIELD = "pad"


@dataclass(frozen=True)
class StateMessage:
    """A state-report ready to be handed to the TLS session.

    Attributes
    ----------
    kind:
        ``"type1"`` or ``"type2"``.
    question_id:
        The question this report refers to.
    payload:
        The serialized (plaintext) JSON body, already sized for the client
        profile.
    timestamp_seconds:
        Session-relative send time.
    """

    kind: str
    question_id: str
    payload: bytes
    timestamp_seconds: float

    def __post_init__(self) -> None:
        if self.kind not in (JSON_TYPE_1, JSON_TYPE_2):
            raise ConfigurationError(f"unknown state message kind {self.kind!r}")
        if not self.payload:
            raise ConfigurationError("state message payload must be non-empty")
        if self.timestamp_seconds < 0:
            raise ConfigurationError("state message timestamp must be non-negative")

    @property
    def size_bytes(self) -> int:
        """Plaintext size of the serialized message."""
        return len(self.payload)


def _base_document(kind: str, question_id: str, session_token: str) -> dict[str, object]:
    """The semantic content of a state report (before size shaping)."""
    document: dict[str, object] = {
        "messageKind": kind,
        "questionId": question_id,
        "sessionToken": session_token,
        "player": {
            "state": "choicePointReached" if kind == JSON_TYPE_1 else "branchOverride",
            "interactive": True,
        },
    }
    if kind == JSON_TYPE_2:
        document["override"] = {
            "discardPrefetched": True,
            "requestedBranch": "non-default",
        }
    return document


def _shape_to_size(document: dict[str, object], target_size: int) -> bytes:
    """Serialize ``document`` and pad/trim it to exactly ``target_size`` bytes.

    Real clients reach near-constant sizes because the bulky parts (auth
    cookies, device descriptors) are constant per environment; we reproduce
    the effect by filling a dedicated padding field.
    """
    document = dict(document)
    document[_PADDING_FIELD] = ""
    minimal = json.dumps(document, separators=(",", ":")).encode("utf-8")
    if target_size < len(minimal):
        raise ConfigurationError(
            f"target size {target_size} is smaller than the minimal message "
            f"({len(minimal)} bytes)"
        )
    padding = target_size - len(minimal)
    document[_PADDING_FIELD] = "x" * padding
    payload = json.dumps(document, separators=(",", ":")).encode("utf-8")
    if len(payload) != target_size:
        raise ConfigurationError(
            f"internal error: shaped payload is {len(payload)} bytes, "
            f"expected {target_size}"
        )
    return payload


def build_type1_message(
    profile: ClientProfile,
    question_id: str,
    timestamp_seconds: float,
    rng: RandomSource,
    session_token: str = "session",
) -> StateMessage:
    """Build the "question reached" report sized for ``profile``."""
    size = rng.jittered(profile.type1_payload_bytes, profile.type1_payload_jitter)
    payload = _shape_to_size(
        _base_document(JSON_TYPE_1, question_id, session_token), size
    )
    return StateMessage(
        kind=JSON_TYPE_1,
        question_id=question_id,
        payload=payload,
        timestamp_seconds=timestamp_seconds,
    )


def build_type2_message(
    profile: ClientProfile,
    question_id: str,
    timestamp_seconds: float,
    rng: RandomSource,
    session_token: str = "session",
) -> StateMessage:
    """Build the "non-default branch selected" report sized for ``profile``."""
    size = rng.jittered(profile.type2_payload_bytes, profile.type2_payload_jitter)
    payload = _shape_to_size(
        _base_document(JSON_TYPE_2, question_id, session_token), size
    )
    return StateMessage(
        kind=JSON_TYPE_2,
        question_id=question_id,
        payload=payload,
        timestamp_seconds=timestamp_seconds,
    )
