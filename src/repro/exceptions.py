"""Exception hierarchy for the White Mirror reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """Raised when a component is configured with inconsistent parameters."""


class NarrativeError(ReproError):
    """Raised for malformed story graphs (unknown segments, bad choices...)."""


class StreamingError(ReproError):
    """Raised when a streaming session is driven into an invalid state."""


class TLSError(ReproError):
    """Raised for invalid TLS record framing or session misuse."""


class PacketError(ReproError):
    """Raised when packets or headers cannot be built or parsed."""


class PcapError(PacketError):
    """Raised when a pcap file cannot be written or parsed."""


class DatasetError(ReproError):
    """Raised when dataset generation, serialization or loading fails."""


class AttackError(ReproError):
    """Raised when the traffic-analysis pipeline cannot proceed."""


class EngineError(ReproError):
    """Raised when the batch execution engine cannot complete a batch.

    Wraps failures from worker processes (including crashed workers) so a
    failed batch surfaces as one clear error naming the failed plan instead
    of a hang or a raw ``concurrent.futures`` exception.
    """


class IngestError(ReproError):
    """Raised when the live capture-ingest front end cannot proceed.

    Covers drop-directory watching, the append-only results log and the
    streaming attack service built on top of them.
    """


class ComponentError(ReproError):
    """Raised for malformed component specs or misuse of a component registry.

    Every message names the offending piece: the unregistered component
    name (listing the registered ones), the unknown/missing/wrong-typed
    param, or the spec field that is absent or carries the wrong value.
    """


class JobError(ReproError):
    """Raised by the jobs layer: an unserialisable or wrong-schema job
    spec, an artifact that cannot be fingerprinted, or an event no
    attached renderer knows how to surface.
    """


class CoordinatorError(ReproError):
    """Raised when the fleet coordinator or a pull worker cannot proceed.

    Covers the versioned jobs wire API (a malformed request or response
    names its failing field via :attr:`field`, exactly as ``job_from_dict``
    names a bad spec field), the durable lease ledger, result uploads whose
    content fingerprint does not match the worker's claim, and plan
    publication (the stitch + merge closing step).

    ``status`` is the HTTP status the wire layer responds with when the
    error crosses the API boundary; library callers can ignore it.
    """

    STATUS = 400

    def __init__(
        self, message: str, *, field: str | None = None, status: int | None = None
    ) -> None:
        super().__init__(message)
        self.field = field
        self.status = self.STATUS if status is None else status


class LeaseExpired(CoordinatorError):
    """Raised when a worker acts on a lease the coordinator has reclaimed.

    A lease outlives its TTL only while its worker keeps completing work;
    a SIGKILLed worker's lease expires and the unit returns to the pool
    for reassignment, so a late upload under the dead lease must be
    rejected — the replacement worker's verified upload is already (or
    will be) in place, byte-identical by construction.
    """

    STATUS = 410


class FingerprintError(AttackError):
    """Raised when a record-length fingerprint is malformed or not trained."""


class DefenseError(ReproError):
    """Raised when a countermeasure transformation is misconfigured."""


class MLError(ReproError):
    """Raised by the from-scratch machine-learning helpers."""


class NotFittedError(MLError):
    """Raised when ``predict`` is called on an unfitted estimator."""
