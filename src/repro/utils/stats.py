"""Descriptive statistics used by the evaluation harness and reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


def _as_array(values: Iterable[float]) -> np.ndarray:
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("cannot summarise an empty sequence")
    return array


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    return float(_as_array(values).mean())


def median(values: Iterable[float]) -> float:
    """Median of a non-empty sequence."""
    return float(np.median(_as_array(values)))


def stddev(values: Iterable[float]) -> float:
    """Population standard deviation of a non-empty sequence."""
    return float(_as_array(values).std())


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of a non-empty sequence."""
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile must be within [0, 100], got {q}")
    return float(np.percentile(_as_array(values), q))


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-style summary of a sample."""

    count: int
    minimum: float
    maximum: float
    mean: float
    median: float
    stddev: float
    p05: float
    p95: float

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dictionary (useful for reports)."""
        return {
            "count": float(self.count),
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "median": self.median,
            "stddev": self.stddev,
            "p05": self.p05,
            "p95": self.p95,
        }


def summarize(values: Iterable[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` for a non-empty sample."""
    array = _as_array(values)
    return SummaryStats(
        count=int(array.size),
        minimum=float(array.min()),
        maximum=float(array.max()),
        mean=float(array.mean()),
        median=float(np.median(array)),
        stddev=float(array.std()),
        p05=float(np.percentile(array, 5)),
        p95=float(np.percentile(array, 95)),
    )


def proportions(counts: Mapping[str, int]) -> dict[str, float]:
    """Normalise a mapping of counts into proportions that sum to 1.

    Empty or all-zero mappings raise because a proportion is undefined.
    """
    total = float(sum(counts.values()))
    if total <= 0:
        raise ConfigurationError("cannot compute proportions of zero total count")
    return {key: value / total for key, value in counts.items()}


def relative_error(measured: float, reference: float) -> float:
    """Absolute relative error of ``measured`` against ``reference``."""
    if reference == 0:
        raise ConfigurationError("reference value must be non-zero")
    return abs(measured - reference) / abs(reference)


def jains_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index of a non-empty, non-negative sample.

    Used by the network-condition tests to check that simulated cross traffic
    shares bandwidth plausibly.
    """
    array = _as_array(values)
    if np.any(array < 0):
        raise ConfigurationError("fairness is defined for non-negative values only")
    denominator = array.size * float((array**2).sum())
    if denominator == 0:
        return 1.0
    return float(array.sum() ** 2 / denominator)
