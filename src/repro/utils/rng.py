"""Deterministic random-number handling.

Reproducibility is a first-class requirement: a dataset generated from seed
``S`` must be bit-identical across runs and machines.  Everything random in
the library flows through :class:`RandomSource`, a thin wrapper around
``numpy.random.Generator`` that adds

* stable *named* child streams (``rng.child("tls")`` always yields the same
  stream for the same parent seed), and
* convenience draws used throughout the simulator (jittered integers,
  truncated normals, categorical picks).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Sequence, TypeVar

import numpy as np

from repro.exceptions import ConfigurationError

T = TypeVar("T")

_MAX_SEED = 2**63 - 1


def derive_seed(base_seed: int, *names: str | int) -> int:
    """Derive a stable child seed from ``base_seed`` and a path of names.

    The derivation hashes the base seed together with every name using
    SHA-256, so child seeds are decorrelated from each other and from the
    parent, yet fully deterministic.

    >>> derive_seed(1, "tls") == derive_seed(1, "tls")
    True
    >>> derive_seed(1, "tls") != derive_seed(1, "net")
    True
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for name in names:
        hasher.update(b"/")
        hasher.update(str(name).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") % _MAX_SEED


def spawn_rng(base_seed: int, *names: str | int) -> np.random.Generator:
    """Return a ``numpy`` generator seeded from ``derive_seed``."""
    return np.random.default_rng(derive_seed(base_seed, *names))


class RandomSource:
    """Deterministic random source with named child streams.

    Parameters
    ----------
    seed:
        Non-negative integer seed.  Two sources built from the same seed
        produce identical draw sequences.
    path:
        Internal; the chain of child names leading to this source.
    """

    def __init__(self, seed: int, path: tuple[str, ...] = ()) -> None:
        if seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._path = tuple(path)
        self._rng = spawn_rng(self._seed, *self._path)

    @property
    def seed(self) -> int:
        """The root seed this source was derived from."""
        return self._seed

    @property
    def path(self) -> tuple[str, ...]:
        """Chain of child names from the root source to this one."""
        return self._path

    @property
    def generator(self) -> np.random.Generator:
        """The underlying ``numpy`` generator (advance with care)."""
        return self._rng

    def child(self, name: str | int) -> "RandomSource":
        """Return a decorrelated child source identified by ``name``.

        Children are derived from the root seed and the full name path, not
        from the parent's current state, so the order in which children are
        created does not matter.
        """
        return RandomSource(self._seed, self._path + (str(name),))

    # -- draw helpers ------------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw a float uniformly from ``[low, high)``."""
        return float(self._rng.uniform(low, high))

    def integer(self, low: int, high: int) -> int:
        """Draw an integer uniformly from the inclusive range ``[low, high]``."""
        if high < low:
            raise ConfigurationError(f"empty integer range [{low}, {high}]")
        return int(self._rng.integers(low, high + 1))

    def jittered(self, center: int, jitter: int) -> int:
        """Draw ``center`` plus a uniform integer offset in ``[-jitter, +jitter]``."""
        if jitter < 0:
            raise ConfigurationError(f"jitter must be non-negative, got {jitter}")
        if jitter == 0:
            return int(center)
        return int(center) + self.integer(-jitter, jitter)

    def normal(self, mean: float, std: float) -> float:
        """Draw from a normal distribution."""
        return float(self._rng.normal(mean, std))

    def truncated_normal(
        self, mean: float, std: float, low: float, high: float
    ) -> float:
        """Draw from a normal distribution clipped to ``[low, high]``."""
        if low > high:
            raise ConfigurationError(f"invalid truncation range [{low}, {high}]")
        return float(np.clip(self._rng.normal(mean, std), low, high))

    def exponential(self, mean: float) -> float:
        """Draw from an exponential distribution with the given mean."""
        if mean <= 0:
            raise ConfigurationError(f"exponential mean must be positive, got {mean}")
        return float(self._rng.exponential(mean))

    def poisson(self, lam: float) -> int:
        """Draw from a Poisson distribution."""
        if lam < 0:
            raise ConfigurationError(f"Poisson rate must be non-negative, got {lam}")
        return int(self._rng.poisson(lam))

    def bernoulli(self, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"probability must be within [0, 1], got {probability}"
            )
        return bool(self._rng.random() < probability)

    def choice(self, options: Sequence[T]) -> T:
        """Pick one element uniformly from a non-empty sequence."""
        if not options:
            raise ConfigurationError("cannot choose from an empty sequence")
        index = int(self._rng.integers(0, len(options)))
        return options[index]

    def weighted_choice(self, weights: Mapping[T, float]) -> T:
        """Pick a key from ``weights`` with probability proportional to its value."""
        if not weights:
            raise ConfigurationError("cannot choose from an empty weight mapping")
        keys = list(weights.keys())
        values = np.asarray([float(weights[key]) for key in keys], dtype=float)
        if np.any(values < 0):
            raise ConfigurationError("weights must be non-negative")
        total = values.sum()
        if total <= 0:
            raise ConfigurationError("weights must not all be zero")
        index = int(self._rng.choice(len(keys), p=values / total))
        return keys[index]

    def random_bytes(self, count: int) -> bytes:
        """Draw ``count`` uniformly random bytes (vectorised, cheap for large counts)."""
        if count < 0:
            raise ConfigurationError(f"byte count must be non-negative, got {count}")
        if count == 0:
            return b""
        return self._rng.integers(0, 256, size=count, dtype=np.uint8).tobytes()

    def shuffled(self, items: Iterable[T]) -> list[T]:
        """Return a new list with the items in a random order."""
        result = list(items)
        self._rng.shuffle(result)  # type: ignore[arg-type]
        return result

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Sample ``count`` distinct items without replacement."""
        if count < 0:
            raise ConfigurationError(f"sample count must be non-negative, got {count}")
        if count > len(items):
            raise ConfigurationError(
                f"cannot sample {count} items from a sequence of {len(items)}"
            )
        indices = self._rng.choice(len(items), size=count, replace=False)
        return [items[int(i)] for i in indices]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        path = "/".join(self._path) or "<root>"
        return f"RandomSource(seed={self._seed}, path={path!r})"
