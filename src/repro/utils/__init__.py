"""Shared low-level helpers used across every subsystem.

The utilities here deliberately avoid any knowledge of streaming, TLS or the
attack itself: they provide deterministic random-number handling, unit
conversions, descriptive statistics and input validation that the rest of the
library builds upon.
"""

from repro.utils.rng import RandomSource, derive_seed, spawn_rng
from repro.utils.units import (
    Bandwidth,
    bits_to_bytes,
    bytes_to_bits,
    kbps,
    mbps,
    milliseconds,
    seconds,
)
from repro.utils.stats import (
    SummaryStats,
    mean,
    median,
    percentile,
    stddev,
    summarize,
)
from repro.utils.histogram import Histogram, LengthBin, bin_label
from repro.utils.validation import (
    ensure_in,
    ensure_non_negative,
    ensure_positive,
    ensure_probability,
    ensure_range,
)

__all__ = [
    "RandomSource",
    "derive_seed",
    "spawn_rng",
    "Bandwidth",
    "bits_to_bytes",
    "bytes_to_bits",
    "kbps",
    "mbps",
    "milliseconds",
    "seconds",
    "SummaryStats",
    "mean",
    "median",
    "percentile",
    "stddev",
    "summarize",
    "Histogram",
    "LengthBin",
    "bin_label",
    "ensure_in",
    "ensure_non_negative",
    "ensure_positive",
    "ensure_probability",
    "ensure_range",
]
