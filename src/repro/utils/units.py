"""Byte, bit and time unit helpers.

The simulator mixes quantities expressed in bits (media bitrates), bytes
(record and packet lengths) and seconds/milliseconds (timing).  Keeping the
conversions in one place avoids the classic factor-of-eight and
factor-of-a-thousand bugs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

BITS_PER_BYTE = 8
BYTES_PER_KB = 1000
BYTES_PER_KIB = 1024
MS_PER_SECOND = 1000.0


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return num_bytes * BITS_PER_BYTE


def bits_to_bytes(num_bits: float) -> float:
    """Convert a bit count to bytes."""
    return num_bits / BITS_PER_BYTE


def seconds(value: float) -> float:
    """Identity helper that documents a value is in seconds."""
    return float(value)


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) / MS_PER_SECOND


def kbps(value: float) -> "Bandwidth":
    """Build a :class:`Bandwidth` from kilobits per second."""
    return Bandwidth(bits_per_second=value * 1000.0)


def mbps(value: float) -> "Bandwidth":
    """Build a :class:`Bandwidth` from megabits per second."""
    return Bandwidth(bits_per_second=value * 1_000_000.0)


@dataclass(frozen=True)
class Bandwidth:
    """A link or stream rate, stored canonically in bits per second."""

    bits_per_second: float

    def __post_init__(self) -> None:
        if self.bits_per_second < 0:
            raise ConfigurationError(
                f"bandwidth must be non-negative, got {self.bits_per_second}"
            )

    @property
    def bytes_per_second(self) -> float:
        """The rate expressed in bytes per second."""
        return bits_to_bytes(self.bits_per_second)

    @property
    def kilobits_per_second(self) -> float:
        """The rate expressed in kilobits per second."""
        return self.bits_per_second / 1000.0

    @property
    def megabits_per_second(self) -> float:
        """The rate expressed in megabits per second."""
        return self.bits_per_second / 1_000_000.0

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds needed to move ``num_bytes`` at this rate.

        A zero bandwidth raises rather than returning infinity so callers
        notice misconfigured links instead of silently stalling simulations.
        """
        if self.bits_per_second == 0:
            raise ConfigurationError("cannot transfer data over a zero-rate link")
        return bytes_to_bits(num_bytes) / self.bits_per_second

    def bytes_in(self, duration_seconds: float) -> float:
        """How many bytes fit through this link in ``duration_seconds``."""
        if duration_seconds < 0:
            raise ConfigurationError(
                f"duration must be non-negative, got {duration_seconds}"
            )
        return self.bytes_per_second * duration_seconds

    def scaled(self, factor: float) -> "Bandwidth":
        """Return a new bandwidth multiplied by ``factor`` (>= 0)."""
        if factor < 0:
            raise ConfigurationError(f"scale factor must be non-negative, got {factor}")
        return Bandwidth(bits_per_second=self.bits_per_second * factor)

    def __str__(self) -> str:
        return f"{self.megabits_per_second:.3f} Mbps"
