"""Length-bin histograms.

Figure 2 of the paper reports the *percentage of packets* whose SSL record
length falls into a handful of byte ranges, split by the kind of payload the
record carries (type-1 JSON, type-2 JSON, everything else).  The
:class:`Histogram` here reproduces exactly that presentation: named,
potentially open-ended integer bins, counted per category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class LengthBin:
    """A closed integer byte range; ``None`` bounds make the bin open-ended."""

    low: int | None
    high: int | None

    def __post_init__(self) -> None:
        if self.low is None and self.high is None:
            raise ConfigurationError("a bin must be bounded on at least one side")
        if self.low is not None and self.high is not None and self.low > self.high:
            raise ConfigurationError(
                f"bin lower bound {self.low} exceeds upper bound {self.high}"
            )

    def contains(self, value: int) -> bool:
        """Return ``True`` if ``value`` falls inside this bin (bounds inclusive)."""
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    @property
    def label(self) -> str:
        """Human-readable label matching the paper's axis style."""
        return bin_label(self)


def bin_label(length_bin: LengthBin) -> str:
    """Format a bin the way the paper's Figure 2 x-axis does."""
    if length_bin.low is None:
        return f"<={length_bin.high}"
    if length_bin.high is None:
        return f">={length_bin.low}"
    if length_bin.low == length_bin.high:
        return str(length_bin.low)
    return f"{length_bin.low}-{length_bin.high}"


class Histogram:
    """Counts of values per (bin, category).

    Parameters
    ----------
    bins:
        Ordered, non-overlapping bins.  Values that do not fall in any bin are
        tallied under :attr:`overflow_count` rather than silently dropped.
    categories:
        The category labels that will be reported.  Observing an unknown
        category raises, which catches label typos early.
    """

    def __init__(self, bins: Sequence[LengthBin], categories: Sequence[str]) -> None:
        if not bins:
            raise ConfigurationError("histogram needs at least one bin")
        if not categories:
            raise ConfigurationError("histogram needs at least one category")
        if len(set(categories)) != len(categories):
            raise ConfigurationError("histogram categories must be unique")
        self._bins = tuple(bins)
        self._categories = tuple(categories)
        self._counts: dict[str, list[int]] = {
            category: [0] * len(self._bins) for category in self._categories
        }
        self._overflow = 0

    @property
    def bins(self) -> tuple[LengthBin, ...]:
        """The configured bins, in order."""
        return self._bins

    @property
    def categories(self) -> tuple[str, ...]:
        """The configured category labels, in order."""
        return self._categories

    @property
    def overflow_count(self) -> int:
        """Number of observed values that matched no bin."""
        return self._overflow

    def observe(self, value: int, category: str) -> None:
        """Record one value under ``category``."""
        if category not in self._counts:
            raise ConfigurationError(f"unknown histogram category {category!r}")
        for index, length_bin in enumerate(self._bins):
            if length_bin.contains(value):
                self._counts[category][index] += 1
                return
        self._overflow += 1

    def observe_many(self, values: Iterable[int], category: str) -> None:
        """Record every value in ``values`` under ``category``."""
        for value in values:
            self.observe(value, category)

    def counts(self, category: str) -> tuple[int, ...]:
        """Raw per-bin counts for one category."""
        if category not in self._counts:
            raise ConfigurationError(f"unknown histogram category {category!r}")
        return tuple(self._counts[category])

    def total(self, category: str) -> int:
        """Total observations recorded for one category (excluding overflow)."""
        return sum(self.counts(category))

    def percentages(self, category: str) -> tuple[float, ...]:
        """Per-bin percentages for one category (the paper's y-axis).

        A category with zero observations yields all zeros rather than NaN.
        """
        raw = self.counts(category)
        total = sum(raw)
        if total == 0:
            return tuple(0.0 for _ in raw)
        return tuple(100.0 * count / total for count in raw)

    def dominant_bin(self, category: str) -> LengthBin:
        """The bin holding the largest share of this category's observations."""
        raw = self.counts(category)
        if sum(raw) == 0:
            raise ConfigurationError(f"no observations recorded for {category!r}")
        index = max(range(len(raw)), key=raw.__getitem__)
        return self._bins[index]

    def as_table(self) -> list[dict[str, object]]:
        """Rows of ``{bin, category: percentage...}`` suitable for printing."""
        rows: list[dict[str, object]] = []
        per_category = {
            category: self.percentages(category) for category in self._categories
        }
        for index, length_bin in enumerate(self._bins):
            row: dict[str, object] = {"bin": length_bin.label}
            for category in self._categories:
                row[category] = round(per_category[category][index], 2)
            rows.append(row)
        return rows


def bins_from_edges(edges: Sequence[tuple[int | None, int | None]]) -> list[LengthBin]:
    """Build a list of bins from ``(low, high)`` tuples."""
    return [LengthBin(low=low, high=high) for low, high in edges]
