"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

from typing import Container, TypeVar

from repro.exceptions import ConfigurationError

T = TypeVar("T")


def ensure_positive(value: float, name: str) -> float:
    """Raise unless ``value`` is strictly positive; return it otherwise."""
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def ensure_non_negative(value: float, name: str) -> float:
    """Raise unless ``value`` is >= 0; return it otherwise."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return value


def ensure_probability(value: float, name: str) -> float:
    """Raise unless ``value`` lies in [0, 1]; return it otherwise."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be within [0, 1], got {value}")
    return value


def ensure_range(value: float, low: float, high: float, name: str) -> float:
    """Raise unless ``low <= value <= high``; return the value otherwise."""
    if not low <= value <= high:
        raise ConfigurationError(
            f"{name} must be within [{low}, {high}], got {value}"
        )
    return value


def ensure_in(value: T, options: Container[T], name: str) -> T:
    """Raise unless ``value`` is one of ``options``; return it otherwise."""
    if value not in options:
        raise ConfigurationError(f"{name} must be one of {options!r}, got {value!r}")
    return value
