"""One arena cell, scored end to end: simulate → defend → retrain → attack.

A cell is a pure function of ``(condition, defense spec, classifier spec,
train/test counts, seed)``: session seeds derive from the condition and
the root seed only — *not* from the defense or classifier — so every cell
of one condition attacks the same underlying traffic, and the same cell
computes byte-identical results no matter which process or machine runs
it.  The attacker is adaptive (Bahramali et al., arXiv:2005.00508): the
cell's classifier is retrained on the *defended* training traffic before
it attacks the defended test sessions.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from repro.client.profiles import OperationalCondition
from repro.client.viewer import ViewerBehavior
from repro.components import component_instance_name
from repro.core.classifier import MLRecordClassifier
from repro.core.evaluation import AttackEvaluation, evaluate_attack_result
from repro.core.features import ClientRecord, extract_client_records
from repro.core.inference import infer_choices
from repro.defenses.base import apply_defense
from repro.defenses.evaluation import timing_scores
from repro.defenses.registry import defense_from_spec
from repro.ml.registry import classifier_from_spec
from repro.narrative.bandersnatch import build_bandersnatch_script
from repro.streaming.session import SessionResult, simulate_session
from repro.utils.rng import derive_seed

#: Version stamped into every cell result and arena report.  Bump on any
#: incompatible layout change; consumers must refuse versions they do not
#: speak, exactly like job specs and the coordinator wire format.
ARENA_SCHEMA_VERSION = 1

#: The two viewer behaviours the defence ablation alternates; the arena
#: keeps the same population so its undefended rows are comparable.
_BEHAVIORS = (
    ("20-25", "male", "centrist", "happy"),
    ("25-30", "female", "liberal", "stressed"),
)


def _choice_accuracy(evaluations: Sequence[AttackEvaluation]) -> float:
    total = sum(e.ground_truth_choices for e in evaluations)
    correct = sum(e.correct_choices for e in evaluations)
    return correct / total if total else 0.0


def _sessions(
    condition: OperationalCondition,
    condition_key: str,
    count: int,
    tag: str,
    seed: int,
) -> list[SessionResult]:
    graph = build_bandersnatch_script(
        trunk_segment_minutes=1.5, branch_segment_minutes=1.0, ending_minutes=2.0
    )
    return [
        simulate_session(
            graph,
            condition,
            ViewerBehavior(*_BEHAVIORS[index % len(_BEHAVIORS)]),
            seed=derive_seed(seed, "arena", condition_key, tag, index),
            session_id=f"arena-{tag}-{index}",
        )
        for index in range(count)
    ]


def run_cell(
    *,
    cell_id: str,
    condition: str,
    defense: Mapping[str, object] | None,
    classifier: Mapping[str, object],
    train_count: int,
    test_count: int,
    seed: int,
) -> dict[str, object]:
    """Score one cell; returns its deterministic, JSON-ready result dict."""
    condition_obj = OperationalCondition(*condition.split("/"))
    defense_obj = defense_from_spec(defense) if defense is not None else None
    attacker = MLRecordClassifier(classifier_from_spec(classifier))

    train_sessions = _sessions(
        condition_obj, condition, train_count, "train", seed
    )
    test_sessions = _sessions(condition_obj, condition, test_count, "test", seed)
    train_records = [
        extract_client_records(session.trace, server_ip=session.trace.server_ip)
        for session in train_sessions
    ]
    test_records = [
        extract_client_records(session.trace, server_ip=session.trace.server_ip)
        for session in test_sessions
    ]
    if defense_obj is None:
        defended_train = [list(records) for records in train_records]
        defended_test = [list(records) for records in test_records]
    else:
        defended_train = [
            apply_defense(defense_obj, records) for records in train_records
        ]
        defended_test = [
            apply_defense(defense_obj, records) for records in test_records
        ]

    flat_train: list[ClientRecord] = [
        record for records in defended_train for record in records
    ]
    attacker.fit(flat_train)

    evaluations: list[AttackEvaluation] = []
    byte_overheads: list[float] = []
    latency_overheads: list[float] = []
    timing_accuracies: list[float] = []
    timing_recalls: list[float] = []
    for session, original, defended in zip(
        test_sessions, test_records, defended_test
    ):
        labels = attacker.classify(defended)
        inferred = infer_choices(defended, labels)
        evaluations.append(
            evaluate_attack_result(
                records=defended,
                predicted_labels=labels,
                inferred=inferred,
                ground_truth_path=session.path,
            )
        )
        if defense_obj is None:
            byte_overheads.append(0.0)
            latency_overheads.append(0.0)
        else:
            byte_overheads.append(
                float(defense_obj.overhead_bytes(original, defended))
            )
            # Record-length defences keep timestamps; a future timing
            # defence shows up here as extra time-to-last-record.
            latency_overheads.append(
                defended[-1].timestamp - original[-1].timestamp
            )
        timing_accuracy, recall = timing_scores(session, defended)
        timing_accuracies.append(timing_accuracy)
        timing_recalls.append(recall)

    count = len(evaluations)
    metrics = {
        "choice_accuracy": _choice_accuracy(evaluations),
        "record_accuracy": sum(e.record_accuracy for e in evaluations) / count,
        "overhead_bytes_per_session": sum(byte_overheads) / count,
        "overhead_latency_s_per_session": sum(latency_overheads) / count,
        "timing_attack_choice_accuracy": sum(timing_accuracies) / count,
        "timing_question_recall": sum(timing_recalls) / count,
    }
    return {
        "cell": cell_id,
        "classifier": dict(classifier),
        "classifier_name": component_instance_name(classifier),
        "condition": condition,
        "defense": dict(defense) if defense is not None else None,
        "defense_name": (
            component_instance_name(defense)
            if defense is not None
            else "no defense"
        ),
        "metrics": {key: round(value, 6) for key, value in metrics.items()},
        "schema": ARENA_SCHEMA_VERSION,
        "seed": seed,
        "sessions": {"test": test_count, "train": train_count},
    }


def cell_to_json(result: Mapping[str, object]) -> str:
    """The canonical byte form of one cell result (sorted keys, trailing
    newline), shared by every execution path so files diff clean."""
    return json.dumps(result, sort_keys=True, indent=2) + "\n"
