"""The attack-vs-defense arena: sharded defense × classifier sweeps.

The arena quantifies the Section VI trade-off the paper only sketches:
every defense configuration is scored against an *adaptive* attacker
(retrained per defended traffic) under every requested classifier and
operational condition, producing per-cell overhead (bytes, latency) and
leakage (choice accuracy, timing recall) and a deterministic
Pareto-frontier report.

* :mod:`repro.arena.grid` — the sweep grammar
  (``name[:key=value,...]``) and the ordered cartesian grid of cells;
* :mod:`repro.arena.cell` — one cell, scored end to end (simulate →
  defend → retrain → attack), returning a deterministic result dict;
* :mod:`repro.arena.report` — :class:`ArenaReport`: cells + frontier,
  saved as sorted-keys JSON, byte-identical no matter how the sweep ran
  (serially, ``--shard-workers N``, resumed, or leased through
  ``repro serve`` / ``repro work``).

Defenses and classifiers enter the arena exclusively as component specs
(:mod:`repro.components`); no sweep path instantiates them by direct
class reference.
"""

from repro.arena.cell import ARENA_SCHEMA_VERSION, cell_to_json, run_cell
from repro.arena.grid import ArenaCell, ArenaGrid, parse_component_entry, parse_condition_entry
from repro.arena.report import ArenaReport

__all__ = [
    "ARENA_SCHEMA_VERSION",
    "ArenaCell",
    "ArenaGrid",
    "ArenaReport",
    "cell_to_json",
    "parse_component_entry",
    "parse_condition_entry",
    "run_cell",
]
