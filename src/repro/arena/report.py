"""The arena report: every cell plus the deterministic Pareto frontier.

The frontier answers the paper's open Section VI question quantitatively:
which defense configurations are *efficient* — no other swept cell leaks
less for less overhead?  Dominance is computed on
``(overhead_bytes_per_session, choice_accuracy)``, both minimised; a cell
is dominated when another cell is no worse on both axes and strictly
better on at least one.  Ties survive together, and the frontier lists
cell ids in cell order, so the report is a pure function of the cell set.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Mapping, Sequence

from repro.arena.cell import ARENA_SCHEMA_VERSION
from repro.exceptions import ReproError


class ArenaReport:
    """Cells (sorted by id) + Pareto frontier, saved as sorted-keys JSON."""

    def __init__(self, cells: Sequence[Mapping[str, object]]) -> None:
        if not cells:
            raise ReproError("an arena report needs at least one cell")
        for cell in cells:
            schema = cell.get("schema")
            if schema != ARENA_SCHEMA_VERSION:
                raise ReproError(
                    f"unsupported arena cell schema version {schema!r} in "
                    f"cell {cell.get('cell')!r} (this build speaks schema "
                    f"version {ARENA_SCHEMA_VERSION})"
                )
        self._cells = sorted(
            (dict(cell) for cell in cells), key=lambda cell: str(cell["cell"])
        )
        self._frontier = tuple(_pareto_frontier(self._cells))

    @property
    def cells(self) -> tuple[dict[str, object], ...]:
        """Every cell result, sorted by cell id."""
        return tuple(self._cells)

    @property
    def frontier(self) -> tuple[str, ...]:
        """Cell ids of the non-dominated cells, in cell order."""
        return self._frontier

    def to_dict(self) -> dict[str, object]:
        return {
            "cells": [dict(cell) for cell in self._cells],
            "frontier": list(self._frontier),
            "schema": ARENA_SCHEMA_VERSION,
        }

    def save(self, path: str | Path) -> Path:
        """Write the report atomically (temp + rename, sorted keys)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=path.parent,
            prefix=path.name + ".",
            suffix=".tmp",
            delete=False,
        ) as handle:
            json.dump(self.to_dict(), handle, sort_keys=True, indent=2)
            handle.write("\n")
        os.replace(handle.name, path)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ArenaReport":
        """Inverse of :meth:`save`; refuses unknown schema versions."""
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict):
            raise ReproError(
                f"{path} is not an arena report (expected a JSON object)"
            )
        schema = data.get("schema")
        if schema != ARENA_SCHEMA_VERSION:
            raise ReproError(
                f"unsupported arena report schema version {schema!r} in "
                f"{path} (this build speaks schema version "
                f"{ARENA_SCHEMA_VERSION})"
            )
        report = cls(data.get("cells") or ())
        recorded = tuple(data.get("frontier") or ())
        if recorded != report.frontier:
            raise ReproError(
                f"{path} records a frontier {list(recorded)} that does not "
                f"match its cells (recomputed: {list(report.frontier)}); "
                "the report was edited or truncated"
            )
        return report

    def rows(self) -> list[dict[str, object]]:
        """Table rows for the event bus (one per cell, frontier starred)."""
        frontier = set(self._frontier)
        return [
            {
                "cell": cell["cell"],
                "condition": cell["condition"],
                "defense": cell["defense_name"],
                "classifier": cell["classifier_name"],
                "choice_accuracy": cell["metrics"]["choice_accuracy"],
                "overhead_bytes": cell["metrics"]["overhead_bytes_per_session"],
                "timing_recall": cell["metrics"]["timing_question_recall"],
                "pareto": "*" if cell["cell"] in frontier else "",
            }
            for cell in self._cells
        ]


def _pareto_frontier(cells: Sequence[Mapping[str, object]]) -> list[str]:
    points = [
        (
            str(cell["cell"]),
            float(cell["metrics"]["overhead_bytes_per_session"]),
            float(cell["metrics"]["choice_accuracy"]),
        )
        for cell in cells
    ]
    frontier = []
    for cell_id, overhead, leakage in points:
        dominated = any(
            other_overhead <= overhead
            and other_leakage <= leakage
            and (other_overhead < overhead or other_leakage < leakage)
            for _other_id, other_overhead, other_leakage in points
        )
        if not dominated:
            frontier.append(cell_id)
    return frontier
