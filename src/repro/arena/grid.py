"""The sweep grammar and the ordered cartesian grid of arena cells.

A sweep axis entry is ``name[:key=value,...]`` — the registry name of a
defense or classifier, optionally followed by constructor params
(``pad-to-multiple:block_bytes=64``).  Values auto-type: integers, floats
and ``true``/``false`` parse to their Python types, anything else stays a
string.  Entries are validated eagerly through the component registries,
so a typo fails at grid construction naming the bad entry, not mid-sweep.

Conditions are the usual five-attribute keys
(``linux/desktop/firefox/wired/noon``).  The grid always adds the
undefended baseline per condition × classifier, so every report carries
its own reference rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.client.profiles import OperationalCondition
from repro.components import ComponentRegistry
from repro.defenses.registry import DEFENSE_REGISTRY
from repro.exceptions import ComponentError, ConfigurationError
from repro.ml.registry import CLASSIFIER_REGISTRY

#: Default axes: the standard defense suite, the two strongest estimator
#: families of the classifier ablation, and the Figure 2 Linux condition.
DEFAULT_DEFENSES: tuple[str, ...] = (
    "pad-to-multiple:block_bytes=64",
    "pad-to-multiple:block_bytes=512",
    "pad-to-constant:target_bytes=4096",
    "split-records:parts=3",
    "compress-state-reports",
)
DEFAULT_CLASSIFIERS: tuple[str, ...] = (
    "interval:margin=8",
    "knn:k=7",
)
DEFAULT_CONDITIONS: tuple[str, ...] = ("linux/desktop/firefox/wired/noon",)


def _parse_value(text: str) -> object:
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_component_entry(
    entry: str, registry: ComponentRegistry
) -> dict[str, object]:
    """One sweep-axis entry → a validated canonical component spec."""
    name, separator, rest = entry.partition(":")
    name = name.strip()
    params: dict[str, object] = {}
    if separator:
        for item in rest.split(","):
            key, equals, value = item.partition("=")
            if not equals or not key.strip():
                raise ComponentError(
                    f"bad {registry.kind} sweep entry {entry!r}: expected "
                    "name[:key=value,...]"
                )
            params[key.strip()] = _parse_value(value.strip())
    return registry.spec(registry.build(name, params))


def parse_condition_entry(entry: str) -> str:
    """One condition entry → its validated canonical key."""
    parts = entry.split("/")
    if len(parts) != 5:
        raise ConfigurationError(
            f"bad condition entry {entry!r}: expected 5 '/'-separated "
            "attributes (os/platform/browser/connection/traffic)"
        )
    return OperationalCondition(*parts).key


@dataclass(frozen=True)
class ArenaCell:
    """One scored point of the sweep: defense × classifier × condition."""

    index: int
    cell_id: str
    defense: dict | None
    classifier: dict
    condition: str


@dataclass(frozen=True)
class ArenaGrid:
    """The full sweep, with axes held as canonical component specs."""

    defenses: tuple[dict, ...]
    classifiers: tuple[dict, ...]
    conditions: tuple[str, ...]
    train_count: int = 2
    test_count: int = 2
    seed: int = 0

    @classmethod
    def from_axes(
        cls,
        defenses: Sequence[str] = (),
        classifiers: Sequence[str] = (),
        conditions: Sequence[str] = (),
        train_count: int = 2,
        test_count: int = 2,
        seed: int = 0,
    ) -> "ArenaGrid":
        """Parse grammar-string axes into a validated grid.

        Empty axes fall back to the defaults, so ``repro arena`` with no
        axis flags sweeps the standard defense suite.
        """
        if train_count < 1 or test_count < 1:
            raise ConfigurationError(
                "arena session counts must be positive "
                f"(got train={train_count}, test={test_count})"
            )
        return cls(
            defenses=tuple(
                parse_component_entry(entry, DEFENSE_REGISTRY)
                for entry in (defenses or DEFAULT_DEFENSES)
            ),
            classifiers=tuple(
                parse_component_entry(entry, CLASSIFIER_REGISTRY)
                for entry in (classifiers or DEFAULT_CLASSIFIERS)
            ),
            conditions=tuple(
                parse_condition_entry(entry)
                for entry in (conditions or DEFAULT_CONDITIONS)
            ),
            train_count=train_count,
            test_count=test_count,
            seed=seed,
        )

    @property
    def cell_count(self) -> int:
        """Cells in the grid, including the undefended baselines."""
        return (
            len(self.conditions)
            * (len(self.defenses) + 1)
            * len(self.classifiers)
        )

    def cells(self) -> list[ArenaCell]:
        """Every cell in canonical order (condition → defense → classifier).

        The undefended baseline leads each condition block, so reference
        rows sit next to the defenses they calibrate.  Cell ids are
        positional (``cell-0000`` ...) and stable for a given grid — the
        resume and coordinator paths key on them.
        """
        cells: list[ArenaCell] = []
        for condition in self.conditions:
            for defense in (None, *self.defenses):
                for classifier in self.classifiers:
                    index = len(cells)
                    cells.append(
                        ArenaCell(
                            index=index,
                            cell_id=f"cell-{index:04d}",
                            defense=defense,
                            classifier=classifier,
                            condition=condition,
                        )
                    )
        return cells
