"""Record-length band fingerprints.

The paper's observation (Figure 2) is that, under a fixed client environment,
the type-1 and type-2 state reports occupy narrow, non-overlapping bands of
SSL record lengths that are disjoint from (almost all) other client records.
A :class:`RecordLengthFingerprint` stores those two bands for one environment;
a :class:`FingerprintLibrary` holds one fingerprint per environment
(OS × browser) and is what the attacker trains during their controlled
viewing sessions.

Because a band is determined entirely by the minimum and maximum labelled
length (plus the record count), learning folds: :class:`FingerprintAccumulator`
keeps that O(environments) running state so training can stream calibration
records shard by shard — discarding each batch as soon as it is observed —
and still finalise into exactly the fingerprints batch learning produces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core import kernel
from repro.core.features import (
    CODE_BY_LABEL,
    ClientRecord,
    LABEL_OTHER,
    LABEL_TYPE1,
    LABEL_TYPE2,
)
from repro.exceptions import FingerprintError

#: Code → label table for the band codes of :func:`repro.core.kernel.classify_codes`
#: over ``(type1_band, type2_band)``: 0 = neither band, 1 = type-1, 2 = type-2.
_BAND_LABELS = (LABEL_OTHER, LABEL_TYPE1, LABEL_TYPE2)

#: On-disk format version of serialised accumulator state (``repro
#: merge-fingerprints`` inputs).
ACCUMULATOR_FORMAT_VERSION = 1


@dataclass(frozen=True)
class LengthBand:
    """A closed byte-length interval."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low <= 0 or self.high <= 0:
            raise FingerprintError("band bounds must be positive")
        if self.low > self.high:
            raise FingerprintError(f"band lower bound {self.low} exceeds {self.high}")

    def contains(self, value: int) -> bool:
        """Whether ``value`` lies inside the band (inclusive)."""
        return self.low <= value <= self.high

    def widened(self, margin: int) -> "LengthBand":
        """A copy widened by ``margin`` bytes on each side."""
        if margin < 0:
            raise FingerprintError("margin must be non-negative")
        return LengthBand(low=max(1, self.low - margin), high=self.high + margin)

    def overlaps(self, other: "LengthBand") -> bool:
        """Whether two bands share any length."""
        return self.low <= other.high and other.low <= self.high

    @property
    def width(self) -> int:
        """Number of distinct lengths the band covers."""
        return self.high - self.low + 1

    def as_dict(self) -> dict[str, int]:
        """JSON-friendly form."""
        return {"low": self.low, "high": self.high}

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "LengthBand":
        """Inverse of :meth:`as_dict`."""
        return cls(low=int(data["low"]), high=int(data["high"]))

    @classmethod
    def from_values(cls, values: Sequence[int], margin: int = 0) -> "LengthBand":
        """The tightest band containing every value, widened by ``margin``."""
        if not values:
            raise FingerprintError("cannot build a band from no values")
        return cls(low=min(values), high=max(values)).widened(margin)


@dataclass(frozen=True)
class RecordLengthFingerprint:
    """The type-1/type-2 bands for one client environment."""

    condition_key: str
    type1_band: LengthBand
    type2_band: LengthBand
    training_records: int

    def __post_init__(self) -> None:
        if not self.condition_key:
            raise FingerprintError("fingerprint needs a condition key")
        if self.training_records <= 0:
            raise FingerprintError("fingerprint must be built from at least one record")
        if self.type1_band.overlaps(self.type2_band):
            raise FingerprintError(
                "type-1 and type-2 bands overlap; the side-channel is not "
                "separable for this environment"
            )

    def classify_length(self, wire_length: int) -> str:
        """Assign one record length to ``type1``, ``type2`` or ``other``.

        This is the scalar reference oracle for :meth:`classify_lengths`;
        property tests pin the two to each other exactly.
        """
        if self.type1_band.contains(wire_length):
            return LABEL_TYPE1
        if self.type2_band.contains(wire_length):
            return LABEL_TYPE2
        return LABEL_OTHER

    def band_bounds(self) -> tuple[tuple[int, int], tuple[int, int]]:
        """The two bands as ``(low, high)`` pairs, in classification priority."""
        return (
            (self.type1_band.low, self.type1_band.high),
            (self.type2_band.low, self.type2_band.high),
        )

    def classify_lengths(self, wire_lengths: np.ndarray | Sequence[int]) -> list[str]:
        """Classify a whole batch of wire lengths in one kernel call."""
        codes = kernel.classify_codes(wire_lengths, self.band_bounds())
        return kernel.decode_labels(codes, _BAND_LABELS)

    def classify(self, records: Iterable[ClientRecord]) -> list[str]:
        """Classify a sequence of client records by their wire lengths."""
        lengths = np.fromiter(
            (record.wire_length for record in records), dtype=np.int64
        )
        return self.classify_lengths(lengths)

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form."""
        return {
            "condition_key": self.condition_key,
            "type1_band": self.type1_band.as_dict(),
            "type2_band": self.type2_band.as_dict(),
            "training_records": self.training_records,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RecordLengthFingerprint":
        """Inverse of :meth:`as_dict`."""
        return cls(
            condition_key=str(data["condition_key"]),
            type1_band=LengthBand.from_dict(data["type1_band"]),  # type: ignore[arg-type]
            type2_band=LengthBand.from_dict(data["type2_band"]),  # type: ignore[arg-type]
            training_records=int(data["training_records"]),  # type: ignore[arg-type]
        )

    @classmethod
    def learn(
        cls,
        condition_key: str,
        records: Sequence[ClientRecord],
        margin: int = 2,
    ) -> "RecordLengthFingerprint":
        """Learn the bands from labelled training records of one environment."""
        type1_lengths = [r.wire_length for r in records if r.label == LABEL_TYPE1]
        type2_lengths = [r.wire_length for r in records if r.label == LABEL_TYPE2]
        if not type1_lengths:
            raise FingerprintError(
                f"no labelled type-1 records for environment {condition_key!r}"
            )
        if not type2_lengths:
            raise FingerprintError(
                f"no labelled type-2 records for environment {condition_key!r}"
            )
        return cls(
            condition_key=condition_key,
            type1_band=LengthBand.from_values(type1_lengths, margin),
            type2_band=LengthBand.from_values(type2_lengths, margin),
            training_records=len(records),
        )


class _BandState:
    """Running min/max of the labelled lengths seen so far for one type."""

    __slots__ = ("minimum", "maximum")

    def __init__(self) -> None:
        self.minimum: int | None = None
        self.maximum: int | None = None

    def observe(self, length: int) -> None:
        if self.minimum is None or length < self.minimum:
            self.minimum = length
        if self.maximum is None or length > self.maximum:
            self.maximum = length

    def merge(self, other: "_BandState") -> None:
        """Fold another running band into this one (min of mins, max of maxes)."""
        if other.minimum is not None:
            self.observe(other.minimum)
        if other.maximum is not None:
            self.observe(other.maximum)

    def band(self, margin: int) -> LengthBand:
        if self.minimum is None or self.maximum is None:
            raise FingerprintError("no labelled lengths observed for this band")
        return LengthBand(low=self.minimum, high=self.maximum).widened(margin)

    def as_dict(self) -> dict[str, int] | None:
        """JSON-friendly form; ``None`` when nothing was observed yet."""
        if self.minimum is None or self.maximum is None:
            return None
        return {"min": self.minimum, "max": self.maximum}

    @classmethod
    def from_dict(cls, data: Mapping[str, int] | None) -> "_BandState":
        """Inverse of :meth:`as_dict`."""
        state = cls()
        if data is not None:
            minimum, maximum = int(data["min"]), int(data["max"])
            if minimum > maximum:
                raise FingerprintError(
                    f"band state min {minimum} exceeds max {maximum}"
                )
            state.observe(minimum)
            state.observe(maximum)
        return state


class _EnvironmentState:
    """One environment's accumulated training state."""

    __slots__ = ("type1", "type2", "record_count")

    def __init__(self) -> None:
        self.type1 = _BandState()
        self.type2 = _BandState()
        self.record_count = 0


class FingerprintAccumulator:
    """Streaming fingerprint learner: fold record batches, finalise once.

    Batch learning (:meth:`RecordLengthFingerprint.learn`) needs every
    training record of an environment in memory at once.  The accumulator
    instead keeps only the running minimum/maximum labelled length per record
    type and the record count — a band depends on nothing else — so an
    arbitrarily large calibration corpus can be folded in shard by shard
    (:meth:`repro.core.pipeline.WhiteMirrorAttack.train_incremental`) and the
    finalised fingerprints are **identical** to batch learning over the
    concatenation of every batch.

    The same folding property makes calibration *distributable*: the running
    state serialises (:meth:`save`/:meth:`load`), and :meth:`merge` folds two
    machines' states together exactly as shard summaries merge — min of
    mins, max of maxes, counts add — so merging is associative and
    commutative up to environment order, and the merged state finalises into
    exactly the library one machine training over every shard would learn
    (``repro merge-fingerprints``).
    """

    def __init__(self) -> None:
        self._environments: dict[str, _EnvironmentState] = {}

    @property
    def condition_keys(self) -> tuple[str, ...]:
        """Environments observed so far, in first-seen order."""
        return tuple(self._environments.keys())

    @property
    def record_count(self) -> int:
        """Total training records folded in so far, across environments."""
        return sum(state.record_count for state in self._environments.values())

    def observe(self, condition_key: str, records: Iterable[ClientRecord]) -> None:
        """Fold one batch of labelled records of one environment.

        Unlabelled or ``other``-labelled records count toward the
        environment's record total (as batch learning counts them) but do
        not move any band.
        """
        if not condition_key:
            raise FingerprintError("accumulator needs a condition key")
        state = self._environments.setdefault(condition_key, _EnvironmentState())
        for record in records:
            state.record_count += 1
            if record.label == LABEL_TYPE1:
                state.type1.observe(record.wire_length)
            elif record.label == LABEL_TYPE2:
                state.type2.observe(record.wire_length)

    def observe_lengths(
        self,
        condition_key: str,
        wire_lengths: np.ndarray | Sequence[int],
        label_codes: np.ndarray | Sequence[int],
    ) -> None:
        """Fold one batch of labelled records from columnar arrays.

        The vectorized counterpart of :meth:`observe`, used when records
        arrive as the packed arrays of a shard sidecar
        (:mod:`repro.dataset.sidecar`) rather than as objects.
        ``label_codes`` uses the :data:`repro.core.features.LABEL_BY_CODE`
        encoding; the resulting state is identical to observing the
        equivalent :class:`~repro.core.features.ClientRecord` batch one
        record at a time — every record counts, only labelled type-1/type-2
        lengths move a band.
        """
        if not condition_key:
            raise FingerprintError("accumulator needs a condition key")
        wire_lengths = np.asarray(wire_lengths, dtype=np.int64)
        label_codes = np.asarray(label_codes)
        if wire_lengths.shape != label_codes.shape:
            raise FingerprintError(
                "wire_lengths and label_codes must have the same shape"
            )
        state = self._environments.setdefault(condition_key, _EnvironmentState())
        state.record_count += int(wire_lengths.size)
        for label, band_state in (
            (LABEL_TYPE1, state.type1),
            (LABEL_TYPE2, state.type2),
        ):
            selected = wire_lengths[label_codes == CODE_BY_LABEL[label]]
            if selected.size:
                band_state.observe(int(selected.min()))
                band_state.observe(int(selected.max()))

    def fingerprint(self, condition_key: str, margin: int = 2) -> RecordLengthFingerprint:
        """Finalise one environment's fingerprint from the accumulated state."""
        try:
            state = self._environments[condition_key]
        except KeyError:
            raise FingerprintError(
                f"no records accumulated for environment {condition_key!r}; "
                f"known environments: {sorted(self._environments)}"
            ) from None
        if state.type1.minimum is None:
            raise FingerprintError(
                f"no labelled type-1 records for environment {condition_key!r}"
            )
        if state.type2.minimum is None:
            raise FingerprintError(
                f"no labelled type-2 records for environment {condition_key!r}"
            )
        return RecordLengthFingerprint(
            condition_key=condition_key,
            type1_band=state.type1.band(margin),
            type2_band=state.type2.band(margin),
            training_records=state.record_count,
        )

    def finalize_into(
        self, library: "FingerprintLibrary", margin: int = 2
    ) -> "FingerprintLibrary":
        """Finalise every accumulated environment into ``library``."""
        if not self._environments:
            raise FingerprintError("no training records accumulated")
        for condition_key in self._environments:
            library.add(self.fingerprint(condition_key, margin=margin))
        return library

    def merge(self, other: "FingerprintAccumulator") -> "FingerprintAccumulator":
        """Fold another accumulator's state into this one; returns ``self``.

        Exactly the shard-summary merge, applied to training state: per
        environment the band extremes fold (min of mins, max of maxes) and
        the record counts add, so ``a.merge(b)`` finalises into the same
        fingerprints as observing both machines' records on one accumulator.
        Environments only ``other`` has seen are adopted whole.  The merge
        order cannot change any finalised fingerprint (only the first-seen
        order of :attr:`condition_keys`).
        """
        for condition_key, other_state in other._environments.items():
            state = self._environments.setdefault(condition_key, _EnvironmentState())
            state.type1.merge(other_state.type1)
            state.type2.merge(other_state.type2)
            state.record_count += other_state.record_count
        return self

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form of the running state (see :meth:`save`)."""
        return {
            "format_version": ACCUMULATOR_FORMAT_VERSION,
            "environments": {
                condition_key: {
                    "record_count": state.record_count,
                    "type1": state.type1.as_dict(),
                    "type2": state.type2.as_dict(),
                }
                for condition_key, state in self._environments.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FingerprintAccumulator":
        """Inverse of :meth:`as_dict`; validates shape and version."""
        if not isinstance(data, Mapping):
            raise FingerprintError(
                f"accumulator state must be a JSON object, got "
                f"{type(data).__name__}"
            )
        for key in ("format_version", "environments"):
            if key not in data:
                raise FingerprintError(
                    f"accumulator state is missing the {key!r} field (is this "
                    "a fingerprint *library* file? merge-fingerprints takes "
                    "the accumulator state written by `train --save-state`)"
                )
        if data["format_version"] != ACCUMULATOR_FORMAT_VERSION:
            raise FingerprintError(
                f"unsupported accumulator state version {data['format_version']}"
            )
        accumulator = cls()
        environments = data["environments"]
        if not isinstance(environments, Mapping):
            raise FingerprintError("accumulator 'environments' must be an object")
        for condition_key, entry in environments.items():
            if not condition_key:
                raise FingerprintError("accumulator state has an empty condition key")
            try:
                state = _EnvironmentState()
                state.record_count = int(entry["record_count"])  # type: ignore[index]
                state.type1 = _BandState.from_dict(entry["type1"])  # type: ignore[index]
                state.type2 = _BandState.from_dict(entry["type2"])  # type: ignore[index]
            except (KeyError, TypeError, ValueError) as error:
                raise FingerprintError(
                    f"accumulator state for environment {condition_key!r} is "
                    f"malformed: {error!r}"
                ) from error
            if state.record_count < 0:
                raise FingerprintError(
                    f"accumulator state for environment {condition_key!r} has "
                    f"a negative record count"
                )
            accumulator._environments[condition_key] = state
        return accumulator

    def save(self, path: str | Path) -> None:
        """Persist the running state as JSON (one machine's calibration).

        Keys are sorted so that state files — like finalised libraries — are
        byte-identical however the environments were first encountered.
        """
        Path(path).write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True), encoding="utf-8"
        )

    @classmethod
    def load(cls, path: str | Path) -> "FingerprintAccumulator":
        """Load a state file previously written by :meth:`save`."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise FingerprintError(
                f"cannot load accumulator state: {error}"
            ) from error
        return cls.from_dict(data)


class FingerprintLibrary:
    """Per-environment fingerprints, keyed by the condition's fingerprint key."""

    def __init__(self) -> None:
        self._fingerprints: dict[str, RecordLengthFingerprint] = {}

    @property
    def condition_keys(self) -> tuple[str, ...]:
        """All environments the library covers."""
        return tuple(self._fingerprints.keys())

    def add(self, fingerprint: RecordLengthFingerprint) -> None:
        """Insert or replace the fingerprint for one environment."""
        self._fingerprints[fingerprint.condition_key] = fingerprint

    def get(self, condition_key: str) -> RecordLengthFingerprint:
        """Look up the fingerprint for an environment."""
        try:
            return self._fingerprints[condition_key]
        except KeyError:
            raise FingerprintError(
                f"no fingerprint trained for environment {condition_key!r}; "
                f"known environments: {sorted(self._fingerprints)}"
            ) from None

    def __contains__(self, condition_key: object) -> bool:
        return condition_key in self._fingerprints

    def __len__(self) -> int:
        return len(self._fingerprints)

    def classify_lengths(
        self, wire_lengths: np.ndarray | Sequence[int]
    ) -> dict[str, list[str]]:
        """Classify one batch of lengths against every environment at once.

        One broadcast kernel call covers the whole environments × bands ×
        records cube; per environment the labels equal
        ``self.get(key).classify_lengths(wire_lengths)`` exactly.
        """
        if not self._fingerprints:
            return {}
        matrix = np.asarray(
            [
                fingerprint.band_bounds()
                for fingerprint in self._fingerprints.values()
            ],
            dtype=np.int64,
        )
        codes = kernel.classify_codes_multi(wire_lengths, matrix)
        return {
            condition_key: kernel.decode_labels(codes[index], _BAND_LABELS)
            for index, condition_key in enumerate(self._fingerprints)
        }

    def learn(
        self,
        condition_key: str,
        records: Sequence[ClientRecord],
        margin: int = 2,
    ) -> RecordLengthFingerprint:
        """Learn and store the fingerprint for one environment."""
        fingerprint = RecordLengthFingerprint.learn(condition_key, records, margin)
        self.add(fingerprint)
        return fingerprint

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form of the whole library."""
        return {
            key: fingerprint.as_dict() for key, fingerprint in self._fingerprints.items()
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Mapping[str, object]]) -> "FingerprintLibrary":
        """Inverse of :meth:`as_dict`."""
        library = cls()
        for fingerprint_data in data.values():
            library.add(RecordLengthFingerprint.from_dict(fingerprint_data))
        return library

    def save(self, path: str | Path) -> None:
        """Persist the library as JSON.

        Keys are sorted, so two libraries holding the same fingerprints save
        byte-identically however their environments were learned or merged —
        distributed calibration (``repro merge-fingerprints``) is verified
        against single-machine training with a plain ``diff``.
        """
        Path(path).write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True), encoding="utf-8"
        )

    @classmethod
    def load(cls, path: str | Path) -> "FingerprintLibrary":
        """Load a library previously written by :meth:`save`."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise FingerprintError(f"cannot load fingerprint library: {error}") from error
        return cls.from_dict(data)
