"""Vectorized batch kernels for the capture→verdict hot path.

The attack is, at its core, a closed-interval membership test repeated over
millions of SSL records.  Every per-record loop in the pipeline funnels
through this module so that test runs as numpy array comparisons:

* :func:`priority_interval_codes` — "first interval containing each value",
  the shape shared by band classification and the ML interval classifier.
* :func:`classify_codes` / :func:`classify_codes_multi` — one capture's wire
  lengths against one fingerprint's bands, or against every environment's
  bands at once.
* :func:`decode_labels` — integer codes back to label objects in one gather.
* :func:`tls_record_spans` — TLS record framing over a reassembled byte
  stream, for the batch record-extraction fast path.

Each kernel's scalar counterpart survives next to its call site as the
reference oracle (``RecordLengthFingerprint.classify_length``,
``IntervalClassifier._predict_scalar``, the parser loop in
:mod:`repro.core.features`); property tests pin the vectorized outputs to
the oracles exactly, so a kernel is never "approximately" the attack.

The module imports only numpy and the TLS framing constants — no pipeline
types — so every layer (net, core, ml, dataset, ingest) can call in without
cycles.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tls.records import MAX_CIPHERTEXT_LENGTH, RECORD_HEADER_LENGTH


def priority_interval_codes(
    values: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
) -> np.ndarray:
    """Index of the first closed interval ``[low, high]`` containing each value.

    ``lows``/``highs`` list the intervals in priority order; the result holds,
    per value, the smallest index of a containing interval, or ``-1`` when no
    interval contains it.  This is the vectorized form of "walk the intervals
    in order and take the first hit": intervals are applied from lowest
    priority to highest, so a later (higher-priority) assignment overwrites
    any earlier one.

    The loop runs once per *interval* (a handful), never per value.
    """
    values = np.asarray(values)
    lows = np.asarray(lows)
    highs = np.asarray(highs)
    codes = np.full(values.shape, -1, dtype=np.intp)
    for index in range(lows.shape[0] - 1, -1, -1):
        codes[(values >= lows[index]) & (values <= highs[index])] = index
    return codes


def classify_codes(
    lengths: np.ndarray | Sequence[int],
    bands: Sequence[tuple[int, int]],
) -> np.ndarray:
    """Band codes for a batch of wire lengths.

    ``bands`` lists closed ``(low, high)`` intervals in priority order; the
    result holds ``i + 1`` where band ``i`` is the first band containing a
    length, and ``0`` where none does.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if not bands:
        return np.zeros(lengths.shape, dtype=np.intp)
    lows = np.asarray([band[0] for band in bands], dtype=np.int64)
    highs = np.asarray([band[1] for band in bands], dtype=np.int64)
    return priority_interval_codes(lengths, lows, highs) + 1


def classify_codes_multi(
    lengths: np.ndarray | Sequence[int],
    band_matrix: np.ndarray,
) -> np.ndarray:
    """Classify one batch of lengths against every environment at once.

    ``band_matrix`` has shape ``(environments, bands, 2)`` holding closed
    ``(low, high)`` intervals, bands in priority order.  Returns an
    ``(environments, lengths)`` array of codes with the same meaning as
    :func:`classify_codes` — one broadcast comparison replaces the per-
    environment, per-record double loop of a library-wide lookup.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    matrix = np.asarray(band_matrix, dtype=np.int64)
    environment_count, band_count = matrix.shape[0], matrix.shape[1]
    codes = np.zeros((environment_count, lengths.shape[0]), dtype=np.intp)
    # One masked pass per (environment, band) — a handful of iterations over
    # cache-sized (N,) slices beats a single (E, B, N) broadcast, whose
    # intermediates spill out of cache for realistic batch sizes.
    for environment in range(environment_count):
        row = codes[environment]
        for band in range(band_count - 1, -1, -1):
            low, high = matrix[environment, band]
            row[(lengths >= low) & (lengths <= high)] = band + 1
    return codes


def decode_labels(codes: np.ndarray, labels: Sequence[object]) -> list:
    """Map integer codes to labels in one object-array gather.

    ``labels`` must cover every code that occurs (``labels[code]``); negative
    codes index from the end, so callers can park a fallback label at
    ``labels[-1]`` for the "no interval" code of
    :func:`priority_interval_codes`.
    """
    table = np.empty(len(labels), dtype=object)
    for index, label in enumerate(labels):
        table[index] = label
    return table[np.asarray(codes)].tolist()


def tls_record_spans(
    stream: bytes | memoryview,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Frame a reassembled TLS byte stream into record spans.

    Returns ``(starts, wire_lengths, content_types)`` arrays — one entry per
    complete record, in stream order — or ``None`` when the stream loses
    framing (a declared fragment length of zero or beyond the TLS maximum);
    the caller then falls back to the scalar parser, which knows how to
    resynchronise mid-stream.  A trailing partial record is normal (the
    capture simply ended there) and is dropped, exactly as the scalar parser
    drops it.

    The hop from record to record is inherently sequential (each header's
    length field locates the next header), so this is a per-record loop
    reading five bytes each — microscopic next to the per-packet byte
    shuffling it replaces.
    """
    view = memoryview(stream)
    size = len(view)
    starts: list[int] = []
    wire_lengths: list[int] = []
    content_types: list[int] = []
    offset = 0
    while size - offset >= RECORD_HEADER_LENGTH:
        length = int.from_bytes(view[offset + 3 : offset + 5], "big")
        if length == 0 or length > MAX_CIPHERTEXT_LENGTH:
            return None
        wire_length = RECORD_HEADER_LENGTH + length
        if offset + wire_length > size:
            break
        starts.append(offset)
        wire_lengths.append(wire_length)
        content_types.append(view[offset])
        offset += wire_length
    return (
        np.asarray(starts, dtype=np.int64),
        np.asarray(wire_lengths, dtype=np.int64),
        np.asarray(content_types, dtype=np.int64),
    )
