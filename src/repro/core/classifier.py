"""Record-type classification strategies.

Two interchangeable ways to label a client record as type-1 / type-2 / other:

* :class:`RecordTypeClassifier` — the paper's approach: look the record
  length up in the environment's band fingerprint;
* :class:`MLRecordClassifier` — an ablation: train any of the from-scratch
  estimators in :mod:`repro.ml` on raw record lengths, demonstrating that the
  side-channel does not depend on hand-built bins.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.features import ClientRecord, labelled_lengths
from repro.core.fingerprint import FingerprintLibrary, RecordLengthFingerprint
from repro.exceptions import AttackError
from repro.ml.base import Classifier


class RecordTypeClassifier:
    """Band-fingerprint classifier (the technique proposed by the paper)."""

    def __init__(self, library: FingerprintLibrary) -> None:
        self._library = library

    @property
    def library(self) -> FingerprintLibrary:
        """The fingerprint library backing this classifier."""
        return self._library

    def fingerprint_for(self, condition_key: str) -> RecordLengthFingerprint:
        """The fingerprint used for one environment."""
        return self._library.get(condition_key)

    def classify(
        self, records: Sequence[ClientRecord], condition_key: str
    ) -> list[str]:
        """Label every record using the environment's bands."""
        if not records:
            raise AttackError("cannot classify an empty record sequence")
        fingerprint = self._library.get(condition_key)
        return fingerprint.classify(records)


class MLRecordClassifier:
    """Generic-estimator classifier over raw record lengths."""

    def __init__(self, estimator: Classifier) -> None:
        self._estimator = estimator
        self._trained = False

    @property
    def estimator(self) -> Classifier:
        """The wrapped estimator."""
        return self._estimator

    def fit(self, records: Sequence[ClientRecord]) -> "MLRecordClassifier":
        """Train on labelled records (lengths as the single feature)."""
        lengths, labels = labelled_lengths(records)
        features = np.asarray(lengths, dtype=float).reshape(-1, 1)
        self._estimator.fit(features, labels)
        self._trained = True
        return self

    def classify(self, records: Sequence[ClientRecord]) -> list[str]:
        """Label every record with the trained estimator."""
        if not self._trained:
            raise AttackError("MLRecordClassifier must be fitted before classifying")
        if not records:
            raise AttackError("cannot classify an empty record sequence")
        features = np.asarray(
            [record.wire_length for record in records], dtype=float
        ).reshape(-1, 1)
        return [str(label) for label in self._estimator.predict(features)]
