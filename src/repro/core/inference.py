"""Choice-sequence inference from classified record events.

The streaming protocol (Section III of the paper, Figure 1) implies a simple
decoding rule for the classified client-record sequence:

* every **type-1** record marks a question being shown;
* if a **type-2** record appears after a type-1 and before the next type-1
  (or the end of the session), the viewer picked the **non-default** branch
  at that question; otherwise they picked (or defaulted into) the **default**
  branch.

Given the story graph, the recovered default/non-default pattern identifies
the exact path (and therefore the on-screen labels) the viewer followed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.features import ClientRecord, LABEL_TYPE1, LABEL_TYPE2
from repro.exceptions import AttackError
from repro.narrative.graph import StoryGraph
from repro.narrative.path import ViewingPath, path_from_choices


@dataclass(frozen=True)
class ChoiceEvent:
    """One question the attack believes the viewer encountered."""

    index: int
    question_shown_at: float
    took_default: bool
    type2_seen_at: float | None = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise AttackError("choice index must be non-negative")
        if self.question_shown_at < 0:
            raise AttackError("question timestamp must be non-negative")
        if not self.took_default and self.type2_seen_at is None:
            raise AttackError("a non-default choice must record when type-2 was seen")


@dataclass(frozen=True)
class InferredChoices:
    """The attack's reconstruction of a session's choices."""

    events: tuple[ChoiceEvent, ...]

    @property
    def choice_count(self) -> int:
        """How many questions the attack believes were encountered."""
        return len(self.events)

    @property
    def default_pattern(self) -> tuple[bool, ...]:
        """Recovered default/non-default pattern, in question order."""
        return tuple(event.took_default for event in self.events)

    @property
    def non_default_count(self) -> int:
        """How many non-default selections were recovered."""
        return sum(1 for event in self.events if not event.took_default)

    def decision_latencies(self) -> list[float]:
        """Seconds between question shown and type-2 observed (non-default only).

        This is the residual *timing* information the countermeasure section
        of the paper warns about.
        """
        return [
            event.type2_seen_at - event.question_shown_at
            for event in self.events
            if event.type2_seen_at is not None
        ]


def infer_choices(
    records: Sequence[ClientRecord],
    labels: Sequence[str],
) -> InferredChoices:
    """Decode a labelled record sequence into choices.

    ``labels[i]`` is the classification of ``records[i]``; the two sequences
    must be equally long.  Records must be in capture (time) order.
    """
    if len(records) != len(labels):
        raise AttackError(
            f"got {len(labels)} labels for {len(records)} records"
        )
    if not records:
        raise AttackError("cannot infer choices from an empty record sequence")
    events: list[ChoiceEvent] = []
    current_question_time: float | None = None
    current_type2_time: float | None = None

    def _flush(index: int) -> None:
        nonlocal current_question_time, current_type2_time
        if current_question_time is None:
            return
        events.append(
            ChoiceEvent(
                index=index,
                question_shown_at=current_question_time,
                took_default=current_type2_time is None,
                type2_seen_at=current_type2_time,
            )
        )
        current_question_time = None
        current_type2_time = None

    for record, label in zip(records, labels):
        if label == LABEL_TYPE1:
            _flush(len(events))
            current_question_time = record.timestamp
        elif label == LABEL_TYPE2:
            if current_question_time is None:
                # A type-2 with no preceding type-1: the question report was
                # missed (lost or misclassified).  The selection is still a
                # non-default choice, so synthesise the question event at the
                # type-2 time rather than dropping the information.
                current_question_time = record.timestamp
            if current_type2_time is None:
                current_type2_time = record.timestamp
    _flush(len(events))
    return InferredChoices(events=tuple(events))


def reconstruct_path(
    graph: StoryGraph,
    inferred: InferredChoices,
    decision_time_seconds: float = 5.0,
) -> ViewingPath:
    """Map a recovered default/non-default pattern onto the story graph.

    The result names the actual segments (and therefore the on-screen option
    labels) the viewer saw — the "fine-grained information" of the paper's
    title.
    """
    return path_from_choices(
        graph,
        inferred.default_pattern,
        decision_time_seconds=decision_time_seconds,
    )
