"""Feature extraction: client-side SSL record lengths from a captured trace.

The extractor works exactly the way a passive observer has to:

* pick the streaming connection out of the capture (by server endpoint if
  known, otherwise the flow carrying by far the most downlink bytes);
* follow the client-to-server TCP byte stream in sequence order, ignoring
  retransmitted duplicates;
* walk the TLS record headers inside that stream (they are cleartext) and
  note, for every record, its wire length, its content type and the capture
  timestamp of the segment that completed it.

Ground-truth labels are attached *only* when the trace still carries the
simulator's annotations (in-memory traces used for training and evaluation);
traces loaded back from pcap yield unlabelled records, as real captures would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core import kernel
from repro.exceptions import AttackError
from repro.net.capture import CapturedTrace
from repro.net.endpoints import FiveTuple
from repro.net.flow import Flow, FlowTable
from repro.net.packet import Direction, Packet
from repro.tls.records import (
    MAX_CIPHERTEXT_LENGTH,
    RECORD_HEADER_LENGTH,
    ContentType,
)

LABEL_TYPE1 = "type1"
LABEL_TYPE2 = "type2"
LABEL_OTHER = "other"

#: Compact label encoding shared by the batch kernels and the columnar shard
#: sidecars (:mod:`repro.dataset.sidecar`): index = code, value = label.
LABEL_BY_CODE: tuple[str | None, ...] = (None, LABEL_TYPE1, LABEL_TYPE2, LABEL_OTHER)
CODE_BY_LABEL: dict[str | None, int] = {
    label: code for code, label in enumerate(LABEL_BY_CODE)
}

_HEADER = RECORD_HEADER_LENGTH


@dataclass(frozen=True)
class ClientRecord:
    """One client-to-server TLS record as seen by the observer."""

    timestamp: float
    wire_length: int
    content_type: int
    label: str | None = None
    question_id: str | None = None

    def __post_init__(self) -> None:
        if self.wire_length <= RECORD_HEADER_LENGTH:
            raise AttackError(
                f"record wire length must exceed the header, got {self.wire_length}"
            )

    @property
    def is_application_data(self) -> bool:
        """Whether the record carries application data (what the attack inspects)."""
        return self.content_type == int(ContentType.APPLICATION_DATA)

    @property
    def payload_length(self) -> int:
        """The record's length field (ciphertext bytes)."""
        return self.wire_length - RECORD_HEADER_LENGTH


def _label_from_annotations(packet: Packet) -> tuple[str | None, str | None]:
    kind = packet.annotations.get("kind")
    if kind is None:
        return None, None
    question = packet.annotations.get("question_id")
    if kind == LABEL_TYPE1:
        return LABEL_TYPE1, question
    if kind == LABEL_TYPE2:
        return LABEL_TYPE2, question
    return LABEL_OTHER, question


def select_streaming_flow(
    trace: CapturedTrace, server_ip: str | None = None, server_port: int = 443
) -> Flow:
    """Find the connection that carries the streaming session.

    When the server address is known (the observer can resolve the CDN names
    Netflix uses), the flow is selected by endpoint; otherwise the heuristic
    is the flow with the most downlink payload bytes, which in any real
    viewing session is the video connection by orders of magnitude.
    """
    table: FlowTable = trace.flow_table()
    if server_ip is not None:
        for flow in table.flows:
            server = flow.five_tuple.server
            if server.ip == server_ip and server.port == server_port:
                return flow
        raise AttackError(f"no flow to {server_ip}:{server_port} in the trace")
    return table.largest_flow()


def extract_client_records(
    trace: CapturedTrace,
    server_ip: str | None = None,
    application_data_only: bool = True,
    flow: Flow | None = None,
) -> list[ClientRecord]:
    """Extract the client-side TLS records of the streaming connection.

    Parameters
    ----------
    trace:
        The captured session.
    server_ip:
        Optional known server address used to pick the right flow.
    application_data_only:
        Drop handshake/CCS/alert records (the observer can always identify
        them from the cleartext content-type byte).
    flow:
        Pre-selected flow; skips flow selection when provided.
    """
    flow = flow or select_streaming_flow(trace, server_ip)
    packets = [
        packet
        for packet in flow.client_packets()
        if packet.payload and not packet.is_retransmission
    ]
    # Order by sequence number (capture order can interleave retransmissions),
    # drop duplicate segments the way any TCP reassembler does.
    packets.sort(key=lambda packet: (packet.sequence_number, packet.timestamp))
    records = _extract_records_vectorized(packets)
    if records is None:
        records = _extract_records_scalar(packets)
    if application_data_only:
        records = [record for record in records if record.is_application_data]
    if not records:
        raise AttackError("no client-side TLS records found in the trace")
    return records


def _extract_records_vectorized(packets: Sequence[Packet]) -> list[ClientRecord] | None:
    """Extract records through the batch TLS-framing kernel, when legal.

    The scalar parser's corrective behaviours — annotation-driven labels,
    duplicate-segment dedup, gap resynchronisation, bad-framing recovery —
    all depend on per-packet state, so the fast path engages only for the
    clean common case: an unannotated, gap-free, duplicate-free uplink
    stream whose TLS framing scans end to end.  That is exactly what a
    pcap-loaded capture of a healthy session looks like (the attack's hot
    path); the moment any precondition fails, the caller runs the scalar
    oracle instead.  On the clean path the output is byte-for-byte the
    scalar parser's.
    """
    if not packets:
        return []
    expected_sequence: int | None = None
    for packet in packets:
        if packet.annotations:
            return None
        if expected_sequence is not None and packet.sequence_number != expected_sequence:
            return None
        expected_sequence = packet.sequence_number + len(packet.payload)
    stream = b"".join(packet.payload for packet in packets)
    spans = kernel.tls_record_spans(stream)
    if spans is None:
        return None
    starts, wire_lengths, _content_types = spans
    if starts.size == 0:
        return []
    # The scalar parser stamps each record with the packet that completed it:
    # the first packet whose cumulative payload covers the record's end
    # offset in the reassembled stream.
    payload_ends = np.cumsum([len(packet.payload) for packet in packets])
    completed_by = np.searchsorted(payload_ends, starts + wire_lengths, side="left")
    content_types = _content_types.tolist()
    return [
        ClientRecord(
            timestamp=packets[packet_index].timestamp,
            wire_length=wire_length,
            content_type=content_type,
        )
        for packet_index, wire_length, content_type in zip(
            completed_by.tolist(), wire_lengths.tolist(), content_types
        )
    ]


def _extract_records_scalar(packets: Sequence[Packet]) -> list[ClientRecord]:
    """Reference parser: the per-packet state machine the kernel must match.

    Handles everything the fast path refuses — annotated training traces,
    duplicate segments, capture gaps, framing loss — and serves as the
    oracle the property tests pin :func:`_extract_records_vectorized` to.
    """
    seen_sequences: set[int] = set()
    records: list[ClientRecord] = []
    buffer = bytearray()
    # Parser state for the record currently being assembled.
    pending_label: str | None = None
    pending_question: str | None = None
    pending_content: int | None = None
    pending_needed = 0
    expected_sequence: int | None = None

    def _reset_parser() -> None:
        nonlocal pending_label, pending_question, pending_content, pending_needed
        buffer.clear()
        pending_label = None
        pending_question = None
        pending_content = None
        pending_needed = 0

    for packet in packets:
        if packet.sequence_number in seen_sequences:
            continue
        seen_sequences.add(packet.sequence_number)
        if expected_sequence is not None and packet.sequence_number > expected_sequence:
            # Bytes are missing from the capture (packets the observer never
            # saw).  Whatever record was mid-assembly cannot be completed and
            # the framing of the buffered tail is unreliable, so resynchronise
            # at the gap: real capture tooling does the same.
            _reset_parser()
        expected_sequence = packet.sequence_number + len(packet.payload)
        buffer.extend(packet.payload)
        label, question = _label_from_annotations(packet)
        if pending_needed == 0:
            pending_label, pending_question = label, question
        # Consume as many complete records as the buffer now holds.
        while True:
            if pending_needed == 0:
                if len(buffer) < _HEADER:
                    break
                content_type = buffer[0]
                length = int.from_bytes(buffer[3:5], "big")
                if length == 0 or length > MAX_CIPHERTEXT_LENGTH:
                    # The stream lost framing (e.g. a capture gap landed inside
                    # a record header).  Drop the unparseable tail and wait for
                    # the next gap to resynchronise rather than aborting the
                    # whole extraction.
                    _reset_parser()
                    break
                pending_content = content_type
                pending_needed = _HEADER + length
                if pending_label is None:
                    pending_label, pending_question = label, question
            if len(buffer) < pending_needed:
                break
            records.append(
                ClientRecord(
                    timestamp=packet.timestamp,
                    wire_length=pending_needed,
                    content_type=int(pending_content or 0),
                    label=pending_label,
                    question_id=pending_question,
                )
            )
            del buffer[:pending_needed]
            pending_needed = 0
            pending_label, pending_question = label, question
    return records


def record_length_series(records: Sequence[ClientRecord]) -> list[int]:
    """The wire lengths of a record sequence (the raw side-channel series)."""
    return [record.wire_length for record in records]


def labelled_lengths(
    records: Sequence[ClientRecord],
) -> tuple[list[int], list[str]]:
    """Split labelled records into (lengths, labels) for classifier training.

    Raises when any record is unlabelled — training data must come from
    annotated (simulated or self-collected) sessions.
    """
    lengths: list[int] = []
    labels: list[str] = []
    for record in records:
        if record.label is None:
            raise AttackError("cannot build training data from unlabelled records")
        lengths.append(record.wire_length)
        labels.append(record.label)
    return lengths, labels
