"""The White Mirror attack: recovering viewer choices from encrypted traffic.

This is the paper's contribution.  Given a captured trace of an interactive
viewing session, the attack

1. finds the streaming connection and extracts the *SSL record lengths of
   client packets* — the side-channel (:mod:`repro.core.features`);
2. classifies each client record as a type-1 state report, a type-2 state
   report or "other" using per-condition record-length band fingerprints
   learned from labelled training sessions (:mod:`repro.core.fingerprint`,
   :mod:`repro.core.classifier`);
3. turns the classified event sequence into the viewer's choice sequence —
   every type-1 is a question reached, a following type-2 means the
   non-default branch was picked (:mod:`repro.core.inference`);
4. optionally maps the recovered choices onto behavioural trait hints
   (:mod:`repro.core.profiling`).

:class:`repro.core.pipeline.WhiteMirrorAttack` wires the steps together, and
:mod:`repro.core.evaluation` scores recovered choices against ground truth.
"""

from repro.core.features import (
    ClientRecord,
    LABEL_OTHER,
    LABEL_TYPE1,
    LABEL_TYPE2,
    extract_client_records,
    record_length_series,
)
from repro.core.fingerprint import (
    FingerprintAccumulator,
    FingerprintLibrary,
    LengthBand,
    RecordLengthFingerprint,
)
from repro.core.classifier import RecordTypeClassifier, MLRecordClassifier
from repro.core.inference import ChoiceEvent, InferredChoices, infer_choices, reconstruct_path
from repro.core.profiling import TraitEstimate, BehavioralProfile, profile_from_choices
from repro.core.pipeline import AttackResult, WhiteMirrorAttack
from repro.core.evaluation import (
    AttackEvaluation,
    evaluate_attack_result,
    evaluate_record_classification,
)

__all__ = [
    "ClientRecord",
    "LABEL_OTHER",
    "LABEL_TYPE1",
    "LABEL_TYPE2",
    "extract_client_records",
    "record_length_series",
    "LengthBand",
    "RecordLengthFingerprint",
    "FingerprintLibrary",
    "FingerprintAccumulator",
    "RecordTypeClassifier",
    "MLRecordClassifier",
    "ChoiceEvent",
    "InferredChoices",
    "infer_choices",
    "reconstruct_path",
    "TraitEstimate",
    "BehavioralProfile",
    "profile_from_choices",
    "AttackResult",
    "WhiteMirrorAttack",
    "AttackEvaluation",
    "evaluate_attack_result",
    "evaluate_record_classification",
]
